"""Figure 2: relative read node miss rate at 6.25 % memory pressure.

Paper shape to reproduce: clustering reduces the RNMr for **all** 14
applications; the averages are ~82 % (2-way) and ~62 % (4-way).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.figure2 import averages, format_figure2, run_figure2


def test_figure2(benchmark, bench_scale, results_dir):
    rows = benchmark.pedantic(
        run_figure2, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    assert len(rows) == 14
    text = format_figure2(rows)
    write_result(results_dir, "figure2.txt", text)
    print()
    print(text)

    # Shape assertions (who wins, roughly by how much):
    reduced_2 = sum(1 for r in rows if r.relative_2 < 1.0)
    reduced_4 = sum(1 for r in rows if r.relative_4 < 1.0)
    assert reduced_4 >= 12, "4-way clustering cuts RNMr for ~all apps"
    assert reduced_2 >= 11, "2-way clustering cuts RNMr for ~all apps"
    a2, a4 = averages(rows)
    assert a4 < a2 < 1.0, "4-way gains exceed 2-way gains on average"
    assert 0.35 <= a4 <= 0.90, f"4-way average {a4:.2f} vs paper's ~0.62"
    assert 0.50 <= a2 <= 0.97, f"2-way average {a2:.2f} vs paper's ~0.82"
