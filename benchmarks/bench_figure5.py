"""Figure 5: execution-time breakdown at doubled DRAM bandwidth.

Paper shape: raising memory pressure from 50 % to 81.25 % slows the
1-processor-node machine (remote stall grows); 4-way clustering at
81.25 % MP recovers most of that penalty for all applications except the
intra-node-contention-bound ones (LU-noncontig, Radix).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.figure5 import clustering_recovers, format_figure5, run_figure5
from repro.workloads.registry import paper_workloads


def test_figure5(benchmark, bench_scale, results_dir):
    bars = benchmark.pedantic(
        run_figure5, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    text = format_figure5(bars)
    write_result(results_dir, "figure5.txt", text)
    print()
    print(text)

    apps = paper_workloads()
    by = {(b.app, b.label): b for b in bars}

    # Memory pressure hurts the unclustered machine for most applications.
    hurt = sum(
        1 for a in apps if by[(a, "1p 81%")].total > by[(a, "1p 50%")].total * 1.02
    )
    assert hurt >= 8, f"81% MP should slow the 1p machine broadly ({hurt}/14)"

    # Clustering recovers the penalty for the large majority (paper: 13/14).
    recovered = sum(1 for a in apps if clustering_recovers(bars, a))
    assert recovered >= 9, f"clustering recovered only {recovered}/14 apps"

    # The remote-stall component specifically shrinks under clustering.
    remote_shrunk = sum(
        1
        for a in apps
        if by[(a, "4p 81%")].breakdown["remote"]
        <= by[(a, "1p 81%")].breakdown["remote"] * 1.02
    )
    assert remote_shrunk >= 10, (
        f"remote stall should shrink with clustering ({remote_shrunk}/14)"
    )
