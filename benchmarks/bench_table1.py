"""Table 1: applications and working sets."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.table1 import format_table1, run_table1


def test_table1(benchmark, bench_scale, results_dir):
    rows = benchmark.pedantic(
        run_table1, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    assert len(rows) == 14, "one row per Table 1 application"
    # Water carries the smallest working set, as in the paper.
    smallest = min(rows, key=lambda r: r.our_ws_bytes)
    assert smallest.app.startswith("water")
    text = format_table1(rows)
    write_result(results_dir, "table1.txt", text)
    print()
    print(text)
