"""Figure 4: the six conflict-sensitive applications, with 8-way AMs at
87.5 % memory pressure.

Paper shape: up to 81.25 % MP these applications behave like the Figure-3
group; at 87.5 % MP clustering no longer reduces traffic efficiently, and
8-way associativity removes most of the blow-up (except LU-contig, where
it explains only part).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.common import FIGURE4_APPS
from repro.experiments.figure4 import (
    conflict_miss_fractions,
    conflict_summaries,
    format_figure4,
    run_figure4,
)


def test_figure4(benchmark, bench_scale, results_dir):
    sweep = benchmark.pedantic(
        run_figure4, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    text = format_figure4(sweep)
    write_result(results_dir, "figure4.txt", text)
    print()
    print(text)

    # Clustering keeps winning at 81% MP for most of the group...
    wins81 = sum(
        1
        for app in FIGURE4_APPS
        if sweep.get(app, 4, "81%").total <= sweep.get(app, 1, "81%").total * 1.1
    )
    assert wins81 >= 4, f"clustering should still help at 81% MP (got {wins81}/6)"

    # ...but at 87.5% MP the blow-up sets in: traffic grows sharply from 81%.
    blowups = sum(
        1
        for app in FIGURE4_APPS
        if sweep.get(app, 4, "87%").total > 1.3 * sweep.get(app, 4, "81%").total
    )
    assert blowups >= 4, f"expected a 87% MP traffic blow-up (got {blowups}/6)"

    # 8-way associativity tames it for most apps.
    tamed = sum(1 for s in conflict_summaries(sweep, ppn=4) if s.reduction > 0.10)
    assert tamed >= 4, f"8-way AMs should remove most of the blow-up ({tamed}/6)"


def test_conflict_misses_are_the_diagnosis(benchmark, bench_scale, results_dir):
    """The paper attributes the blow-up to conflict misses; our shadow-tag
    classification should agree for the majority of the group."""
    fractions = benchmark.pedantic(
        conflict_miss_fractions, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    text = "Conflict fraction of read node misses at 87.5% MP (4p nodes):\n" + "\n".join(
        f"  {app:14s} {100 * frac:5.1f}%" for app, frac in fractions.items()
    )
    write_result(results_dir, "figure4_conflicts.txt", text)
    print()
    print(text)
    significant = sum(1 for f in fractions.values() if f > 0.15)
    assert significant >= 4, "conflict misses dominate the high-MP misses"
