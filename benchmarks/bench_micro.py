"""Microbenchmarks of the simulator itself (real pytest-benchmark timing):
per-operation cost of the hot machine paths and the full event loop."""

from __future__ import annotations

from repro.experiments.runner import RunSpec, build_simulation
from tests.conftest import make_machine

LINE = 64


def test_micro_l1_hit_path(benchmark):
    m = make_machine(am_sets=64)
    m.read(0, 0, 0)

    def hot():
        t = 0
        for _ in range(1000):
            t, _ = m.read(0, 0, t + 10)
        return t

    benchmark(hot)


def test_micro_am_hit_path(benchmark):
    m = make_machine(am_sets=64, slc_lines=2, l1_lines=1, slc_assoc=1)
    for ln in range(16):
        m.read(0, ln * LINE, ln * 1000)

    def hot():
        t = 100_000
        # Cycle through more lines than the tiny SLC holds: AM hits.
        for k in range(1000):
            t, _ = m.read(0, (k % 16) * LINE, t + 10)
        return t

    benchmark(hot)


def test_micro_remote_path(benchmark):
    m = make_machine(n_processors=4, procs_per_node=1, am_sets=64)

    def hot():
        t = 0
        for k in range(300):
            line = k % 32
            m.write(0, line * LINE, t)           # node 0 takes ownership
            t, _ = m.read(3, line * LINE, t + 1000)  # node 3 remote-reads
            t += 1000
        return t

    benchmark(hot)


def test_micro_replacement_storm(benchmark):
    """Single-way sets at machine-wide conflict: every allocation runs the
    accept-based replacement machinery."""

    def storm():
        m = make_machine(
            n_processors=4, procs_per_node=1, am_sets=2, am_assoc=1,
            slc_lines=2, l1_lines=1, page_size=64,
        )
        t = 0
        for k in range(200):
            m.write(k % 4, (k % 24) * LINE, t)
            t += 500
        return m

    m = benchmark(storm)
    assert m.owned_line_count() == len(m.lines)


def test_micro_event_loop_throughput(benchmark):
    """End-to-end events/second through the simulation kernel."""

    def run():
        sim = build_simulation(RunSpec(workload="synth_private", scale=0.25))
        res = sim.run()
        return sim.events_processed, res

    events, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 10_000
