"""Section 4.3 / 4.2 ablations: bandwidth tiers, halved bus, broken
inclusion, and the analytic replication thresholds."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.analytic.replication import paper_thresholds
from repro.experiments.ablations import (
    format_replication_thresholds,
    run_bandwidth_ablation,
    run_bus_ablation,
    run_consistency_ablation,
    run_inclusion_ablation,
    run_numa_comparison,
)

BANDWIDTH_APPS = ["lu_noncontig", "radix", "ocean_noncontig", "fft", "water_sp", "barnes"]


def test_ablation_bandwidth(benchmark, bench_scale, results_dir):
    """"It is therefore of prime importance that the nodes are designed to
    tolerate the increased attraction memory load" — more AM/NC bandwidth
    must monotonically improve clustering's relative performance."""
    rows = benchmark.pedantic(
        run_bandwidth_ablation,
        kwargs={"workloads": BANDWIDTH_APPS, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    lines = ["Bandwidth ablation at 50% MP: 4-way clustering slowdown vs 1p"]
    for r in rows:
        lines.append(f"  {r.app:16s} {r.tier:16s} {r.slowdown_4p:6.3f}x")
    text = "\n".join(lines)
    write_result(results_dir, "ablation_bandwidth.txt", text)
    print()
    print(text)

    by_app: dict[str, dict[str, float]] = {}
    for r in rows:
        by_app.setdefault(r.app, {})[r.tier] = r.slowdown_4p
    improved = sum(
        1
        for app, tiers in by_app.items()
        if tiers["4x dram + 2x nc"] <= tiers["1x dram"] + 0.02
    )
    assert improved >= len(by_app) - 1, "more node bandwidth helps clustering"


def test_ablation_bus_halved(benchmark, bench_scale, results_dir):
    """"if the global bus bandwidth is halved, clustering becomes even
    more efficient since the penalty for remote accesses is increased"."""
    rows = benchmark.pedantic(
        run_bus_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    lines = ["Bus ablation at 50% MP (2x DRAM): 4p/1p time ratio"]
    for r in rows:
        lines.append(
            f"  {r.app:16s} full bus {r.slowdown_full_bus:6.3f}x"
            f"   half bus {r.slowdown_half_bus:6.3f}x"
        )
    text = "\n".join(lines)
    write_result(results_dir, "ablation_bus.txt", text)
    print()
    print(text)
    assert sum(1 for r in rows if r.clustering_gains_more) >= len(rows) - 1


def test_ablation_inclusion(benchmark, bench_scale, results_dir):
    """Section 4.2: breaking the inclusion overcomes the replication-space
    limitation — traffic at 87.5 % MP must not increase, and should
    decrease for the conflict-bound applications."""
    rows = benchmark.pedantic(
        run_inclusion_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    lines = ["Inclusion ablation at 87.5% MP, 4p nodes: total traffic"]
    for r in rows:
        lines.append(
            f"  {r.app:14s} inclusive {r.traffic_inclusive / 1024:8.1f}K"
            f" -> non-inclusive {r.traffic_noninclusive / 1024:8.1f}K"
            f" ({100 * r.reduction:+5.1f}%)"
        )
    text = "\n".join(lines)
    write_result(results_dir, "ablation_inclusion.txt", text)
    print()
    print(text)
    assert sum(1 for r in rows if r.reduction > -0.05) >= len(rows) - 1


def test_replication_thresholds(benchmark, results_dir):
    """Closed-form thresholds must match the paper's quoted numbers."""
    th = benchmark(paper_thresholds)
    assert float(th["16 nodes, 4-way"]) * 100 == 76.5625
    assert round(float(th["16 nodes, 8-way"]) * 100, 1) == 88.3
    assert float(th["4 nodes, 4-way"]) * 100 == 81.25
    assert round(float(th["4 nodes, 8-way"]) * 100, 1) == 90.6
    text = format_replication_thresholds()
    write_result(results_dir, "replication_thresholds.txt", text)
    print()
    print(text)


def test_ablation_consistency(benchmark, bench_scale, results_dir):
    """"A release consistency model with a 10 entry write buffer has been
    assumed" (section 3.2) — quantify what that assumption buys over
    sequential consistency, and what coalescing would add."""
    rows = benchmark.pedantic(
        run_consistency_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    lines = ["Consistency ablation at 50% MP (1p nodes): execution time"]
    for r in rows:
        lines.append(
            f"  {r.app:16s} RC {r.time_rc / 1e6:8.3f}ms"
            f"  SC {r.time_sc / 1e6:8.3f}ms ({r.sc_slowdown:5.2f}x)"
            f"  RC+coalesce {r.time_rc_coalescing / 1e6:8.3f}ms"
            f" ({r.coalesced_writes} merged)"
        )
    text = "\n".join(lines)
    write_result(results_dir, "ablation_consistency.txt", text)
    print()
    print(text)
    # RC buys real time wherever the write buffer keeps up.  Where a pure
    # write burst saturates it (radix's permutation), RC degenerates to
    # roughly SC's rate — the classic RC caveat for write-throughput-bound
    # phases — and the deep posted-write queues can even cost a little.
    assert any(r.sc_slowdown > 1.05 for r in rows), "RC must buy real time"
    assert all(r.sc_slowdown >= 0.90 for r in rows), (
        "SC must never win by a wide margin"
    )
    assert all(r.time_rc_coalescing <= r.time_rc * 1.05 for r in rows)


def test_numa_baseline(benchmark, bench_scale, results_dir):
    """COMA's migration/replication converts repeated remote misses into
    local hits: bus traffic must beat the CC-NUMA baseline."""
    rows = benchmark.pedantic(
        run_numa_comparison, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    lines = ["COMA vs CC-NUMA at 50% MP (1 processor/node): bus traffic"]
    for r in rows:
        lines.append(
            f"  {r.app:16s} coma {r.coma_traffic / 1024:8.1f}K"
            f"  numa {r.numa_traffic / 1024:8.1f}K"
            f"  (numa/coma {r.traffic_ratio:5.2f}x)"
        )
    text = "\n".join(lines)
    write_result(results_dir, "numa_baseline.txt", text)
    print()
    print(text)
    assert sum(1 for r in rows if r.traffic_ratio > 1.0) >= len(rows) - 1
