"""Extension bench: hierarchical (DDM-style) COMA vs the paper's flat
bus with clustered nodes.

Two ways to exploit locality beyond a flat 16-node bus: share each
attraction memory among 4 processors (the paper's clustering), or keep
1-processor nodes but group them under a bus hierarchy (the DDM lineage,
the paper's reference [6]).  Both should cut global (top-level) traffic
relative to the flat 16-node machine.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.runner import RunSpec, build_simulation

APPS = ["ocean_contig", "water_sp", "barnes", "fft"]
MP = 8 / 16


def _global_traffic(spec: RunSpec) -> tuple[int, int]:
    sim = build_simulation(spec)
    res = sim.run()
    machine = sim.machine
    top = getattr(machine, "top_bus_bytes", res.total_traffic_bytes)
    return top, res.elapsed_ns


def test_hierarchy_vs_clustering(benchmark, bench_scale, results_dir):
    def sweep():
        out = {}
        for app in APPS:
            base = RunSpec(workload=app, memory_pressure=MP, scale=bench_scale)
            out[app] = {
                "flat 16x1p": _global_traffic(base),
                "clustered 4x4p": _global_traffic(base.with_(procs_per_node=4)),
                "hierarchical 4 groups": _global_traffic(
                    base.with_(machine="hcoma", hierarchy_groups=4)
                ),
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Global (top-level) traffic: flat vs clustered vs hierarchical"]
    for app, rows in data.items():
        lines.append(f"  {app}")
        for label, (traffic, elapsed) in rows.items():
            lines.append(
                f"    {label:22s} {traffic / 1024:9.1f}K  {elapsed / 1e6:8.3f}ms"
            )
    text = "\n".join(lines)
    write_result(results_dir, "hierarchy_vs_clustering.txt", text)
    print()
    print(text)

    for app, rows in data.items():
        flat = rows["flat 16x1p"][0]
        hier = rows["hierarchical 4 groups"][0]
        clus = rows["clustered 4x4p"][0]
        assert hier < flat, f"{app}: hierarchy must off-load the top bus"
        assert clus < flat * 1.05, f"{app}: clustering must cut global traffic"
