"""Shared configuration for the benchmark harness.

Figure benchmarks simulate many (workload x clustering x pressure) points;
results are cached in ``.repro_cache/`` so re-running a bench after the
first time is cheap.  Control knobs:

* ``REPRO_BENCH_SCALE``   — problem-size multiplier (default 1.0);
* ``REPRO_NO_DISK_CACHE`` — set to disable the disk cache.

Every figure/table bench writes its rendered output to ``results/``, with
a provenance header identifying the code version that produced it.  A
cache hit/miss summary is printed once at the end of a bench session.
"""

from __future__ import annotations

import os
import sys
from datetime import datetime, timezone
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def _cache_summary():
    """Print one cache hit/miss line after the bench session."""
    yield
    from repro.experiments.runner import format_cache_summary

    print(f"\n{format_cache_summary()}", file=sys.stderr)


def write_result(results_dir: Path, name: str, text: str) -> None:
    from repro.obs.manifest import provenance_header

    ts = datetime.now(timezone.utc).isoformat(timespec="seconds")
    header = provenance_header(
        timestamp=ts, extra={"scale": BENCH_SCALE, "artifact": name}
    )
    (results_dir / name).write_text(header + text + "\n")
