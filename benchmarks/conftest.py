"""Shared configuration for the benchmark harness.

Figure benchmarks simulate many (workload x clustering x pressure) points;
results are cached in ``.repro_cache/`` so re-running a bench after the
first time is cheap.  Control knobs:

* ``REPRO_BENCH_SCALE``   — problem-size multiplier (default 1.0);
* ``REPRO_NO_DISK_CACHE`` — set to disable the disk cache.

Every figure/table bench writes its rendered output to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
