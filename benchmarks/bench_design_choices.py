"""Design-choice ablations: the paper's replacement rules vs naive
variants, and the empirical replication-degree profile behind the
section-4.2 threshold analysis."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.analytic.replication import max_replication_degree
from repro.experiments.ablations import run_replacement_policy_ablation
from repro.experiments.runner import RunSpec, build_simulation
from repro.stats.profiler import SharingProfiler, format_profile

POLICY_APPS = ["barnes", "cholesky", "radix"]


def test_replacement_policy_ablation(benchmark, bench_scale, results_dir):
    """"When choosing what local line to replace, entries in state Shared
    are prioritized..." — the S-first victim rule must produce fewer owner
    relocations than state-blind LRU at high memory pressure."""
    rows = benchmark.pedantic(
        run_replacement_policy_ablation,
        kwargs={"workloads": POLICY_APPS, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    lines = ["Replacement-policy ablation at 81.25% MP, 4p nodes"]
    for r in rows:
        lines.append(
            f"  {r.app:10s} {r.policy:26s} traffic {r.traffic_bytes / 1024:8.1f}K"
            f"  relocations {r.replacements:6d}  time {r.elapsed_ns / 1e6:8.3f}ms"
        )
    text = "\n".join(lines)
    write_result(results_dir, "ablation_replacement_policy.txt", text)
    print()
    print(text)

    by = {(r.app, r.policy): r for r in rows}
    for app in POLICY_APPS:
        paper = by[(app, "paper (S-first, accept)")]
        lru = by[(app, "LRU victim")]
        assert paper.replacements <= lru.replacements, (
            f"{app}: S-first victims must avoid owner relocations"
        )
        assert paper.traffic_bytes <= lru.traffic_bytes * 1.05, (
            f"{app}: the paper's policy should not lose on traffic"
        )


def _profile(mp: float, scale: float):
    prof = SharingProfiler()
    sim = build_simulation(
        RunSpec(workload="synth_hotspot", memory_pressure=mp, scale=scale)
    )
    sim.profiler = prof
    sim.profile_every = 2000
    sim.run()
    prof.sample(sim.machine)
    return prof.report(), sim.machine.config


def test_empirical_replication_degrees(benchmark, bench_scale, results_dir):
    """Measure replication degree across the pressure sweep and compare
    against the closed-form cap of section 4.2."""

    def sweep():
        return {
            mp: _profile(mp, min(1.0, bench_scale))
            for mp in (1 / 16, 8 / 16, 13 / 16, 14 / 16)
        }

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Empirical replication degree (synth_hotspot, 16 x 1p nodes)"]
    for mp, (rep, cfg) in profiles.items():
        cap = max_replication_degree(cfg.n_nodes, cfg.am_assoc, mp)
        lines.append(
            f"  MP {100 * mp:5.1f}%: max degree {rep.max_degree:2d}, "
            f"mean {rep.mean_degree:5.2f}, analytic cap {cap:2d}, "
            f"AM owner fraction {rep.am_composition.get('owner', 0):.2f}"
        )
        lines.append("    " + format_profile(rep).splitlines()[1].strip())
    text = "\n".join(lines)
    write_result(results_dir, "replication_empirical.txt", text)
    print()
    print(text)

    low = profiles[1 / 16][0]
    high = profiles[14 / 16][0]
    assert low.max_degree >= 8, "plentiful space: wide replication"
    assert high.mean_degree <= low.mean_degree, "pressure squeezes replication"
    # Owner fraction of AM ways tracks the memory pressure.
    assert high.am_composition["owner"] > low.am_composition["owner"]
