"""Serial vs parallel sweep wall time (the scaling point of the BENCH
trajectory): one cold-cache Figure-2 slice run serially and again over
the process pool, both against fresh cache directories so neither leg
gets free hits.

The speedup is recorded, not asserted — CI runners and laptops differ in
core count — but the parallel leg's results must stay byte-identical to
the serial leg's, and the merged cache summary must add up.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import write_result
from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import cache_stats, clear_memory_cache, reset_cache_stats

#: A representative slice: two paper kernels plus two synthetics.
SLICE = ["fft", "radix", "synth_private", "synth_migratory"]
JOBS = max(2, min(4, os.cpu_count() or 1))


def _cold_run(cache_dir, jobs: int, scale: float):
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    clear_memory_cache()
    reset_cache_stats()
    t0 = time.perf_counter()
    rows = run_figure2(scale=scale, workloads=SLICE, jobs=jobs)
    return rows, time.perf_counter() - t0, cache_stats()


def test_parallel_speedup(bench_scale, results_dir, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    scale = min(bench_scale, 0.5)
    try:
        serial_rows, serial_s, serial_stats = _cold_run(
            tmp_path / "serial", 1, scale
        )
        parallel_rows, parallel_s, parallel_stats = _cold_run(
            tmp_path / "parallel", JOBS, scale
        )
    finally:
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache
        clear_memory_cache()
        reset_cache_stats()

    assert json.dumps([r.__dict__ for r in serial_rows], sort_keys=True) == \
        json.dumps([r.__dict__ for r in parallel_rows], sort_keys=True), \
        "parallel sweep must be byte-identical to the serial path"
    n_points = 3 * len(SLICE)
    assert sum(serial_stats.values()) == n_points
    assert sum(parallel_stats.values()) == n_points, \
        "merged worker stats must cover every sweep point"

    speedup = serial_s / parallel_s if parallel_s else 0.0
    text = "\n".join([
        f"parallel sweep engine: cold Figure-2 slice {SLICE} at scale {scale}",
        f"  serial          {serial_s:8.2f} s   {serial_stats}",
        f"  --jobs {JOBS:<2d}       {parallel_s:8.2f} s   {parallel_stats}",
        f"  speedup         {speedup:8.2f}x on {os.cpu_count()} core(s)",
    ])
    write_result(results_dir, "parallel_speedup.txt", text)
    print()
    print(text)
