"""Figure 3: bus traffic vs memory pressure for the eight applications
where clustering stays effective.

Paper shape: traffic grows with memory pressure (reads + replacements);
4-processor nodes show consistently lower global traffic; no replacements
at 6.25 % MP.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.common import FIGURE3_APPS, MP_SWEEP
from repro.experiments.figure3 import format_traffic, run_figure3


def test_figure3(benchmark, bench_scale, results_dir):
    sweep = benchmark.pedantic(
        run_figure3, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    text = format_traffic(
        sweep, "Figure 3: traffic for 1 and 4-processor nodes at 6/50/75/81/87% MP"
    )
    write_result(results_dir, "figure3.txt", text)
    print()
    print(text)

    for app in FIGURE3_APPS:
        # No replacement traffic at 6.25% MP (caches effectively infinite).
        low = sweep.get(app, 1, "6%")
        assert low.traffic_bytes["replace"] == 0, f"{app}: replacements at 6% MP"
        # Traffic grows from 6% to 87% MP for single-processor nodes.
        high = sweep.get(app, 1, "87%")
        assert high.total >= low.total, f"{app}: traffic should grow with MP"

    # Clustering reduces traffic for the large majority of (app, MP) points
    # up to 81% MP (the paper: all of them for this app group).
    wins = total = 0
    for app in FIGURE3_APPS:
        for label, _ in MP_SWEEP:
            if label == "87%":
                continue
            total += 1
            if sweep.get(app, 4, label).total <= sweep.get(app, 1, label).total * 1.05:
                wins += 1
    assert wins >= int(0.8 * total), f"clustering won only {wins}/{total} points"
