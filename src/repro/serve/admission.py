"""Admission control: bounded per-tenant queues and rate limiting.

A long-running simulation service must bound the work it accepts — an
uncached sweep point costs tens of milliseconds of pure compute, so an
unbounded queue turns a burst into minutes of head-of-line latency for
everyone.  Admission is decided *before* any work is queued:

* **Bounded in-flight queue per tenant.**  Each tenant (the ``X-Tenant``
  request header; ``default`` otherwise) may have at most
  ``max_inflight`` requests admitted at once.  Above that the request is
  rejected with 429 and a ``Retry-After`` hint instead of growing the
  queue without limit.
* **Token-bucket rate limit per tenant.**  ``rate`` requests/second
  refill with a ``burst`` ceiling; an empty bucket rejects with the
  exact time until the next token as ``Retry-After``.

The clock is injectable so tests drive admission decisions
deterministically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Admission:
    """The outcome of one admission decision."""

    ok: bool
    #: ``queue_full`` | ``rate_limited`` when rejected.
    reason: str = ""
    #: Seconds the client should wait before retrying (ceil'd for the
    #: Retry-After header, which is integral seconds).
    retry_after: float = 0.0

    @property
    def retry_after_header(self) -> str:
        return str(max(1, math.ceil(self.retry_after)))


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def acquire(self) -> float:
        """Take one token; returns 0.0, or seconds until one is due."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Per-tenant admission: queue bound first, then the rate limit.

    The queue bound is checked before the rate limit so a full queue
    does not also burn a token — the client is told to come back when
    capacity frees up, not additionally penalized.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        rate: float = 50.0,
        burst: float = 100.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = burst
        self._clock = clock if clock is not None else time.monotonic
        self._inflight: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}

    def depth(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def total_depth(self) -> int:
        return sum(self._inflight.values())

    def try_admit(self, tenant: str) -> Admission:
        depth = self._inflight.get(tenant, 0)
        if depth >= self.max_inflight:
            # The oldest queued request must drain first; a mean service
            # time estimate is not available here, so hint one second —
            # clients with better information can back off harder.
            return Admission(False, "queue_full", retry_after=1.0)
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = bucket
        wait = bucket.acquire()
        if wait > 0.0:
            return Admission(False, "rate_limited", retry_after=wait)
        self._inflight[tenant] = depth + 1
        return Admission(True)

    def release(self, tenant: str) -> None:
        depth = self._inflight.get(tenant, 0)
        if depth <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = depth - 1
