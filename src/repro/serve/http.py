"""Minimal asyncio HTTP/1.1 transport for the simulation service.

The container environment is stdlib-only, so the service speaks a small,
strict subset of HTTP/1.1 over :mod:`asyncio` streams instead of pulling
in a framework: one request per connection (``Connection: close``
semantics), ``Content-Length`` bodies only, bounded header and body
sizes.  That subset is exactly what the bundled load-test client, the
CI smoke and a Prometheus scrape need — and keeping the parser ~100
lines makes its failure modes (413, 431, 400) easy to verify.

Server-Sent Events are layered on top: :class:`SseWriter` frames
``event:``/``data:`` blocks per the WHATWG EventSource grammar and the
connection close terminates the stream.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs, urlsplit

#: Request-line + headers are read line-by-line; a line longer than the
#: stream limit (64 KiB default) is a malformed request.
MAX_HEADERS = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or unacceptable request, mapped to a 4xx/5xx reply."""

    def __init__(self, status: int, message: str,
                 headers: tuple[tuple[str, str], ...] = ()) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str
    route: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def wants_sse(self) -> bool:
        if "text/event-stream" in self.header("accept"):
            return True
        return self.query.get("stream", [""])[-1] == "sse"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF before any bytes."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(431, "request line too long") from exc
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError as exc:
        raise HttpError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise HttpError(431, "header line too long") from exc
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(431, "too many headers")

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            n = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if n < 0:
            raise HttpError(400, "malformed Content-Length")
        if n > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc

    parts = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        route=parts.path,
        query=parse_qs(parts.query),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: object,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return render_response(status, body, extra_headers=extra_headers)


def error_response(exc: HttpError) -> bytes:
    return json_response(
        exc.status, {"error": exc.message, "status": exc.status},
        extra_headers=exc.headers,
    )


class SseWriter:
    """Server-Sent Events framing over an open stream.

    The response headers advertise ``text/event-stream`` with no
    ``Content-Length``; the stream terminates when the connection
    closes, which the service does after the final event.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        self._started = True

    async def send(self, event: str, data: object) -> None:
        text = json.dumps(data, sort_keys=True)
        frame = f"event: {event}\n"
        for line in text.splitlines() or [""]:
            frame += f"data: {line}\n"
        frame += "\n"
        self._writer.write(frame.encode())
        await self._writer.drain()

    @property
    def started(self) -> bool:
        return self._started


def parse_sse(text: str) -> list[tuple[str, str]]:
    """Parse an SSE stream into ``(event, data)`` pairs (test/client aid).

    Raises :class:`ValueError` on framing violations: a field line
    outside a block, a block with data but no event name, or a stream
    that does not end on a blank-line block terminator.
    """
    if text and not text.endswith("\n\n"):
        # A terminated stream always ends on a blank-line block
        # terminator; splitting can't distinguish "ends with one \n"
        # from "ends with a blank line", so check before splitting.
        raise ValueError("unterminated SSE block at end of stream")
    events: list[tuple[str, str]] = []
    event: Optional[str] = None
    data: list[str] = []
    for line in text.split("\n"):
        if line == "":
            if event is None and data:
                raise ValueError("SSE block with data but no event name")
            if event is not None:
                events.append((event, "\n".join(data)))
            event, data = None, []
        elif line.startswith("event: "):
            event = line[len("event: "):]
        elif line.startswith("data: "):
            data.append(line[len("data: "):])
        elif line.startswith(":"):
            continue  # comment / keep-alive
        else:
            raise ValueError(f"malformed SSE line {line!r}")
    if event is not None or data:
        raise ValueError("unterminated SSE block at end of stream")
    return events
