"""Bundled async load-test client for ``coma-sim serve``.

Measures the three request mixes that characterize the service
(``coma-sim loadtest``; numbers published in docs/PERFORMANCE.md):

* **cold** — every request is a distinct never-seen spec, so each one
  pays full simulation cost.  Dominated by the simulator, bounded by
  the worker-thread count.
* **warm** — one spec, primed once, then hammered: the in-process
  memory cache answers, so this is the service-overhead floor.
* **coalesced** — N concurrent *identical* requests for a fresh spec.
  Single-flight dedup means exactly one simulation runs; the client
  verifies that claim from ``/metrics`` (``serve_dedup`` and the
  experiment cache counters), not just from response flags.

Stdlib-only by construction (the container has no aiohttp/httpx): raw
``asyncio.open_connection`` with ``Connection: close`` per request,
matching the transport subset the server speaks.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional

from repro.obs.openmetrics import parse_openmetrics


async def http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    payload: Optional[object] = None,
    headers: tuple[tuple[str, str], ...] = (),
) -> tuple[int, dict[str, str], bytes]:
    """One request over a fresh connection; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
        ]
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    resp_headers: dict[str, str] = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    return status, resp_headers, rest


async def wait_healthy(host: str, port: int, timeout: float = 10.0) -> None:
    """Poll /healthz until the server answers 200 (startup barrier)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            status, _, _ = await http_request(host, port, "GET", "/healthz")
            if status == 200:
                return
        except (ConnectionError, OSError):
            pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"server at {host}:{port} never became healthy")
        await asyncio.sleep(0.05)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _summarize(label: str, latencies_ms: list[float]) -> dict:
    return {
        "scenario": label,
        "requests": len(latencies_ms),
        "p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "max_ms": round(max(latencies_ms), 3),
    }


async def _timed_run(
    host: str, port: int, spec: dict,
) -> tuple[float, dict]:
    t0 = time.perf_counter()
    status, _, body = await http_request(host, port, "POST", "/run", spec)
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    if status != 200:
        raise RuntimeError(f"/run returned {status}: {body[:200]!r}")
    return elapsed_ms, json.loads(body)


async def scrape_counters(host: str, port: int) -> dict[str, float]:
    """Flatten /metrics into ``{family{label=value}: total}`` sums."""
    status, _, body = await http_request(host, port, "GET", "/metrics")
    if status != 200:
        raise RuntimeError(f"/metrics returned {status}")
    families = parse_openmetrics(body.decode())
    flat: dict[str, float] = {}
    for family, info in families.items():
        for sample_name, pairs in info["samples"].items():
            for labels, value in pairs:
                tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                flat[f"{sample_name}{{{tag}}}"] = value
    return flat


def _counter(flat: dict[str, float], name: str, **labels: str) -> float:
    tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return flat.get(f"{name}_total{{{tag}}}", 0.0)


async def run_loadtest(
    host: str,
    port: int,
    requests: int = 20,
    concurrency: int = 8,
    base_spec: Optional[dict] = None,
    seed0: int = 990_000,
) -> dict:
    """Run the cold/warm/coalesced mixes against a live server.

    Seeds count up from ``seed0`` so repeated invocations against one
    server keep producing never-cached (cold) specs — pick a fresh
    ``seed0`` if you rerun against a long-lived instance.
    """
    spec = dict(base_spec or {"workload": "fft", "n_processors": 4,
                              "scale": 0.25})
    await wait_healthy(host, port)
    report: dict = {"config": {"requests": requests,
                               "concurrency": concurrency, "spec": spec}}
    scenarios = []

    # -- cold: distinct specs, bounded concurrency ----------------------
    gate = asyncio.Semaphore(concurrency)

    async def one_cold(i: int) -> float:
        async with gate:
            elapsed_ms, _ = await _timed_run(
                host, port, {**spec, "seed": seed0 + i})
            return elapsed_ms

    cold = await asyncio.gather(*(one_cold(i) for i in range(requests)))
    scenarios.append(_summarize("cold", list(cold)))

    # -- warm: one primed spec, repeated --------------------------------
    warm_spec = {**spec, "seed": seed0 + requests}
    await _timed_run(host, port, warm_spec)  # prime

    async def one_warm() -> float:
        async with gate:
            elapsed_ms, body = await _timed_run(host, port, warm_spec)
            if body["cache"] == "miss":
                raise RuntimeError("warm request missed the cache")
            return elapsed_ms

    warm = await asyncio.gather(*(one_warm() for _ in range(requests)))
    scenarios.append(_summarize("warm", list(warm)))

    # -- coalesced: N concurrent identical requests, fresh spec ---------
    before = await scrape_counters(host, port)
    hot_spec = {**spec, "seed": seed0 + requests + 1}
    timed = await asyncio.gather(
        *(_timed_run(host, port, hot_spec) for _ in range(requests)))
    after = await scrape_counters(host, port)
    coalesced_flags = sum(1 for _, body in timed if body["coalesced"])
    co_summary = _summarize("coalesced", [ms for ms, _ in timed])
    co_summary["coalesced_responses"] = coalesced_flags
    dedup_delta = (_counter(after, "serve_dedup", outcome="coalesced")
                   - _counter(before, "serve_dedup", outcome="coalesced"))
    miss_delta = (
        _counter(after, "experiments_cache_requests", outcome="miss")
        - _counter(before, "experiments_cache_requests", outcome="miss"))
    co_summary["metrics"] = {
        "serve_dedup_coalesced_delta": dedup_delta,
        "cache_miss_delta": miss_delta,
        # The claim under test: N identical concurrent requests cost
        # exactly one simulation.  Some requests may arrive after the
        # leader finished (memory hits) — those neither coalesce nor
        # miss, so the invariant is miss==1, coalesced+hits==N-1.
        "single_simulation": miss_delta == 1.0,
    }
    scenarios.append(co_summary)

    report["scenarios"] = scenarios
    report["ok"] = bool(co_summary["metrics"]["single_simulation"])
    return report


def format_report(report: dict) -> str:
    lines = ["scenario    requests   p50 ms    p99 ms    max ms"]
    for s in report["scenarios"]:
        lines.append(
            f"{s['scenario']:<11} {s['requests']:>8} {s['p50_ms']:>9.3f} "
            f"{s['p99_ms']:>9.3f} {s['max_ms']:>9.3f}")
    co = report["scenarios"][-1]["metrics"]
    lines.append(
        f"coalesced mix: cache_miss_delta={co['cache_miss_delta']:.0f} "
        f"(single_simulation={co['single_simulation']})")
    return "\n".join(lines)


__all__ = [
    "format_report",
    "http_request",
    "percentile",
    "run_loadtest",
    "scrape_counters",
    "wait_healthy",
]
