"""``coma-sim serve``: the async simulation service.

An :mod:`asyncio` HTTP service that accepts :class:`RunSpec` and sweep
requests, fans them out over the existing experiment machinery, and
applies the standard serving-stack controls in front of it:

* **Admission control** (:mod:`repro.serve.admission`): a bounded
  per-tenant in-flight queue plus a token-bucket rate limit.  Over
  budget → 429 with ``Retry-After``, never an unbounded queue.
* **Single-flight dedup** (:mod:`repro.serve.singleflight`): concurrent
  identical requests — same ``RunSpec.key()`` — share one simulation.
  Correct because a spec's result is a pure function of its key and the
  disk cache's publication protocol is already multi-writer safe.
* **Backpressure-aware sweeps**: ``POST /sweep`` runs through
  :func:`~repro.experiments.parallel.run_specs` (optionally over its
  process pool) with per-sweep :class:`CacheTally` isolation, streaming
  per-point progress over Server-Sent Events.
* **Observability**: the PR 5 metrics registry is exposed at
  ``/metrics`` in OpenMetrics text; the request path adds queue-depth
  gauges, request-latency histograms and dedup counters
  (:mod:`repro.serve.instruments`).
* **Graceful drain**: shutdown stops admitting, lets in-flight work
  finish (bounded by ``drain_timeout``) and only then closes.

Endpoints::

    GET  /healthz     liveness/readiness (503 while draining)
    GET  /metrics     OpenMetrics exposition of the shared registry
    GET  /history     archived runs (?workload=&key=&batch=&limit=)
    GET  /diff        differential attribution (?a=KEY&b=KEY&noise=PCT)
    POST /run         one RunSpec -> result JSON (single-flight deduped)
    POST /sweep       {"specs": [...]} -> JSON, or SSE with ?stream=sse

See docs/SERVICE.md for the full API contract.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import traceback
from dataclasses import dataclass
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Optional

from repro.common.errors import ReproError
from repro.experiments.parallel import run_specs
from repro.experiments.runner import (
    CacheTally,
    RunSpec,
    run_spec,
    set_experiment_metrics,
    tally_cache_stats,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import to_openmetrics
from repro.serve.admission import AdmissionController
from repro.serve.http import (
    HttpError,
    Request,
    SseWriter,
    error_response,
    json_response,
    read_request,
    render_response,
)
from repro.serve.instruments import ServiceInstruments
from repro.serve.singleflight import SingleFlight

_ALLOWED_MACHINES = ("coma", "hcoma", "numa", "uma")


@dataclass
class ServeConfig:
    """Tunables for one service instance (all exposed as CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Executor threads running request bodies (cache hits are cheap;
    #: misses hold the GIL for the simulation — size accordingly).
    workers: int = 4
    #: Process-pool jobs *inside* each sweep (1 = serial sweep).
    sweep_jobs: int = 1
    #: Per-tenant bounded queue: admitted-but-unfinished requests.
    max_inflight: int = 8
    #: Token-bucket rate limit per tenant (requests/second, burst cap).
    rate: float = 50.0
    burst: float = 100.0
    #: Largest accepted ``POST /sweep`` spec list.
    max_sweep_points: int = 256
    #: Seconds shutdown waits for in-flight requests before closing.
    drain_timeout: float = 10.0
    #: History archive this instance reads (``GET /history``, ``GET
    #: /diff``) and — with ``record`` — appends completed runs to.
    #: ``None`` uses the default archive path.
    history_path: Optional[str] = None
    #: Record completed simulations into the history archive (opt-in:
    #: the request path stays zero-overhead when off).
    record: bool = False


def parse_spec(obj: object) -> RunSpec:
    """Validate one JSON object into a :class:`RunSpec` (400 on error)."""
    from repro.workloads.registry import workload_names

    if not isinstance(obj, dict):
        raise HttpError(400, "spec must be a JSON object")
    fields = {f.name: f for f in dataclasses.fields(RunSpec)}
    unknown = sorted(set(obj) - set(fields))
    if unknown:
        raise HttpError(400, f"unknown spec field(s): {', '.join(unknown)}")
    if "workload" not in obj:
        raise HttpError(400, "spec requires a 'workload'")
    if obj["workload"] not in workload_names():
        raise HttpError(400, f"unknown workload {obj['workload']!r}")
    machine = obj.get("machine", "coma")
    if machine not in _ALLOWED_MACHINES:
        raise HttpError(
            400, f"unknown machine {machine!r} "
            f"(one of {', '.join(_ALLOWED_MACHINES)})")
    defaults = RunSpec(workload="fft")
    for name, value in obj.items():
        default = getattr(defaults, name)
        if isinstance(default, bool):
            ok = isinstance(value, bool)
        elif isinstance(default, int):
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif isinstance(default, float):
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = isinstance(value, str)
        if not ok:
            raise HttpError(400, f"spec field {name!r}: expected "
                            f"{type(default).__name__}, got {value!r}")
    spec = RunSpec(**obj)
    if not 0 < spec.scale <= 4:
        raise HttpError(400, "scale must be in (0, 4]")
    if spec.n_processors < 1 or spec.procs_per_node < 1:
        raise HttpError(400, "processor counts must be positive")
    return spec


class ComaService:
    """One service instance: HTTP front, admission, dedup, metrics."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.instruments = ServiceInstruments(self.registry)
        self.flight = SingleFlight()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            rate=self.config.rate,
            burst=self.config.burst,
            clock=clock,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="coma-serve",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._recorder = None
        self._draining = False
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    def _archive(self):
        from repro.obs.history import HistoryArchive

        return HistoryArchive(self.config.history_path)

    async def start(self) -> None:
        set_experiment_metrics(self.registry)
        if self.config.record:
            from repro.experiments.runner import (
                HistoryRecorder,
                set_history_recorder,
            )

            def on_record(outcome: str) -> None:
                self.instruments.history_records.labels(outcome).inc()

            self._recorder = HistoryRecorder(
                self._archive(), source="serve", on_record=on_record)
            set_history_recorder(self._recorder)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight requests keep running."""
        self._draining = True

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, wait, then close."""
        self.begin_drain()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass  # drain deadline: close anyway
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)
        set_experiment_metrics(None)
        if self._recorder is not None:
            from repro.experiments.runner import set_history_recorder

            set_history_recorder(None)
            self._recorder = None

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        self._active += 1
        self._idle.clear()
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        route = "unparsed"
        status = 500
        try:
            request = await read_request(reader)
            if request is None:
                return
            route = request.route
            response, status = await self._dispatch(request, writer)
            if response is not None:  # None: an SSE handler already wrote
                writer.write(response)
                await writer.drain()
        except HttpError as exc:
            status = exc.status
            writer.write(error_response(exc))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            raise  # client went away: nothing left to answer
        except Exception:
            # A handler bug must not close the connection with no
            # reply: answer 500 and keep the trace on the server side.
            traceback.print_exc()
            status = 500
            writer.write(error_response(HttpError(500, "internal error")))
            await writer.drain()
        finally:
            self.instruments.requests.labels(route, status).inc()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter,
    ) -> tuple[Optional[bytes], int]:
        route, method = request.route, request.method
        if route == "/healthz":
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return self._healthz()
        if route == "/metrics":
            if method != "GET":
                raise HttpError(405, "metrics is GET-only")
            body = to_openmetrics(self.registry).encode()
            return render_response(
                200, body,
                content_type="application/openmetrics-text; version=1.0.0;"
                " charset=utf-8",
            ), 200
        if route == "/history":
            if method != "GET":
                raise HttpError(405, "history is GET-only")
            return self._handle_history(request)
        if route == "/diff":
            if method != "GET":
                raise HttpError(405, "diff is GET-only")
            return self._handle_diff(request)
        if route == "/run":
            if method != "POST":
                raise HttpError(405, "run is POST-only")
            return await self._handle_run(request)
        if route == "/sweep":
            if method != "POST":
                raise HttpError(405, "sweep is POST-only")
            return await self._handle_sweep(request, writer)
        raise HttpError(404, f"no route {route!r}")

    # -- /history, /diff ------------------------------------------------

    def _handle_history(self, request: Request) -> tuple[bytes, int]:
        """Archive listing: ``GET /history?workload=&key=&batch=&limit=``."""
        from repro.obs.history import HistoryArchiveError

        self.instruments.history_queries.labels("/history").inc()

        def q(name: str) -> Optional[str]:
            values = request.query.get(name)
            return values[-1] if values else None

        limit_text = q("limit") or "50"
        try:
            limit = min(max(int(limit_text), 1), 1000)
        except ValueError:
            raise HttpError(400, f"limit must be an integer, "
                            f"got {limit_text!r}") from None
        try:
            archive = self._archive()
            rows = archive.list_runs(
                workload=q("workload"), key=q("key"), batch=q("batch"),
                limit=limit,
            )
            total = archive.run_count()
        except HistoryArchiveError as exc:
            raise HttpError(500, f"history archive: {exc}") from exc
        self.instruments.history_rows.set(total)
        body = {
            "archive": str(archive.path),
            "total": total,
            "runs": rows,
            "recording": self._recorder is not None,
        }
        return json_response(200, body), 200

    def _handle_diff(self, request: Request) -> tuple[bytes, int]:
        """Differential attribution: ``GET /diff?a=KEY&b=KEY[&noise=]``."""
        from repro.obs.diff import diff_runs
        from repro.obs.history import HistoryArchiveError

        self.instruments.history_queries.labels("/diff").inc()

        def q(name: str) -> Optional[str]:
            values = request.query.get(name)
            return values[-1] if values else None

        key_a, key_b = q("a"), q("b")
        if not key_a or not key_b:
            raise HttpError(400, "diff requires ?a=KEY&b=KEY")
        noise_text = q("noise") or "1.0"
        try:
            noise = float(noise_text)
        except ValueError:
            raise HttpError(400, f"noise must be a number, "
                            f"got {noise_text!r}") from None
        try:
            archive = self._archive()
            row_a = archive.get_run(key_a)
            row_b = archive.get_run(key_b)
        except HistoryArchiveError as exc:
            raise HttpError(500, f"history archive: {exc}") from exc
        for key, row in ((key_a, row_a), (key_b, row_b)):
            if row is None:
                raise HttpError(404, f"no archived run matching {key!r}")
        return json_response(
            200, diff_runs(row_a, row_b, noise_pct=noise)), 200

    def _healthz(self) -> tuple[bytes, int]:
        status = 503 if self._draining else 200
        payload = {
            "status": "draining" if self._draining else "ok",
            "inflight_requests": self.admission.total_depth(),
            "inflight_keys": self.flight.inflight,
        }
        return json_response(status, payload), status

    # -- admission ------------------------------------------------------

    def _admit(self, request: Request) -> str:
        """Admission gate shared by /run and /sweep; returns the tenant."""
        tenant = request.header("x-tenant", "default")
        if self._draining:
            self.instruments.rejected.labels("draining").inc()
            raise HttpError(503, "draining: not accepting new work",
                            headers=(("Retry-After", "1"),))
        decision = self.admission.try_admit(tenant)
        if not decision.ok:
            self.instruments.rejected.labels(decision.reason).inc()
            raise HttpError(
                429, f"rejected: {decision.reason} (tenant {tenant!r})",
                headers=(("Retry-After", decision.retry_after_header),))
        self.instruments.queue_depth.labels(tenant).set(
            self.admission.depth(tenant))
        return tenant

    def _release(self, tenant: str) -> None:
        self.admission.release(tenant)
        self.instruments.queue_depth.labels(tenant).set(
            self.admission.depth(tenant))

    # -- /run -----------------------------------------------------------

    def _run_one(self, spec: RunSpec) -> tuple[dict, str]:
        """Executor-thread body: run one spec with an isolated tally."""
        with tally_cache_stats() as tally:
            result = run_spec(spec)
        if tally.misses:
            outcome = "miss"
        elif tally.disk_hits:
            outcome = "disk_hit"
        else:
            outcome = "memory_hit"
        return result.to_dict(), outcome

    async def _handle_run(self, request: Request) -> tuple[bytes, int]:
        tenant = self._admit(request)
        t0 = time.perf_counter()
        try:
            spec = parse_spec(request.json())
            key = spec.key()
            loop = asyncio.get_running_loop()

            async def work() -> tuple[dict, str]:
                return await loop.run_in_executor(
                    self._executor, partial(self._run_one, spec))

            try:
                (payload, outcome), coalesced = await self.flight.run(key, work)
            except ReproError as exc:
                raise HttpError(
                    500, f"simulation failed: {exc}") from exc
            finally:
                self.instruments.inflight_keys.set(self.flight.inflight)
            self.instruments.dedup.labels(
                "coalesced" if coalesced else "leader").inc()
            body = {
                "key": key,
                "coalesced": coalesced,
                "cache": outcome,
                "result": payload,
            }
            return json_response(200, body), 200
        finally:
            self._release(tenant)
            elapsed_us = (time.perf_counter() - t0) * 1e6
            self.instruments.latency.labels("/run").observe(elapsed_us)

    # -- /sweep ---------------------------------------------------------

    def _parse_sweep(self, request: Request) -> tuple[list[RunSpec], int, bool]:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
                body.get("specs"), list):
            raise HttpError(400, "expected {\"specs\": [...]}")
        raw_specs = body["specs"]
        if not raw_specs:
            raise HttpError(400, "empty sweep")
        if len(raw_specs) > self.config.max_sweep_points:
            raise HttpError(
                413, f"sweep exceeds {self.config.max_sweep_points} points")
        specs = [parse_spec(s) for s in raw_specs]
        jobs = body.get("jobs", self.config.sweep_jobs)
        if not isinstance(jobs, int) or isinstance(jobs, bool):
            raise HttpError(400, "jobs must be an integer")
        jobs = min(max(jobs, 1), self.config.sweep_jobs) \
            if self.config.sweep_jobs > 1 else 1
        include_results = body.get("include_results", True)
        if not isinstance(include_results, bool):
            raise HttpError(400, "include_results must be a boolean")
        return specs, jobs, include_results

    async def _handle_sweep(
        self, request: Request, writer: asyncio.StreamWriter,
    ) -> tuple[Optional[bytes], int]:
        tenant = self._admit(request)
        t0 = time.perf_counter()
        try:
            specs, jobs, include_results = self._parse_sweep(request)
            if request.wants_sse():
                status = await self._sweep_sse(
                    specs, jobs, include_results, writer)
                return None, status
            tally = CacheTally()
            loop = asyncio.get_running_loop()
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    partial(run_specs, specs, jobs=jobs, progress=False,
                            stats=tally))
            except ReproError as exc:
                raise HttpError(500, f"sweep failed: {exc}") from exc
            body = {
                "total": len(specs),
                "cache": tally.as_dict(),
                "keys": [s.key() for s in specs],
                "results": [r.to_dict() for r in results]
                if include_results else None,
            }
            return json_response(200, body), 200
        finally:
            self._release(tenant)
            elapsed_us = (time.perf_counter() - t0) * 1e6
            self.instruments.latency.labels("/sweep").observe(elapsed_us)

    async def _sweep_sse(
        self,
        specs: list[RunSpec],
        jobs: int,
        include_results: bool,
        writer: asyncio.StreamWriter,
    ) -> int:
        """Stream sweep progress as SSE by bridging ``on_result`` from
        the executor thread into an async event channel."""
        loop = asyncio.get_running_loop()
        channel: asyncio.Queue = asyncio.Queue()
        tally = CacheTally()
        done_count = [0]
        t0 = time.perf_counter()

        def on_result(index: int, spec: RunSpec, result) -> None:
            # Called on the executor thread (completion order): hop onto
            # the loop thread; Queue.put_nowait is not thread-safe.
            done_count[0] += 1
            loop.call_soon_threadsafe(channel.put_nowait, ("progress", {
                "done": done_count[0],
                "total": len(specs),
                "index": index,
                "key": spec.key(),
                "elapsed_ns": result.elapsed_ns,
                "wall_ms": round((time.perf_counter() - t0) * 1e3, 3),
            }))

        def sweep_body() -> None:
            try:
                results = run_specs(specs, jobs=jobs, progress=False,
                                    on_result=on_result, stats=tally)
                loop.call_soon_threadsafe(
                    channel.put_nowait, ("done", results))
            except BaseException as exc:
                loop.call_soon_threadsafe(channel.put_nowait, ("error", exc))

        sse = SseWriter(writer)
        await sse.start()
        await sse.send("start", {"total": len(specs), "jobs": jobs})
        self.instruments.sse_events.labels("start").inc()
        future = loop.run_in_executor(self._executor, sweep_body)
        status = 200
        while True:
            kind, payload = await channel.get()
            if kind == "progress":
                await sse.send("progress", payload)
                self.instruments.sse_events.labels("progress").inc()
            elif kind == "done":
                await sse.send("done", {
                    "total": len(specs),
                    "cache": tally.as_dict(),
                    "keys": [s.key() for s in specs],
                    "results": [r.to_dict() for r in payload]
                    if include_results else None,
                })
                self.instruments.sse_events.labels("done").inc()
                break
            else:  # error
                await sse.send("error", {"error": str(payload)})
                self.instruments.sse_events.labels("error").inc()
                status = 500
                break
        await future  # surface nothing: outcome already streamed
        return status


async def serve_forever(
    config: ServeConfig,
    ready: Optional[Callable[[ComaService], None]] = None,
) -> int:
    """Run a service until SIGINT/SIGTERM, then drain gracefully."""
    import signal

    service = ComaService(config)
    await service.start()
    if ready is not None:
        ready(service)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loop: Ctrl-C raises instead
    try:
        await stop.wait()
    except asyncio.CancelledError:  # pragma: no cover - loop teardown
        pass
    finally:
        await service.shutdown()
    return 0


def format_listen_line(service: ComaService) -> str:
    cfg = service.config
    return (
        f"coma-sim serve: listening on http://{cfg.host}:{service.port} "
        f"(workers={cfg.workers}, sweep_jobs={cfg.sweep_jobs}, "
        f"queue={cfg.max_inflight}/tenant, rate={cfg.rate:g}/s "
        f"burst={cfg.burst:g})"
    )


__all__ = [
    "ComaService",
    "ServeConfig",
    "format_listen_line",
    "parse_spec",
    "serve_forever",
]
