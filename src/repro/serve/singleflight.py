"""Single-flight request coalescing keyed on ``RunSpec.key()``.

When N identical requests are in flight at once, exactly one of them —
the *leader* — performs the simulation; the rest await the leader's
future and receive the same result.  This is correct because the result
of a ``RunSpec`` is a pure function of its key (the disk cache under
:mod:`repro.experiments.runner` relies on the same property, and its
multi-writer-safe publication means even leaders in *different server
processes* racing on one key converge on one cache entry).

Failure semantics: a failed leader propagates its exception to every
waiter, and the key is removed *before* the exception is set — a failed
flight never poisons the key, so the next request for it starts a fresh
flight.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent calls with one key into one execution."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    @property
    def inflight(self) -> int:
        """Number of distinct keys currently being computed."""
        return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        return key in self._inflight

    async def run(
        self, key: str, work: Callable[[], Awaitable[T]]
    ) -> tuple[T, bool]:
        """Run ``work`` (or coalesce onto the flight already running it).

        Returns ``(result, coalesced)`` where ``coalesced`` is True for
        waiters that piggybacked on another request's flight.  Waiters
        are shielded from each other: one waiter's cancellation (a
        dropped client connection) cannot cancel the shared flight.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            return await asyncio.shield(existing), True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            result = await work()
        except BaseException as exc:
            # Unlink first: a failed flight must not poison the key.
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved so a flight nobody coalesced onto does
                # not log "exception was never retrieved" at GC time.
                future.exception()
            raise
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(result)
        return result, False
