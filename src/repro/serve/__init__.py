"""``repro.serve``: the async simulation service (``coma-sim serve``).

Layers, bottom-up:

* :mod:`repro.serve.http` — minimal asyncio HTTP/1.1 transport + SSE.
* :mod:`repro.serve.admission` — bounded per-tenant queues, token-bucket
  rate limiting (429 + ``Retry-After``).
* :mod:`repro.serve.singleflight` — concurrent identical requests
  coalesce onto one simulation keyed on ``RunSpec.key()``.
* :mod:`repro.serve.instruments` — ``serve_*`` metric families.
* :mod:`repro.serve.app` — :class:`ComaService` wiring it all together.
* :mod:`repro.serve.loadtest` — bundled async load-test client.
"""

from repro.serve.admission import Admission, AdmissionController, TokenBucket
from repro.serve.app import ComaService, ServeConfig, parse_spec, serve_forever
from repro.serve.http import HttpError, Request, SseWriter, parse_sse
from repro.serve.instruments import ServiceInstruments
from repro.serve.loadtest import http_request, run_loadtest, wait_healthy
from repro.serve.singleflight import SingleFlight

__all__ = [
    "Admission",
    "AdmissionController",
    "ComaService",
    "HttpError",
    "Request",
    "ServeConfig",
    "ServiceInstruments",
    "SingleFlight",
    "SseWriter",
    "TokenBucket",
    "http_request",
    "parse_spec",
    "parse_sse",
    "run_loadtest",
    "serve_forever",
    "wait_healthy",
]
