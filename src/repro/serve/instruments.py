"""Pre-bound service-level metric families (``serve_*``).

The same :class:`~repro.obs.metrics.MetricsRegistry` the simulation core
instruments is reused for the serving layer, so one ``/metrics`` scrape
covers both worlds: simulated quantities (``coma_*``, ``bus_*``,
``sim_*``), experiment-layer cache traffic (``experiments_*`` — the
service routes the runner's tally in via ``set_experiment_metrics``) and
the request-path families declared here.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


class ServiceInstruments:
    """Request-path families, bound once at service construction."""

    __slots__ = (
        "registry", "requests", "latency", "queue_depth", "dedup",
        "rejected", "inflight_keys", "sse_events", "history_queries",
        "history_records", "history_rows",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.requests = registry.counter(
            "serve_requests", "requests by route and response status",
            labels=("route", "status"),
        )
        self.latency = registry.histogram(
            "serve_request_latency_us",
            "wall-clock microseconds from admission to response, by route",
            labels=("route",),
        )
        self.queue_depth = registry.gauge(
            "serve_queue_depth",
            "admitted requests currently in flight, by tenant",
            labels=("tenant",),
        )
        self.dedup = registry.counter(
            "serve_dedup",
            "single-flight outcomes: leaders simulate, coalesced wait",
            labels=("outcome",),
        )
        self.rejected = registry.counter(
            "serve_rejected", "requests rejected at admission, by reason",
            labels=("reason",),
        )
        self.inflight_keys = registry.gauge(
            "serve_singleflight_inflight",
            "distinct RunSpec keys currently being computed",
        )
        self.sse_events = registry.counter(
            "serve_sse_events", "server-sent events emitted, by type",
            labels=("event",),
        )
        self.history_queries = registry.counter(
            "serve_history_queries",
            "run-archive read requests, by route",
            labels=("route",),
        )
        self.history_records = registry.counter(
            "serve_history_records",
            "runs recorded into the history archive, by outcome",
            labels=("outcome",),
        )
        self.history_rows = registry.gauge(
            "serve_history_rows",
            "run rows in the attached history archive",
        )
