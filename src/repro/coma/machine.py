"""The bus-based COMA memory system (paper sections 2-3).

:class:`ComaMachine` wires together the per-processor L1s and SLCs, the
per-node attraction memories with their node controllers and DRAM banks,
the global snooping bus, the four-state invalidation protocol and the
accept-based replacement engine.  The simulation kernel drives it through
three entry points:

* :meth:`ComaMachine.read`  — processor load; returns completion time and
  the level that satisfied it (``l1``/``slc``/``am``/``remote``);
* :meth:`ComaMachine.write` — one write drained from a write buffer;
* :meth:`ComaMachine.rmw`   — atomic read-modify-write (lock/barrier ops).

All times are integer nanoseconds.  The machine never looks at data
values — workloads keep real data on the Python side — so coherence here
is about *where copies live*, which is all the paper's metrics need.
"""

from __future__ import annotations

from typing import Optional

from repro.bus.sharedbus import SharedBus
from repro.bus.transaction import TxKind
from repro.coma import protocol
from repro.caches.l1 import L1Cache
from repro.caches.slc import SecondLevelCache
from repro.coma.linetable import LOC_AM, LOC_OVERFLOW, LOC_SLC, LineTable
from repro.coma.node import (
    REMOVED_EVICTED,
    REMOVED_INVALIDATED,
    ComaNode,
)
from repro.coma.replacement import ReplacementEngine
from repro.coma.states import (
    EXCLUSIVE,
    INVALID,
    OWNER,
    SHARED,
    is_owning,
    state_name,
)
from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.mem.address import AddressSpace
from repro.mem.setassoc import Entry
from repro.stats.counters import Counters
from repro.timing.resource import Resource

#: Levels reported to the processor model for stall accounting.
LEVEL_L1 = "l1"
LEVEL_SLC = "slc"
LEVEL_AM = "am"
LEVEL_REMOTE = "remote"


class ComaMachine:
    """A 16-processor (configurable) cluster-based COMA memory system."""

    def __init__(self, config: MachineConfig, space: AddressSpace) -> None:
        config._require_sized()
        if space.page_size != config.page_size:
            raise ProtocolError(
                f"address space page size {space.page_size} != config {config.page_size}"
            )
        self.config = config
        self.timing = config.timing
        self.space = space
        self.counters = Counters()
        self.lines = LineTable()
        self.bus = SharedBus(config.timing, config.line_size)
        am_geom = config.am_geometry
        self.nodes: list[ComaNode] = [
            ComaNode(i, am_geom, config) for i in range(config.n_nodes)
        ]
        slc_geom = config.slc_geometry
        l1_geom = config.l1_geometry
        self.slcs: list[SecondLevelCache] = [
            SecondLevelCache(slc_geom) for _ in range(config.n_processors)
        ]
        self.l1s: list[L1Cache] = [L1Cache(l1_geom) for _ in range(config.n_processors)]
        self.slc_res: list[Resource] = [
            Resource(f"slc{p}") for p in range(config.n_processors)
        ]
        self.repl = ReplacementEngine(self)
        self._shift = config.line_shift
        self._node_of = [config.node_of_proc(p) for p in range(config.n_processors)]
        #: Time of the operation currently being processed; used by
        #: background actions (back-invalidations, relocations) so they
        #: charge resource occupancy at a sensible instant.
        self.now = 0
        #: True while processing a posted (write-buffered) write: all
        #: resource occupancy it causes goes to the background ports so
        #: demand accesses are never queued behind it (read bypass).
        self._bg = False
        #: Optional :class:`repro.obs.sink.TraceSink`.  None (the default)
        #: keeps every emission site a single ``if`` with no allocations;
        #: attach one with :meth:`set_trace`.
        self.trace = None
        #: Optional :class:`repro.obs.metrics.MachineInstruments`; same
        #: ``None``-by-default, one-``if``-per-site discipline as tracing.
        #: Attach a registry with :meth:`set_metrics`.
        self.metrics = None

    def set_trace(self, sink) -> None:
        """Attach a trace sink to the machine and its interconnect."""
        self.trace = sink
        self.bus.trace = sink

    def set_metrics(self, registry) -> None:
        """Wire a :class:`repro.obs.metrics.MetricsRegistry` into the
        machine and its interconnect (pre-binding the hot-path children)."""
        from repro.obs.metrics import BusInstruments, MachineInstruments

        self.metrics = MachineInstruments(registry, len(self.nodes))
        self.bus.metrics = BusInstruments(registry, self.bus.name)

    # ------------------------------------------------------------------
    # processor-facing operations
    # ------------------------------------------------------------------

    def read(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """Processor ``proc`` loads ``addr`` at time ``now``.

        Returns ``(completion_time, level)``.
        """
        self.now = now
        c = self.counters
        c.reads += 1
        line = addr >> self._shift
        node = self.nodes[self._node_of[proc]]
        self._ensure_page(addr, node, now)

        if self.l1s[proc].lookup(line):
            c.l1_read_hits += 1
            done = now + self.timing.l1_hit_ns
            if self.trace is not None:
                self.trace.access(now, proc, "r", line, LEVEL_L1, done - now,
                                  addr)
            if self.metrics is not None:
                self.metrics.access("r", LEVEL_L1, done - now)
            return done, LEVEL_L1

        slc = self.slcs[proc]
        start = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
        if slc.lookup(line) is not None:
            c.slc_read_hits += 1
            self.l1s[proc].fill(line)
            done = start + self.timing.slc_hit_ns
            if self.trace is not None:
                self.trace.access(now, proc, "r", line, LEVEL_SLC, done - now,
                                  addr)
            if self.metrics is not None:
                self.metrics.access("r", LEVEL_SLC, done - now)
            return done, LEVEL_SLC

        # Node level: the attraction memory (or the overflow buffer).
        entry = node.am.lookup(line)
        if entry is not None:
            done = self._am_access(node, now)
            node.am.touch(entry)
            if node.shadow is not None:
                node.shadow.access(line)
            c.am_read_hits += 1
            self._fill_hierarchy(proc, node, line, entry)
            if self.trace is not None:
                self.trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
            if self.metrics is not None:
                self.metrics.access("r", LEVEL_AM, done - now)
                self.metrics.node_hit(node.id)
            return done, LEVEL_AM
        if line in node.overflow:
            done = self._am_access(node, now)
            if node.shadow is not None:
                node.shadow.access(line)
            c.overflow_read_hits += 1
            if self.trace is not None:
                self.trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
            if self.metrics is not None:
                self.metrics.access("r", LEVEL_AM, done - now)
                self.metrics.node_hit(node.id)
            return done, LEVEL_AM
        if not self.config.inclusive:
            sr = node.slc_resident.get(line)
            if sr is not None:
                # Another local SLC supplies the line through the node
                # controller (intra-node cache-to-cache).
                done = self._am_access(node, now)
                if node.shadow is not None:
                    node.shadow.access(line)
                c.slc_neighbor_hits += 1
                self._fill_slc_resident(proc, node, line, sr)
                if self.trace is not None:
                    self.trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
                if self.metrics is not None:
                    self.metrics.access("r", LEVEL_AM, done - now)
                    self.metrics.node_hit(node.id)
                return done, LEVEL_AM

        # Read node miss.
        c.node_read_misses += 1
        if self.metrics is not None:
            self.metrics.node_miss(node.id)
        self._classify_read_miss(node, line)
        if node.shadow is not None:
            node.shadow.access(line)
        info = self.lines.get(line)
        owner = self.nodes[info.owner_node]
        self._record_remote(TxKind.READ_DATA, node, owner, line)
        t = self._remote_path(node, owner, now)

        # Supplier side: E degrades to O (a shared copy now exists).
        self._owner_to_shared_state(owner, line, info)

        way = self.repl.make_room(node, line, t, mandatory=False)
        if way is None:
            # Uncached read: data delivered, no local copy retained.
            done = t + self.timing.remote_overhead_ns
            if self.trace is not None:
                self.trace.access(now, proc, "r", line, LEVEL_REMOTE,
                                  done - now, addr)
            if self.metrics is not None:
                self.metrics.access("r", LEVEL_REMOTE, done - now)
            return done, LEVEL_REMOTE
        node.am.fill(way, line, SHARED)
        node.note_present(line)
        info.sharers.add(node.id)
        if self.trace is not None:
            self.trace.transition(t, node.id, line, "fill", "I", "S")
        s = node.dram.acquire(t, self.timing.dram_busy_ns, self._bg)
        done = s + self.timing.dram_latency_ns + self.timing.remote_overhead_ns
        self._fill_hierarchy(proc, node, line, way)
        if self.trace is not None:
            self.trace.access(now, proc, "r", line, LEVEL_REMOTE,
                                  done - now, addr)
        if self.metrics is not None:
            self.metrics.access("r", LEVEL_REMOTE, done - now)
        return done, LEVEL_REMOTE

    def write(self, proc: int, addr: int, now: int) -> int:
        """One write drained from ``proc``'s write buffer at ``now``.

        Returns the completion time; under release consistency the
        processor does not wait for it unless the buffer is full or a
        release is pending.
        """
        self.counters.writes += 1
        self._bg = True
        try:
            done, level = self._write_access(proc, addr, now)
        finally:
            self._bg = False
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("w", level, done - now)
        return done

    def rmw(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """Atomic read-modify-write (synchronization accesses).

        The processor stalls for it (acquire semantics); returns
        ``(completion_time, level)`` for stall accounting.
        """
        self.counters.atomics += 1
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "rmw", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("rmw", level, done - now)
        return done, level

    def write_stalling(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """A write the processor waits for (sequential-consistency mode)."""
        self.counters.writes += 1
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("w", level, done - now)
        return done, level

    # ------------------------------------------------------------------
    # write machinery
    # ------------------------------------------------------------------

    def _write_access(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        line = addr >> self._shift
        node = self.nodes[self._node_of[proc]]
        self._ensure_page(addr, node, now)

        self.l1s[proc].write_hit(line)  # write-through, no-write-allocate
        slc = self.slcs[proc]
        slc_hit = line in slc
        info = self.lines.get(line)

        entry = node.am.lookup(line)
        sr = None
        if entry is not None:
            local_state = entry.state
            where = LOC_AM
        elif line in node.overflow:
            local_state = node.overflow[line]
            where = LOC_OVERFLOW
        else:
            sr = node.slc_resident.get(line) if not self.config.inclusive else None
            local_state = sr[1] if sr is not None else INVALID
            where = LOC_SLC

        if local_state == EXCLUSIVE:
            if node.shadow is not None:
                node.shadow.access(line)
            if entry is not None:
                node.am.touch(entry)
            return self._local_write_finish(proc, node, line, entry, sr, slc_hit, now)

        if local_state in (OWNER, SHARED):
            # Upgrade: erase every other copy, take exclusive ownership.
            c.upgrades += 1
            s = node.nc.acquire(now, self.timing.nc_busy_ns, self._bg)
            t = self._upgrade_broadcast(node, line, s + self.timing.nc_ns)
            self._invalidate_others(line, node)
            if self.trace is not None:
                self.trace.transition(t, node.id, line, "upgrade",
                                      state_name(local_state), "E")
            if entry is not None:
                entry.state = EXCLUSIVE
                node.am.touch(entry)
            elif where == LOC_OVERFLOW:
                node.overflow[line] = EXCLUSIVE
            else:
                assert sr is not None
                sr[1] = EXCLUSIVE
            info.owner_node = node.id
            info.owner_loc = where
            info.sharers.clear()
            if node.shadow is not None:
                node.shadow.access(line)
            return self._local_write_finish(proc, node, line, entry, sr, slc_hit, t)

        # Write node miss: read-exclusive on the bus.
        c.node_write_misses += 1
        c.read_exclusive += 1
        if self.metrics is not None:
            self.metrics.node_miss(node.id)
        owner = self.nodes[info.owner_node]
        self._record_remote(TxKind.READ_EXCL, node, owner, line)
        t = self._remote_path(node, owner, now)
        self._invalidate_others(line, node)
        way = self.repl.make_room(node, line, t, mandatory=True)
        assert way is not None, "mandatory make_room returned None"
        if self.trace is not None:
            self.trace.transition(t, node.id, line, "read_exclusive", "I", "E")
        node.am.fill(way, line, EXCLUSIVE)
        node.note_present(line)
        info.owner_node = node.id
        info.owner_loc = LOC_AM
        info.sharers.clear()
        if node.shadow is not None:
            node.shadow.access(line)
        s = node.dram.acquire(t, self.timing.dram_busy_ns, self._bg)
        t = s + self.timing.dram_latency_ns
        self._fill_hierarchy(proc, node, line, way)
        self.slcs[proc].mark_dirty(line)
        return t + self.timing.remote_overhead_ns, LEVEL_REMOTE

    def _local_write_finish(
        self,
        proc: int,
        node: ComaNode,
        line: int,
        entry: Optional[Entry],
        sr: Optional[list],
        slc_hit: bool,
        t: int,
    ) -> tuple[int, str]:
        """Complete a write whose node already holds exclusive ownership."""
        slc = self.slcs[proc]
        if slc_hit:
            s = self.slc_res[proc].acquire(t, self.timing.slc_occupancy_ns, self._bg)
            slc.mark_dirty(line)
            return s + self.timing.slc_hit_ns, LEVEL_SLC
        if entry is not None:
            done = self._am_access(node, t)
            self._fill_hierarchy(proc, node, line, entry)
            slc.mark_dirty(line)
            return done, LEVEL_AM
        if sr is not None:
            # Fetched from a neighbour SLC within the node (non-inclusive).
            done = self._am_access(node, t)
            self._fill_slc_resident(proc, node, line, sr)
            slc.mark_dirty(line)
            return done, LEVEL_AM
        # Owner copy parked in overflow: write at AM level, no SLC fill.
        return self._am_access(node, t), LEVEL_AM

    # ------------------------------------------------------------------
    # protocol helpers
    # ------------------------------------------------------------------

    def _owner_to_shared_state(self, owner: ComaNode, line: int, info) -> None:
        """After supplying a read copy, the owner snoops ``remote_read``
        and degrades per the protocol table (E -> O; O stays O)."""
        degraded = protocol.next_state(EXCLUSIVE, "remote_read")
        changed = False
        oentry = owner.am.lookup(line)
        if oentry is not None:
            if oentry.state == EXCLUSIVE:
                oentry.state = degraded
                changed = True
        elif line in owner.overflow:
            if owner.overflow[line] == EXCLUSIVE:
                owner.overflow[line] = degraded
                changed = True
        elif line in owner.slc_resident:
            if owner.slc_resident[line][1] == EXCLUSIVE:
                owner.slc_resident[line][1] = degraded
                changed = True
        else:
            raise ProtocolError(
                f"owner node {owner.id} does not hold line {line:#x}"
            )
        if changed and self.trace is not None:
            self.trace.transition(self.now, owner.id, line, "remote_read",
                                  "E", state_name(degraded))

    def _invalidate_others(self, line: int, writer: ComaNode) -> None:
        """Erase every copy of ``line`` outside ``writer`` (upgrade or
        read-exclusive).  The line table is updated by the caller."""
        info = self.lines.get(line)
        c = self.counters
        for sid in list(info.sharers):
            if sid == writer.id:
                continue
            n = self.nodes[sid]
            entry = n.am.lookup(line)
            if entry is not None:
                self.strip_node_copy(n, entry, REMOVED_INVALIDATED)
            else:
                sr = n.slc_resident.pop(line, None)
                if sr is None:
                    raise ProtocolError(f"sharer {sid} lost line {line:#x}")
                self._invalidate_mask(n, line, sr[0])
                n.note_removed(line, REMOVED_INVALIDATED)
                if n.shadow is not None:
                    n.shadow.remove(line)
            c.invalidations_sent += 1
            if self.trace is not None:
                self.trace.transition(self.now, sid, line, "invalidate",
                                      "S", "I")
        if info.owner_node != writer.id:
            onode = self.nodes[info.owner_node]
            if info.owner_loc == LOC_AM:
                entry = onode.am.lookup(line)
                if entry is None:
                    raise ProtocolError(f"owner {onode.id} lost line {line:#x}")
                prev = entry.state
                self.strip_node_copy(onode, entry, REMOVED_INVALIDATED)
            elif info.owner_loc == LOC_OVERFLOW:
                prev = onode.overflow.pop(line)
                onode.note_removed(line, REMOVED_INVALIDATED)
                if onode.shadow is not None:
                    onode.shadow.remove(line)
            else:  # LOC_SLC
                sr = onode.slc_resident.pop(line)
                prev = sr[1]
                self._invalidate_mask(onode, line, sr[0])
                onode.note_removed(line, REMOVED_INVALIDATED)
                if onode.shadow is not None:
                    onode.shadow.remove(line)
            c.invalidations_sent += 1
            if self.trace is not None:
                self.trace.transition(self.now, onode.id, line, "invalidate",
                                      state_name(prev), "I")

    def drop_shared_copy(self, node: ComaNode, entry: Entry) -> None:
        """Silently drop a Shared replica (safe: an owner exists elsewhere).

        In a non-inclusive hierarchy, local SLC copies keep the node a
        sharer: only the AM way is surrendered.
        """
        assert entry.state == SHARED
        line = entry.line
        if not self.config.inclusive and entry.aux:
            node.slc_resident[line] = [entry.aux, SHARED]
            entry.aux = 0
            node.am.invalidate(entry)
            return
        info = self.lines.get(line)
        info.sharers.discard(node.id)
        self.counters.shared_drops += 1
        if self.trace is not None:
            self.trace.transition(self.now, node.id, line, "drop", "S", "I")
        self.strip_node_copy(node, entry, REMOVED_EVICTED)

    def strip_node_copy(self, node: ComaNode, entry: Entry, reason: str) -> None:
        """Remove an AM entry from ``node``: back-invalidate the local SLCs
        (inclusion), update shadow/miss bookkeeping, invalidate the way."""
        line = entry.line
        self.backinvalidate_slcs(node, entry)
        node.note_removed(line, reason)
        if reason == REMOVED_INVALIDATED and node.shadow is not None:
            node.shadow.remove(line)
        node.am.invalidate(entry)

    def backinvalidate_slcs(self, node: ComaNode, entry: Entry) -> None:
        """Purge ``entry.line`` from every local SLC/L1 caching it."""
        if entry.aux == 0:
            return
        self._invalidate_mask(node, entry.line, entry.aux)
        entry.aux = 0

    def _invalidate_mask(self, node: ComaNode, line: int, mask: int) -> None:
        base = node.id * self.config.procs_per_node
        idx = 0
        while mask:
            if mask & 1:
                p = base + idx
                self.slcs[p].invalidate(line)
                self.l1s[p].invalidate(line)
                self.slc_res[p].acquire(self.now, self.timing.slc_occupancy_ns, self._bg)
                self.counters.back_invalidations += 1
            mask >>= 1
            idx += 1

    # ------------------------------------------------------------------
    # fills, paging, timing
    # ------------------------------------------------------------------

    def _fill_hierarchy(
        self, proc: int, node: ComaNode, line: int, am_entry: Entry
    ) -> None:
        """Install ``line`` into ``proc``'s SLC and L1 after an AM-level hit
        or a remote fill, handling the SLC victim's write-back.

        The presence bit is recorded *before* the victim's consequences
        are processed: in a non-inclusive hierarchy the victim handling
        can displace ``line`` itself from the AM (owner reinsertion picks
        a victim in the same set), and the displacement machinery then
        sees an accurate picture and migrates the bit to
        ``slc_resident``.  The L1 fill happens only if the line survived
        in this SLC.
        """
        am_entry.aux |= 1 << (proc % self.config.procs_per_node)
        victim = self.slcs[proc].fill(line)
        if victim is not None:
            self._handle_slc_victim(proc, node, victim)
        if line in self.slcs[proc]:
            self.l1s[proc].fill(line)

    def _fill_slc_resident(
        self, proc: int, node: ComaNode, line: int, sr: list
    ) -> None:
        """Non-inclusive: install a line that lives only in local SLCs."""
        sr[0] |= 1 << (proc % self.config.procs_per_node)
        if line not in self.slcs[proc]:
            victim = self.slcs[proc].fill(line)
            if victim is not None:
                self._handle_slc_victim(proc, node, victim)
        if line in self.slcs[proc]:
            self.l1s[proc].fill(line)

    def _handle_slc_victim(self, proc: int, node: ComaNode, victim) -> None:
        """Consequences of an SLC eviction.

        Inclusive hierarchy: clear the AM entry's presence bit and write
        back dirty data.  Non-inclusive hierarchy: the evicted line may
        exist *only* in SLCs; when the last SLC copy of an owner line goes,
        the line is written back into the AM (which may displace another
        owner through the normal replacement machinery) so the datum is
        never lost.
        """
        line = victim.line
        bit = 1 << (proc % self.config.procs_per_node)
        self.l1s[proc].invalidate(line)
        ventry = node.am.lookup(line)
        if ventry is not None:
            ventry.aux &= ~bit
            if victim.dirty:
                node.dram.acquire(self.now, self.timing.dram_busy_ns, self._bg)
                self.counters.slc_writebacks += 1
            return
        sr = node.slc_resident.get(line)
        if sr is None:
            return  # line already left the node at AM level
        sr[0] &= ~bit
        if sr[0]:
            return  # other local SLCs still hold it
        state = sr[1]
        del node.slc_resident[line]
        info = self.lines.get(line)
        if state == SHARED:
            info.sharers.discard(node.id)
            node.note_removed(line, REMOVED_EVICTED)
            self.counters.shared_drops += 1
            if self.trace is not None:
                self.trace.transition(self.now, node.id, line, "drop",
                                      "S", "I")
            return
        # Last copy of an owner line: reinsert into the attraction memory.
        way = self.repl.make_room(node, line, self.now, mandatory=True)
        assert way is not None
        node.am.fill(way, line, state)
        node.note_present(line)
        info.owner_loc = LOC_AM
        node.dram.acquire(self.now, self.timing.dram_busy_ns, self._bg)
        self.counters.slc_owner_reinserts += 1

    def _ensure_page(self, addr: int, node: ComaNode, now: int) -> None:
        """Materialize the page on first touch: its lines appear in the
        toucher's AM in Exclusive state, instantly and with no processor
        delay (paper section 3)."""
        page = self.space.page_of(addr)
        if page in self.space.page_home:
            return
        self.space.ensure_page(addr, node.id)
        self.counters.pages_allocated += 1
        for line in self.space.lines_of_page(page, self.config.line_size):
            self.lines.materialize(line, node.id)
            way = self.repl.make_room(node, line, now, mandatory=True)
            assert way is not None
            node.am.fill(way, line, EXCLUSIVE)
            node.note_present(line)
            if self.trace is not None:
                self.trace.transition(now, node.id, line, "materialize",
                                      "I", "E")

    def _am_access(self, node: ComaNode, t0: int) -> int:
        """Charge one attraction-memory access: controller in, DRAM read,
        controller return.  Contention-free latency 148 ns."""
        tm = self.timing
        s = node.nc.acquire(t0, tm.nc_busy_ns, self._bg)
        t = s + tm.nc_ns
        s = node.dram.acquire(t, tm.dram_busy_ns, self._bg)
        t = s + tm.dram_latency_ns
        s = node.nc.acquire(t, tm.nc_busy_ns, self._bg)
        return s + tm.nc_ns

    # -- interconnect hooks (overridden by the hierarchical machine) -----

    def _record_remote(
        self, kind: TxKind, local: ComaNode, owner: ComaNode, line: int = -1
    ) -> None:
        """Meter one remote data transaction on the interconnect."""
        self.bus.record(kind, self.now, local.id, line)

    def _upgrade_broadcast(self, node: ComaNode, line: int, t: int) -> int:
        """Broadcast an upgrade/erase; returns its completion time."""
        self.bus.record(TxKind.UPGRADE, t, node.id, line)
        return self.bus.phase(t, self._bg)

    def charge_replacement(
        self,
        src: ComaNode,
        dst: Optional[ComaNode],
        now: int,
        data: bool,
        line: int = -1,
    ) -> None:
        """Meter and time a replacement transaction (probe, and the data
        transfer into ``dst`` when ``data``)."""
        self.bus.record(TxKind.REPLACE_PROBE, now, src.id, line)
        t = self.bus.phase(now, self._bg)
        if data:
            assert dst is not None
            self.bus.record(TxKind.REPLACE_DATA, t, src.id, line)
            t = self.bus.phase(t, self._bg)
            s = dst.nc.acquire(t, self.timing.nc_busy_ns, self._bg)
            dst.dram.acquire(s + self.timing.nc_ns, self.timing.dram_busy_ns, self._bg)

    def node_scan_order(self, exclude_id: int, rotor: int) -> list[ComaNode]:
        """Receiver scan order for the replacement engine: rotating round
        robin over all other nodes."""
        n = len(self.nodes)
        return [
            self.nodes[(rotor + k) % n]
            for k in range(n)
            if (rotor + k) % n != exclude_id
        ]

    def _remote_path(self, local: ComaNode, owner: ComaNode, now: int) -> int:
        """Charge the remote fetch up to data arrival at the local
        controller: local NC, bus request, remote NC + DRAM, bus reply,
        local NC.  The local allocate/fill and fixed overhead are added by
        the caller (they differ between cached and uncached reads)."""
        tm = self.timing
        s = local.nc.acquire(now, tm.nc_busy_ns, self._bg)
        t = self.bus.phase(s + tm.nc_ns, self._bg)
        s = owner.nc.acquire(t, tm.nc_busy_ns, self._bg)
        t = s + tm.nc_ns
        s = owner.dram.acquire(t, tm.dram_busy_ns, self._bg)
        t = self.bus.phase(s + tm.dram_latency_ns, self._bg)
        s = local.nc.acquire(t, tm.nc_busy_ns, self._bg)
        return s + tm.nc_ns

    def _classify_read_miss(self, node: ComaNode, line: int) -> None:
        c = self.counters
        if line not in node.ever:
            c.read_miss_cold += 1
        elif node.removal_reason.get(line) == REMOVED_INVALIDATED:
            c.read_miss_coherence += 1
        elif node.shadow is not None and line in node.shadow:
            c.read_miss_conflict += 1
        else:
            c.read_miss_capacity += 1

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Machine-wide invariant check (used heavily by the test suite).

        Verifies the line table against the per-node arrays, the single-
        owner invariant, sharer bookkeeping, and inclusion (every SLC line
        present in its node's AM with the aux bit set; every L1 line in
        the SLC).
        """
        for node in self.nodes:
            node.am.check_consistency()
        for line, info in self.lines.items():
            onode = self.nodes[info.owner_node]
            if info.owner_loc == LOC_AM:
                e = onode.am.lookup(line)
                assert e is not None and is_owning(e.state), (
                    f"line {line:#x}: owner copy missing in node {onode.id}"
                )
                if info.sharers:
                    assert e.state == OWNER, f"line {line:#x}: E with sharers"
            elif info.owner_loc == LOC_OVERFLOW:
                assert line in onode.overflow, (
                    f"line {line:#x}: overflow owner missing in node {onode.id}"
                )
            else:  # LOC_SLC
                sr = onode.slc_resident.get(line)
                assert sr is not None and is_owning(sr[1]) and sr[0], (
                    f"line {line:#x}: SLC-resident owner missing in node {onode.id}"
                )
            for sid in info.sharers:
                n = self.nodes[sid]
                se = n.am.lookup(line)
                if se is not None:
                    assert se.state == SHARED, (
                        f"line {line:#x}: sharer {sid} inconsistent"
                    )
                else:
                    sr = n.slc_resident.get(line)
                    assert sr is not None and sr[1] == SHARED and sr[0], (
                        f"line {line:#x}: sharer {sid} holds no copy"
                    )
        # Reverse direction: every valid AM entry is registered.
        for node in self.nodes:
            for e in node.am.valid_entries():
                info = self.lines.maybe(e.line)
                assert info is not None, f"unregistered line {e.line:#x}"
                if e.state == SHARED:
                    assert node.id in info.sharers
                else:
                    assert info.owner_node == node.id and info.owner_loc == LOC_AM
            for line, sr in node.slc_resident.items():
                info = self.lines.maybe(line)
                assert info is not None and sr[0], f"bad slc_resident {line:#x}"
                assert line not in node.am, f"slc_resident line {line:#x} also in AM"
                if sr[1] == SHARED:
                    assert node.id in info.sharers
                else:
                    assert info.owner_node == node.id and info.owner_loc == LOC_SLC
        # Hierarchy relations.
        ppn = self.config.procs_per_node
        for p in range(self.config.n_processors):
            node = self.nodes[self._node_of[p]]
            bit = 1 << (p % ppn)
            for se in self.slcs[p].array.valid_entries():
                ae = node.am.lookup(se.line)
                if ae is not None:
                    assert ae.aux & bit, (
                        f"aux bit missing for SLC{p} line {se.line:#x}"
                    )
                elif self.config.inclusive:
                    raise AssertionError(
                        f"inclusion violated: SLC{p} holds {se.line:#x} not in AM"
                    )
                else:
                    sr = node.slc_resident.get(se.line)
                    assert sr is not None and sr[0] & bit, (
                        f"SLC{p} line {se.line:#x} untracked at node level"
                    )
            for le in self.l1s[p].array.valid_entries():
                assert le.line in self.slcs[p], (
                    f"L1{p} holds {le.line:#x} not in SLC"
                )

    # ------------------------------------------------------------------
    def owned_line_count(self) -> int:
        """Total owner lines machine-wide (equals materialized lines)."""
        from repro.coma.states import is_owning as _owning

        total = 0
        for n in self.nodes:
            total += n.owned_lines_in_am() + len(n.overflow)
            total += sum(1 for sr in n.slc_resident.values() if _owning(sr[1]))
        return total
