"""The bus-based COMA memory system (paper sections 2-3).

:class:`ComaMachine` wires together the per-processor L1s and SLCs, the
per-node attraction memories with their node controllers and DRAM banks,
the global snooping bus, the four-state invalidation protocol and the
accept-based replacement engine.  The simulation kernel drives it through
three entry points:

* :meth:`ComaMachine.read`  — processor load; returns completion time and
  the level that satisfied it (``l1``/``slc``/``am``/``remote``);
* :meth:`ComaMachine.write` — one write drained from a write buffer;
* :meth:`ComaMachine.rmw`   — atomic read-modify-write (lock/barrier ops).

All times are integer nanoseconds.  The machine never looks at data
values — workloads keep real data on the Python side — so coherence here
is about *where copies live*, which is all the paper's metrics need.

The per-access paths run *compiled* (see :mod:`repro.analysis.compile`):
at build time the machine interns the protocol table, the timing
constants and the victim policy into plain ints bound as ``_t_*`` /
``_st_*`` attributes, and line state is addressed as way numbers into the
attraction memory's arrays-of-structs.  The certification pass of
``coma-sim verify`` re-derives every one of these bindings from the
declarative table, so the compiled machine cannot silently diverge from
the protocol source.  Functions marked ``@hotpath`` are held to the HOT
lint rules (no interpreted dispatch, no per-access allocation).
"""

from __future__ import annotations

from typing import Optional

from repro.bus.sharedbus import SharedBus
from repro.bus.transaction import TxKind
from repro.caches.l1 import L1Cache
from repro.caches.slc import SecondLevelCache
from repro.coma.linetable import LOC_AM, LOC_OVERFLOW, LOC_SLC, LineTable
from repro.coma.node import (
    REMOVED_EVICTED,
    REMOVED_INVALIDATED,
    ComaNode,
)
from repro.coma.replacement import ReplacementEngine
from repro.coma.states import (
    EXCLUSIVE,
    INVALID,
    OWNER,
    SHARED,
    is_owning,
    state_name,
)
from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.common.hotpath import hotpath
from repro.mem.address import AddressSpace
from repro.stats.counters import Counters
from repro.timing.resource import Resource

#: Levels reported to the processor model for stall accounting.
LEVEL_L1 = "l1"
LEVEL_SLC = "slc"
LEVEL_AM = "am"
LEVEL_REMOTE = "remote"


class ComaMachine:
    """A 16-processor (configurable) cluster-based COMA memory system."""

    def __init__(self, config: MachineConfig, space: AddressSpace) -> None:
        # Deferred: repro.analysis's package init imports this module back
        # (the cross-checker drives ComaMachine), so the compiler can only
        # be pulled in at machine build time, never at import time.
        from repro.analysis.compile import build_dispatch

        config._require_sized()
        if space.page_size != config.page_size:
            raise ProtocolError(
                f"address space page size {space.page_size} != config {config.page_size}"
            )
        self.config = config
        self.timing = config.timing
        self.space = space
        self.counters = Counters()
        self.lines = LineTable()
        self.bus = SharedBus(config.timing, config.line_size)
        am_geom = config.am_geometry
        self.nodes: list[ComaNode] = [
            ComaNode(i, am_geom, config) for i in range(config.n_nodes)
        ]
        slc_geom = config.slc_geometry
        l1_geom = config.l1_geometry
        self.slcs: list[SecondLevelCache] = [
            SecondLevelCache(slc_geom) for _ in range(config.n_processors)
        ]
        self.l1s: list[L1Cache] = [L1Cache(l1_geom) for _ in range(config.n_processors)]
        self.slc_res: list[Resource] = [
            Resource(f"slc{p}") for p in range(config.n_processors)
        ]
        #: Compiled dispatch bundle: flattened protocol table, interned
        #: timing and policies.  ``coma-sim verify`` certifies every
        #: binding below against the declarative table (rules C101-C104).
        self.dispatch = build_dispatch(config)
        tm = self.dispatch.timing
        self._t_l1 = tm.l1_hit
        self._t_slc = tm.slc_hit
        self._t_slc_occ = tm.slc_occ
        self._t_nc = tm.nc
        self._t_nc_busy = tm.nc_busy
        self._t_dram_lat = tm.dram_lat
        self._t_dram_busy = tm.dram_busy
        self._t_remote = tm.remote_overhead
        #: Supplier-side degradation on a snooped remote read (E -> O).
        self._st_degrade = self.dispatch.st_degrade_remote_read
        self._victim_mode = self.dispatch.victim_mode
        #: (no-surviving-sharers, sharers-survive) inject resolutions.
        self._inj_invalid = self.dispatch.inject_from_invalid
        self._inj_shared = self.dispatch.inject_from_shared
        self._inclusive = config.inclusive
        self._ppn = config.procs_per_node
        self._page_home = space.page_home
        self._page_size = space.page_size
        self.repl = ReplacementEngine(self)
        self._shift = config.line_shift
        self._node_of = [config.node_of_proc(p) for p in range(config.n_processors)]
        #: Direct-mapped L1 probes are opened in line in read()/write():
        #: the backing arrays are pre-bound per processor.
        self._l1_direct = l1_geom.assoc == 1
        self._l1_nsets = l1_geom.num_sets
        self._l1_arrays = [l1.array for l1 in self.l1s]
        #: Time of the operation currently being processed; used by
        #: background actions (back-invalidations, relocations) so they
        #: charge resource occupancy at a sensible instant.
        self.now = 0
        #: True while processing a posted (write-buffered) write: all
        #: resource occupancy it causes goes to the background ports so
        #: demand accesses are never queued behind it (read bypass).
        self._bg = False
        #: Optional :class:`repro.obs.sink.TraceSink`.  None (the default)
        #: keeps every emission site a single ``if`` with no allocations;
        #: attach one with :meth:`set_trace`.
        self.trace = None
        #: Optional :class:`repro.obs.metrics.MachineInstruments`; same
        #: ``None``-by-default, one-``if``-per-site discipline as tracing.
        #: Attach a registry with :meth:`set_metrics`.
        self.metrics = None
        #: Optional :class:`repro.obs.spans.SpanBuilder`.  Installed by
        #: :meth:`set_trace` only when the sink opts in (``wants_spans``),
        #: so span construction follows the same zero-overhead-when-off
        #: discipline: every checkpoint site is one ``if x is not None``.
        self.spans = None

    def set_trace(self, sink) -> None:
        """Attach a trace sink to the machine and its interconnect.

        A sink with a truthy ``wants_spans`` additionally gets a
        :class:`~repro.obs.spans.SpanBuilder` so accesses emit causal
        span trees; re-attaching the same sink (a tee that grew a
        span consumer) keeps the builder's id counters.
        """
        self.trace = sink
        self.bus.trace = sink
        if sink is not None and getattr(sink, "wants_spans", False):
            if self.spans is None or self.spans.sink is not sink:
                from repro.obs.spans import SpanBuilder

                self.spans = SpanBuilder(sink)
        else:
            self.spans = None

    def set_metrics(self, registry) -> None:
        """Wire a :class:`repro.obs.metrics.MetricsRegistry` into the
        machine and its interconnect (pre-binding the hot-path children)."""
        from repro.obs.metrics import BusInstruments, MachineInstruments

        self.metrics = MachineInstruments(registry, len(self.nodes))
        self.bus.metrics = BusInstruments(registry, self.bus.name)

    # ------------------------------------------------------------------
    # processor-facing operations
    # ------------------------------------------------------------------

    @hotpath
    def read(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """Processor ``proc`` loads ``addr`` at time ``now``.

        Returns ``(completion_time, level)``.
        """
        self.now = now
        c = self.counters
        c.reads += 1
        trace = self.trace
        metrics = self.metrics
        spans = self.spans
        line = addr >> self._shift
        if spans is not None:
            spans.begin(now, proc, "r", line, addr)
        if (addr // self._page_size) not in self._page_home:
            self._materialize_page(addr, self.nodes[self._node_of[proc]], now)

        if self._l1_direct:
            a = self._l1_arrays[proc]
            w = line % self._l1_nsets
            if a.line_a[w] == line and a.state_a[w]:
                a.tick += 1
                a.lru_a[w] = a.tick
                hit = True
            else:
                hit = False
        else:
            hit = self.l1s[proc].lookup(line)
        if hit:
            c.l1_read_hits += 1
            done = now + self._t_l1
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_L1, done - now,
                                  addr)
            if metrics is not None:
                metrics.access("r", LEVEL_L1, done - now)
            if spans is not None:
                spans.end(done, LEVEL_L1)
            return done, LEVEL_L1

        node = self.nodes[self._node_of[proc]]
        shadow = node.shadow
        slc = self.slcs[proc]
        r = self.slc_res[proc]
        occ = self._t_slc_occ
        if self._bg:
            start = r.acquire(now, occ, True)
        else:
            start = r.next_free
            if start < now:
                start = now
            r.next_free = start + occ
            r.busy_ns += occ
            r.uses += 1
        sw = slc.index.get(line)
        if sw is not None:
            sa = slc.array
            sa.tick += 1
            sa.lru_a[sw] = sa.tick
            c.slc_read_hits += 1
            if self._l1_direct:
                a = self._l1_arrays[proc]
                w = line % self._l1_nsets
                if a.line_a[w] != line or not a.state_a[w]:
                    if a.state_a[w]:
                        del a.index[a.line_a[w]]
                    a.line_a[w] = line
                    a.state_a[w] = 1
                    a.index[line] = w
                    a.tick += 1
                    a.lru_a[w] = a.tick
            else:
                self.l1s[proc].fill(line)
            done = start + self._t_slc
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_SLC, done - now,
                                  addr)
            if metrics is not None:
                metrics.access("r", LEVEL_SLC, done - now)
            if spans is not None:
                spans.phase("slc_wait", start)
                spans.end(done, LEVEL_SLC)
            return done, LEVEL_SLC

        # Node level: the attraction memory (or the overflow buffer).
        am = node.am
        way = am.index.get(line)
        if way is not None:
            done = self._am_access(node, now)
            am.tick += 1
            am.lru_a[way] = am.tick
            if shadow is not None:
                shadow.access(line)
            c.am_read_hits += 1
            self._fill_hierarchy(proc, node, line, way)
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
            if metrics is not None:
                metrics.access("r", LEVEL_AM, done - now)
                metrics.node_hit(node.id)
            if spans is not None:
                spans.end(done, LEVEL_AM)
            return done, LEVEL_AM
        if line in node.overflow:
            done = self._am_access(node, now)
            if shadow is not None:
                shadow.access(line)
            c.overflow_read_hits += 1
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
            if metrics is not None:
                metrics.access("r", LEVEL_AM, done - now)
                metrics.node_hit(node.id)
            if spans is not None:
                spans.end(done, LEVEL_AM)
            return done, LEVEL_AM
        if not self._inclusive:
            sr = node.slc_resident.get(line)
            if sr is not None:
                # Another local SLC supplies the line through the node
                # controller (intra-node cache-to-cache).
                done = self._am_access(node, now)
                if shadow is not None:
                    shadow.access(line)
                c.slc_neighbor_hits += 1
                self._fill_slc_resident(proc, node, line, sr)
                if trace is not None:
                    trace.access(now, proc, "r", line, LEVEL_AM, done - now,
                                  addr)
                if metrics is not None:
                    metrics.access("r", LEVEL_AM, done - now)
                    metrics.node_hit(node.id)
                if spans is not None:
                    spans.end(done, LEVEL_AM)
                return done, LEVEL_AM

        # Read node miss.
        c.node_read_misses += 1
        if metrics is not None:
            metrics.node_miss(node.id)
        self._classify_read_miss(node, line)
        if shadow is not None:
            shadow.access(line)
        info = self.lines.get(line)
        owner = self.nodes[info.owner_node]
        self._record_remote(TxKind.READ_DATA, node, owner, line)
        t = self._remote_path(node, owner, now)

        # Supplier side: E degrades to O (a shared copy now exists).
        self._owner_to_shared_state(owner, line, info)

        way = self.repl.make_room(node, line, t, mandatory=False)
        if way is None:
            # Uncached read: data delivered, no local copy retained.
            done = t + self._t_remote
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_REMOTE,
                                  done - now, addr)
            if metrics is not None:
                metrics.access("r", LEVEL_REMOTE, done - now)
            if spans is not None:
                spans.end(done, LEVEL_REMOTE)
            return done, LEVEL_REMOTE
        am.fill_way(way, line, SHARED)
        node.note_present(line)
        info.sharers.add(node.id)
        if trace is not None:
            trace.transition(t, node.id, line, "fill", "I", "S")
        s = node.dram.acquire(t, self._t_dram_busy, self._bg)
        done = s + self._t_dram_lat + self._t_remote
        self._fill_hierarchy(proc, node, line, way)
        if trace is not None:
            trace.access(now, proc, "r", line, LEVEL_REMOTE,
                                  done - now, addr)
        if metrics is not None:
            metrics.access("r", LEVEL_REMOTE, done - now)
        if spans is not None:
            spans.phase("fill_dram", s + self._t_dram_lat)
            spans.end(done, LEVEL_REMOTE)
        return done, LEVEL_REMOTE

    def write(self, proc: int, addr: int, now: int) -> int:
        """One write drained from ``proc``'s write buffer at ``now``.

        Returns the completion time; under release consistency the
        processor does not wait for it unless the buffer is full or a
        release is pending.
        """
        self.counters.writes += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "w", addr >> self._shift, addr)
        self._bg = True
        try:
            done, level = self._write_access(proc, addr, now)
        finally:
            self._bg = False
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("w", level, done - now)
        if spans is not None:
            spans.end(done, level)
        return done

    def rmw(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """Atomic read-modify-write (synchronization accesses).

        The processor stalls for it (acquire semantics); returns
        ``(completion_time, level)`` for stall accounting.
        """
        self.counters.atomics += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "rmw", addr >> self._shift, addr)
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "rmw", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("rmw", level, done - now)
        if spans is not None:
            spans.end(done, level)
        return done, level

    def write_stalling(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """A write the processor waits for (sequential-consistency mode)."""
        self.counters.writes += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "w", addr >> self._shift, addr)
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if self.metrics is not None:
            self.metrics.access("w", level, done - now)
        if spans is not None:
            spans.end(done, level)
        return done, level

    # ------------------------------------------------------------------
    # write machinery
    # ------------------------------------------------------------------

    @hotpath
    def _write_access(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        line = addr >> self._shift
        trace = self.trace
        spans = self.spans
        if (addr // self._page_size) not in self._page_home:
            self._materialize_page(addr, self.nodes[self._node_of[proc]], now)

        # Write-through, no-write-allocate L1 probe.
        if self._l1_direct:
            a = self._l1_arrays[proc]
            w = line % self._l1_nsets
            if a.line_a[w] == line and a.state_a[w]:
                a.tick += 1
                a.lru_a[w] = a.tick
        else:
            self.l1s[proc].write_hit(line)
        node = self.nodes[self._node_of[proc]]
        shadow = node.shadow
        slc = self.slcs[proc]
        slc_hit = line in slc.index
        info = self.lines.get(line)

        am = node.am
        way = am.index.get(line)
        sr = None
        if way is not None:
            local_state = am.state_a[way]
            where = LOC_AM
        elif line in node.overflow:
            local_state = node.overflow[line]
            where = LOC_OVERFLOW
            way = -1
        else:
            sr = node.slc_resident.get(line) if not self._inclusive else None
            local_state = sr[1] if sr is not None else INVALID
            where = LOC_SLC
            way = -1

        if local_state == EXCLUSIVE:
            if shadow is not None:
                shadow.access(line)
            if way >= 0:
                am.tick += 1
                am.lru_a[way] = am.tick
            return self._local_write_finish(proc, node, line, way, sr, slc_hit, now)

        if local_state == OWNER or local_state == SHARED:
            # Upgrade: erase every other copy, take exclusive ownership.
            c.upgrades += 1
            s = node.nc.acquire(now, self._t_nc_busy, self._bg)
            t = self._upgrade_broadcast(node, line, s + self._t_nc)
            if spans is not None:
                spans.phase("nc_out", s + self._t_nc)
                spans.phase("upgrade_bus", t)
            self._invalidate_others(line, node)
            if trace is not None:
                trace.transition(t, node.id, line, "upgrade",
                                      state_name(local_state), "E")
            if way >= 0:
                am.state_a[way] = EXCLUSIVE
                am.tick += 1
                am.lru_a[way] = am.tick
            elif where == LOC_OVERFLOW:
                node.overflow[line] = EXCLUSIVE
            else:
                assert sr is not None
                sr[1] = EXCLUSIVE
            info.owner_node = node.id
            info.owner_loc = where
            # One clear() per exclusive branch; hoisting would tax the
            # branches that never touch it.
            info.sharers.clear()  # noqa: HOT003
            if shadow is not None:
                shadow.access(line)
            return self._local_write_finish(proc, node, line, way, sr, slc_hit, t)

        # Write node miss: read-exclusive on the bus.
        c.node_write_misses += 1
        c.read_exclusive += 1
        if self.metrics is not None:
            self.metrics.node_miss(node.id)
        owner = self.nodes[info.owner_node]
        self._record_remote(TxKind.READ_EXCL, node, owner, line)
        t = self._remote_path(node, owner, now)
        self._invalidate_others(line, node)
        way = self.repl.make_room(node, line, t, mandatory=True)
        assert way is not None, "mandatory make_room returned None"
        if trace is not None:
            trace.transition(t, node.id, line, "read_exclusive", "I", "E")
        am.fill_way(way, line, EXCLUSIVE)
        node.note_present(line)
        info.owner_node = node.id
        info.owner_loc = LOC_AM
        info.sharers.clear()
        if shadow is not None:
            shadow.access(line)
        s = node.dram.acquire(t, self._t_dram_busy, self._bg)
        t = s + self._t_dram_lat
        self._fill_hierarchy(proc, node, line, way)
        self.slcs[proc].mark_dirty(line)
        if spans is not None:
            spans.phase("fill_dram", t)
        return t + self._t_remote, LEVEL_REMOTE

    @hotpath
    def _local_write_finish(
        self,
        proc: int,
        node: ComaNode,
        line: int,
        way: int,
        sr: Optional[list],
        slc_hit: bool,
        t: int,
    ) -> tuple[int, str]:
        """Complete a write whose node already holds exclusive ownership.

        ``way`` is the line's way in the node's AM, or -1 when the owner
        copy sits in the overflow buffer or (non-inclusive) a local SLC.
        """
        slc = self.slcs[proc]
        if slc_hit:
            s = self.slc_res[proc].acquire(t, self._t_slc_occ, self._bg)
            slc.mark_dirty(line)
            return s + self._t_slc, LEVEL_SLC
        if way >= 0:
            done = self._am_access(node, t)
            self._fill_hierarchy(proc, node, line, way)
            slc.mark_dirty(line)
            return done, LEVEL_AM
        if sr is not None:
            # Fetched from a neighbour SLC within the node (non-inclusive).
            done = self._am_access(node, t)
            self._fill_slc_resident(proc, node, line, sr)
            slc.mark_dirty(line)
            return done, LEVEL_AM
        # Owner copy parked in overflow: write at AM level, no SLC fill.
        return self._am_access(node, t), LEVEL_AM

    # ------------------------------------------------------------------
    # protocol helpers
    # ------------------------------------------------------------------

    def _owner_to_shared_state(self, owner: ComaNode, line: int, info) -> None:
        """After supplying a read copy, the owner snoops ``remote_read``
        and degrades per the compiled table (E -> O; O stays O)."""
        degraded = self._st_degrade
        changed = False
        am = owner.am
        ow = am.index.get(line)
        if ow is not None:
            if am.state_a[ow] == EXCLUSIVE:
                am.state_a[ow] = degraded
                changed = True
        elif line in owner.overflow:
            if owner.overflow[line] == EXCLUSIVE:
                owner.overflow[line] = degraded
                changed = True
        elif line in owner.slc_resident:
            if owner.slc_resident[line][1] == EXCLUSIVE:
                owner.slc_resident[line][1] = degraded
                changed = True
        else:
            raise ProtocolError(
                f"owner node {owner.id} does not hold line {line:#x}"
            )
        if changed and self.trace is not None:
            self.trace.transition(self.now, owner.id, line, "remote_read",
                                  "E", state_name(degraded))

    def _invalidate_others(self, line: int, writer: ComaNode) -> None:
        """Erase every copy of ``line`` outside ``writer`` (upgrade or
        read-exclusive).  The line table is updated by the caller."""
        info = self.lines.get(line)
        c = self.counters
        for sid in list(info.sharers):
            if sid == writer.id:
                continue
            n = self.nodes[sid]
            w = n.am.index.get(line)
            if w is not None:
                self.strip_node_copy(n, w, REMOVED_INVALIDATED)
            else:
                sr = n.slc_resident.pop(line, None)
                if sr is None:
                    raise ProtocolError(f"sharer {sid} lost line {line:#x}")
                self._invalidate_mask(n, line, sr[0])
                n.note_removed(line, REMOVED_INVALIDATED)
                if n.shadow is not None:
                    n.shadow.remove(line)
            c.invalidations_sent += 1
            if self.trace is not None:
                self.trace.transition(self.now, sid, line, "invalidate",
                                      "S", "I")
        if info.owner_node != writer.id:
            onode = self.nodes[info.owner_node]
            if info.owner_loc == LOC_AM:
                w = onode.am.index.get(line)
                if w is None:
                    raise ProtocolError(f"owner {onode.id} lost line {line:#x}")
                prev = onode.am.state_a[w]
                self.strip_node_copy(onode, w, REMOVED_INVALIDATED)
            elif info.owner_loc == LOC_OVERFLOW:
                prev = onode.overflow.pop(line)
                onode.note_removed(line, REMOVED_INVALIDATED)
                if onode.shadow is not None:
                    onode.shadow.remove(line)
            else:  # LOC_SLC
                sr = onode.slc_resident.pop(line)
                prev = sr[1]
                self._invalidate_mask(onode, line, sr[0])
                onode.note_removed(line, REMOVED_INVALIDATED)
                if onode.shadow is not None:
                    onode.shadow.remove(line)
            c.invalidations_sent += 1
            if self.trace is not None:
                self.trace.transition(self.now, onode.id, line, "invalidate",
                                      state_name(prev), "I")

    def drop_shared_copy(self, node: ComaNode, way: int) -> None:
        """Silently drop the Shared replica held in ``way`` of ``node``'s
        AM (safe: an owner exists elsewhere).

        In a non-inclusive hierarchy, local SLC copies keep the node a
        sharer: only the AM way is surrendered.
        """
        am = node.am
        assert am.state_a[way] == SHARED
        line = am.line_a[way]
        aux = am.aux_a[way]
        if not self._inclusive and aux:
            node.slc_resident[line] = [aux, SHARED]
            am.aux_a[way] = 0
            am.invalidate_way(way)
            return
        info = self.lines.get(line)
        info.sharers.discard(node.id)
        self.counters.shared_drops += 1
        if self.trace is not None:
            self.trace.transition(self.now, node.id, line, "drop", "S", "I")
        self.strip_node_copy(node, way, REMOVED_EVICTED)

    def strip_node_copy(self, node: ComaNode, way: int, reason: str) -> None:
        """Remove AM ``way`` from ``node``: back-invalidate the local SLCs
        (inclusion), update shadow/miss bookkeeping, invalidate the way."""
        am = node.am
        line = am.line_a[way]
        self.backinvalidate_slcs(node, way)
        node.note_removed(line, reason)
        if reason == REMOVED_INVALIDATED and node.shadow is not None:
            node.shadow.remove(line)
        am.invalidate_way(way)

    def backinvalidate_slcs(self, node: ComaNode, way: int) -> None:
        """Purge the line in AM ``way`` from every local SLC/L1 caching it."""
        am = node.am
        aux = am.aux_a[way]
        if aux == 0:
            return
        self._invalidate_mask(node, am.line_a[way], aux)
        am.aux_a[way] = 0

    def _invalidate_mask(self, node: ComaNode, line: int, mask: int) -> None:
        base = node.id * self._ppn
        idx = 0
        while mask:
            if mask & 1:
                p = base + idx
                self.slcs[p].invalidate(line)
                self.l1s[p].invalidate(line)
                self.slc_res[p].acquire(self.now, self._t_slc_occ, self._bg)
                self.counters.back_invalidations += 1
            mask >>= 1
            idx += 1

    # ------------------------------------------------------------------
    # fills, paging, timing
    # ------------------------------------------------------------------

    @hotpath
    def _fill_hierarchy(
        self, proc: int, node: ComaNode, line: int, way: int
    ) -> None:
        """Install ``line`` into ``proc``'s SLC and L1 after an AM-level hit
        or a remote fill, handling the SLC victim's write-back.

        The presence bit is recorded *before* the victim's consequences
        are processed: in a non-inclusive hierarchy the victim handling
        can displace ``line`` itself from the AM (owner reinsertion picks
        a victim in the same set), and the displacement machinery then
        sees an accurate picture and migrates the bit to
        ``slc_resident``.  The L1 fill happens only if the line survived
        in this SLC.
        """
        node.am.aux_a[way] |= 1 << (proc % self._ppn)
        slc = self.slcs[proc]
        packed = slc.fill(line)
        if packed >= 0:
            self._handle_slc_victim(proc, node, packed)
        if line in slc.index:
            if self._l1_direct:
                a = self._l1_arrays[proc]
                w = line % self._l1_nsets
                if a.line_a[w] != line or not a.state_a[w]:
                    if a.state_a[w]:
                        del a.index[a.line_a[w]]
                    a.line_a[w] = line
                    a.state_a[w] = 1
                    a.index[line] = w
                    a.tick += 1
                    a.lru_a[w] = a.tick
            else:
                self.l1s[proc].fill(line)

    @hotpath
    def _fill_slc_resident(
        self, proc: int, node: ComaNode, line: int, sr: list
    ) -> None:
        """Non-inclusive: install a line that lives only in local SLCs."""
        sr[0] |= 1 << (proc % self._ppn)
        slc = self.slcs[proc]
        if line not in slc.index:
            packed = slc.fill(line)
            if packed >= 0:
                self._handle_slc_victim(proc, node, packed)
        if line in slc.index:
            self.l1s[proc].fill(line)

    @hotpath
    def _handle_slc_victim(self, proc: int, node: ComaNode, packed: int) -> None:
        """Consequences of an SLC eviction (``packed = line << 1 | dirty``).

        Inclusive hierarchy: clear the AM entry's presence bit and write
        back dirty data.  Non-inclusive hierarchy: the evicted line may
        exist *only* in SLCs; when the last SLC copy of an owner line goes,
        the line is written back into the AM (which may displace another
        owner through the normal replacement machinery) so the datum is
        never lost.
        """
        line = packed >> 1
        bit = 1 << (proc % self._ppn)
        if self._l1_direct:
            a = self._l1_arrays[proc]
            w = line % self._l1_nsets
            if a.line_a[w] == line and a.state_a[w]:
                a.line_a[w] = -1
                a.state_a[w] = 0
                del a.index[line]
        else:
            self.l1s[proc].invalidate(line)
        am = node.am
        vw = am.index.get(line)
        if vw is not None:
            am.aux_a[vw] &= ~bit
            if packed & 1:
                # Dirty-writeback branches are exclusive; each resolves
                # node.dram once, so there is no prefix worth hoisting.
                node.dram.acquire(self.now, self._t_dram_busy, self._bg)  # noqa: HOT003
                self.counters.slc_writebacks += 1
            return
        sr = node.slc_resident.get(line)
        if sr is None:
            return  # line already left the node at AM level
        sr[0] &= ~bit
        if sr[0]:
            return  # other local SLCs still hold it
        state = sr[1]
        del node.slc_resident[line]
        info = self.lines.get(line)
        if state == SHARED:
            info.sharers.discard(node.id)
            node.note_removed(line, REMOVED_EVICTED)
            self.counters.shared_drops += 1
            if self.trace is not None:
                self.trace.transition(self.now, node.id, line, "drop",
                                      "S", "I")
            return
        # Last copy of an owner line: reinsert into the attraction memory.
        way = self.repl.make_room(node, line, self.now, mandatory=True)
        assert way is not None
        am.fill_way(way, line, state)
        node.note_present(line)
        info.owner_loc = LOC_AM
        node.dram.acquire(self.now, self._t_dram_busy, self._bg)
        self.counters.slc_owner_reinserts += 1

    def _ensure_page(self, addr: int, node: ComaNode, now: int) -> None:
        """Materialize the page on first touch: its lines appear in the
        toucher's AM in Exclusive state, instantly and with no processor
        delay (paper section 3)."""
        if (addr // self._page_size) in self._page_home:
            return
        self._materialize_page(addr, node, now)

    def _materialize_page(self, addr: int, node: ComaNode, now: int) -> None:
        page = self.space.page_of(addr)
        self.space.ensure_page(addr, node.id)
        self.counters.pages_allocated += 1
        for line in self.space.lines_of_page(page, self.config.line_size):
            self.lines.materialize(line, node.id)
            way = self.repl.make_room(node, line, now, mandatory=True)
            assert way is not None
            node.am.fill_way(way, line, EXCLUSIVE)
            node.note_present(line)
            if self.trace is not None:
                self.trace.transition(now, node.id, line, "materialize",
                                      "I", "E")

    @hotpath
    def _am_access(self, node: ComaNode, t0: int) -> int:
        """Charge one attraction-memory access: controller in, DRAM read,
        controller return.  Contention-free latency 148 ns.

        The foreground path opens the :class:`Resource` next-free math in
        line (the totals are identical to three ``acquire`` calls); the
        background path keeps the calls — posted writes are not latency
        critical.
        """
        nc = node.nc
        dram = node.dram
        nc_busy = self._t_nc_busy
        nc_ns = self._t_nc
        dram_busy = self._t_dram_busy
        if self._bg:
            s = nc.bg_next_free
            if s < t0:
                s = t0
            nc.bg_next_free = s + nc_busy
            t = s + nc_ns
            s = dram.bg_next_free
            if s < t:
                s = t
            dram.bg_next_free = s + dram_busy
            t = s + self._t_dram_lat
            s = nc.bg_next_free
            if s < t:
                s = t
            nc.bg_next_free = s + nc_busy
        else:
            s = nc.next_free
            if s < t0:
                s = t0
            nc.next_free = s + nc_busy
            t = s + nc_ns
            s = dram.next_free
            if s < t:
                s = t
            dram.next_free = s + dram_busy
            t = s + self._t_dram_lat
            s = nc.next_free
            if s < t:
                s = t
            nc.next_free = s + nc_busy
        nc.busy_ns += 2 * nc_busy
        nc.uses += 2
        dram.busy_ns += dram_busy
        dram.uses += 1
        return s + nc_ns

    # -- interconnect hooks (overridden by the hierarchical machine) -----

    def _record_remote(
        self, kind: TxKind, local: ComaNode, owner: ComaNode, line: int = -1
    ) -> None:
        """Meter one remote data transaction on the interconnect."""
        self.bus.record(kind, self.now, local.id, line)

    def _upgrade_broadcast(self, node: ComaNode, line: int, t: int) -> int:
        """Broadcast an upgrade/erase; returns its completion time."""
        self.bus.record(TxKind.UPGRADE, t, node.id, line)
        return self.bus.phase(t, self._bg)

    def charge_replacement(
        self,
        src: ComaNode,
        dst: Optional[ComaNode],
        now: int,
        data: bool,
        line: int = -1,
    ) -> None:
        """Meter and time a replacement transaction (probe, and the data
        transfer into ``dst`` when ``data``)."""
        self.bus.record(TxKind.REPLACE_PROBE, now, src.id, line)
        t = self.bus.phase(now, self._bg)
        if data:
            assert dst is not None
            self.bus.record(TxKind.REPLACE_DATA, t, src.id, line)
            t = self.bus.phase(t, self._bg)
            s = dst.nc.acquire(t, self._t_nc_busy, self._bg)
            dst.dram.acquire(s + self._t_nc, self._t_dram_busy, self._bg)

    def node_scan_order(self, exclude_id: int, rotor: int) -> list[ComaNode]:
        """Receiver scan order for the replacement engine: rotating round
        robin over all other nodes."""
        n = len(self.nodes)
        return [
            self.nodes[(rotor + k) % n]
            for k in range(n)
            if (rotor + k) % n != exclude_id
        ]

    @hotpath
    def _remote_path(self, local: ComaNode, owner: ComaNode, now: int) -> int:
        """Charge the remote fetch up to data arrival at the local
        controller: local NC, bus request, remote NC + DRAM, bus reply,
        local NC.  The local allocate/fill and fixed overhead are added by
        the caller (they differ between cached and uncached reads).

        The foreground path opens all seven resource acquisitions in line
        (grouped busy/uses totals, identical timing); the background path
        keeps the calls.
        """
        nc_busy = self._t_nc_busy
        nc_ns = self._t_nc
        spans = self.spans
        if self._bg:
            nc = local.nc
            bus = self.bus
            s = nc.acquire(now, nc_busy, True)
            t = bus.phase(s + nc_ns, True)
            if spans is not None:
                spans.phase("nc_out", s + nc_ns)
                spans.phase("bus_arb", bus.arb_start(t))
                spans.phase("bus_req", t)
            s = owner.nc.acquire(t, nc_busy, True)
            t = s + nc_ns
            s = owner.dram.acquire(t, self._t_dram_busy, True)
            t = bus.phase(s + self._t_dram_lat, True)
            if spans is not None:
                spans.phase("remote_am", s + self._t_dram_lat)
                spans.phase("bus_arb", bus.arb_start(t))
                spans.phase("bus_reply", t)
            s = nc.acquire(t, nc_busy, True)
            if spans is not None:
                spans.phase("nc_ret", s + nc_ns)
            return s + nc_ns
        lnc = local.nc
        onc = owner.nc
        odram = owner.dram
        bus = self.bus
        br = bus.resource
        bus_busy = bus._busy_ns
        bus_phase = bus._phase_ns
        bm = bus.metrics
        # local NC out
        s = lnc.next_free
        if s < now:
            s = now
        lnc.next_free = s + nc_busy
        t = s + nc_ns
        if spans is not None:
            spans.phase("nc_out", t)
        # bus request phase
        b = br.next_free
        if b < t:
            b = t
        br.next_free = b + bus_busy
        if bm is not None:
            bm.phase(b - t, bus_busy)
        if spans is not None:
            spans.phase("bus_arb", b)
        t = b + bus_phase
        if spans is not None:
            spans.phase("bus_req", t)
        # owner NC in
        s = onc.next_free
        if s < t:
            s = t
        onc.next_free = s + nc_busy
        onc.busy_ns += nc_busy
        onc.uses += 1
        t = s + nc_ns
        # owner DRAM
        s = odram.next_free
        if s < t:
            s = t
        odram.next_free = s + self._t_dram_busy
        odram.busy_ns += self._t_dram_busy
        odram.uses += 1
        t = s + self._t_dram_lat
        if spans is not None:
            spans.phase("remote_am", t)
        # bus reply phase
        b = br.next_free
        if b < t:
            b = t
        br.next_free = b + bus_busy
        br.busy_ns += 2 * bus_busy
        br.uses += 2
        if bm is not None:
            bm.phase(b - t, bus_busy)
        if spans is not None:
            spans.phase("bus_arb", b)
        t = b + bus_phase
        if spans is not None:
            spans.phase("bus_reply", t)
        # local NC return
        s = lnc.next_free
        if s < t:
            s = t
        lnc.next_free = s + nc_busy
        lnc.busy_ns += 2 * nc_busy
        lnc.uses += 2
        if spans is not None:
            spans.phase("nc_ret", s + nc_ns)
        return s + nc_ns

    def _classify_read_miss(self, node: ComaNode, line: int) -> None:
        c = self.counters
        if line not in node.ever:
            c.read_miss_cold += 1
        elif node.removal_reason.get(line) == REMOVED_INVALIDATED:
            c.read_miss_coherence += 1
        elif node.shadow is not None and line in node.shadow:
            c.read_miss_conflict += 1
        else:
            c.read_miss_capacity += 1

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Machine-wide invariant check (used heavily by the test suite).

        Verifies the line table against the per-node arrays, the single-
        owner invariant, sharer bookkeeping, and inclusion (every SLC line
        present in its node's AM with the aux bit set; every L1 line in
        the SLC).
        """
        for node in self.nodes:
            node.am.check_consistency()
        for line, info in self.lines.items():
            onode = self.nodes[info.owner_node]
            if info.owner_loc == LOC_AM:
                e = onode.am.lookup(line)
                assert e is not None and is_owning(e.state), (
                    f"line {line:#x}: owner copy missing in node {onode.id}"
                )
                if info.sharers:
                    assert e.state == OWNER, f"line {line:#x}: E with sharers"
            elif info.owner_loc == LOC_OVERFLOW:
                assert line in onode.overflow, (
                    f"line {line:#x}: overflow owner missing in node {onode.id}"
                )
            else:  # LOC_SLC
                sr = onode.slc_resident.get(line)
                assert sr is not None and is_owning(sr[1]) and sr[0], (
                    f"line {line:#x}: SLC-resident owner missing in node {onode.id}"
                )
            for sid in info.sharers:
                n = self.nodes[sid]
                se = n.am.lookup(line)
                if se is not None:
                    assert se.state == SHARED, (
                        f"line {line:#x}: sharer {sid} inconsistent"
                    )
                else:
                    sr = n.slc_resident.get(line)
                    assert sr is not None and sr[1] == SHARED and sr[0], (
                        f"line {line:#x}: sharer {sid} holds no copy"
                    )
        # Reverse direction: every valid AM entry is registered.
        for node in self.nodes:
            for e in node.am.valid_entries():
                info = self.lines.maybe(e.line)
                assert info is not None, f"unregistered line {e.line:#x}"
                if e.state == SHARED:
                    assert node.id in info.sharers
                else:
                    assert info.owner_node == node.id and info.owner_loc == LOC_AM
            for line, sr in node.slc_resident.items():
                info = self.lines.maybe(line)
                assert info is not None and sr[0], f"bad slc_resident {line:#x}"
                assert line not in node.am, f"slc_resident line {line:#x} also in AM"
                if sr[1] == SHARED:
                    assert node.id in info.sharers
                else:
                    assert info.owner_node == node.id and info.owner_loc == LOC_SLC
        # Hierarchy relations.
        ppn = self.config.procs_per_node
        for p in range(self.config.n_processors):
            node = self.nodes[self._node_of[p]]
            bit = 1 << (p % ppn)
            for se in self.slcs[p].array.valid_entries():
                ae = node.am.lookup(se.line)
                if ae is not None:
                    assert ae.aux & bit, (
                        f"aux bit missing for SLC{p} line {se.line:#x}"
                    )
                elif self.config.inclusive:
                    raise AssertionError(
                        f"inclusion violated: SLC{p} holds {se.line:#x} not in AM"
                    )
                else:
                    sr = node.slc_resident.get(se.line)
                    assert sr is not None and sr[0] & bit, (
                        f"SLC{p} line {se.line:#x} untracked at node level"
                    )
            for le in self.l1s[p].array.valid_entries():
                assert le.line in self.slcs[p], (
                    f"L1{p} holds {le.line:#x} not in SLC"
                )

    # ------------------------------------------------------------------
    def owned_line_count(self) -> int:
        """Total owner lines machine-wide (equals materialized lines)."""
        from repro.coma.states import is_owning as _owning

        total = 0
        for n in self.nodes:
            total += n.owned_lines_in_am() + len(n.overflow)
            total += sum(1 for sr in n.slc_resident.values() if _owning(sr[1]))
        return total
