"""Hierarchical (DDM-style) COMA machine.

The paper's flat bus-based COMA descends from the Data Diffusion Machine
(Hagersten, Landin & Haridi — the paper's reference [6]), which arranges
nodes under a *hierarchy of buses*: nodes share a group bus, and group
directories connect the groups over a top bus.  A miss first snoops the
group bus; only if no copy exists in the group does the group directory
forward the request over the top bus.

This machine reuses the entire flat protocol (attraction memories, E/O/S/I
states, accept-based replacement) and overrides only the interconnect:

* **remote path** — in-group fetches skip the top bus entirely (they cost
  a shorter latency and no top-bus bandwidth); cross-group fetches pay
  both buses plus a directory lookup each way;
* **replacement receivers** — in-group nodes are scanned first, so evicted
  owners stay close (the DDM's locality argument);
* **traffic metering** — ``machine.bus`` is the *top* bus (the global
  traffic the paper's figures plot); per-group buses are metered
  separately in ``group_buses``.

Group membership bookkeeping (who holds a copy below each directory) is
tracked exactly by the simulator's line table; directory lookup cost is
charged as one node-controller time per level.
"""

from __future__ import annotations

from repro.bus.sharedbus import SharedBus
from repro.bus.transaction import TxKind
from repro.coma.machine import ComaMachine
from repro.coma.node import ComaNode
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.mem.address import AddressSpace


class HierarchicalComaMachine(ComaMachine):
    """Two-level COMA: ``n_groups`` groups of nodes under a top bus."""

    def __init__(
        self, config: MachineConfig, space: AddressSpace, n_groups: int = 4
    ) -> None:
        super().__init__(config, space)
        if n_groups < 1 or config.n_nodes % n_groups:
            raise ConfigError(
                f"n_groups={n_groups} must divide n_nodes={config.n_nodes}"
            )
        self.n_groups = n_groups
        self.nodes_per_group = config.n_nodes // n_groups
        #: self.bus (from the base class) is the top bus; these are the
        #: per-group buses.
        self.group_buses = [
            SharedBus(config.timing, config.line_size, name=f"gbus{g}")
            for g in range(n_groups)
        ]

    def set_trace(self, sink) -> None:
        super().set_trace(sink)
        for gb in self.group_buses:
            gb.trace = sink

    def set_metrics(self, registry) -> None:
        super().set_metrics(registry)
        from repro.obs.metrics import BusInstruments

        for gb in self.group_buses:
            gb.metrics = BusInstruments(registry, gb.name)

    # ------------------------------------------------------------------
    def group_of(self, node_id: int) -> int:
        return node_id // self.nodes_per_group

    def same_group(self, a: ComaNode, b: ComaNode) -> bool:
        return self.group_of(a.id) == self.group_of(b.id)

    @property
    def top_bus_bytes(self) -> int:
        return self.bus.total_bytes

    @property
    def group_bus_bytes(self) -> int:
        return sum(b.total_bytes for b in self.group_buses)

    # ------------------------------------------------------------------
    # interconnect overrides
    # ------------------------------------------------------------------

    def _record_remote(
        self, kind: TxKind, local: ComaNode, owner: ComaNode, line: int = -1
    ) -> None:
        gb = self.group_buses[self.group_of(local.id)]
        gb.record(kind, self.now, local.id, line)
        if not self.same_group(local, owner):
            # The request also crosses the top bus and the owner's group bus.
            self.bus.record(kind, self.now, local.id, line)
            self.group_buses[self.group_of(owner.id)].record(
                kind, self.now, local.id, line
            )

    def _remote_path(self, local: ComaNode, owner: ComaNode, now: int) -> int:
        nc_busy = self._t_nc_busy
        nc_ns = self._t_nc
        spans = self.spans
        lg = self.group_buses[self.group_of(local.id)]
        s = local.nc.acquire(now, nc_busy, self._bg)
        t = lg.phase(s + nc_ns, self._bg)  # group bus request
        if spans is not None:
            spans.phase("nc_out", s + nc_ns)
            spans.phase("bus_arb", lg.arb_start(t))
            spans.phase("gbus_req", t)
        if self.same_group(local, owner):
            # Snooped within the group: owner answers over the group bus.
            s = owner.nc.acquire(t, nc_busy, self._bg)
            t = s + nc_ns
            s = owner.dram.acquire(t, self._t_dram_busy, self._bg)
            t = lg.phase(s + self._t_dram_lat, self._bg)
            if spans is not None:
                spans.phase("remote_am", s + self._t_dram_lat)
                spans.phase("bus_arb", lg.arb_start(t))
                spans.phase("gbus_reply", t)
        else:
            # Group directory forwards over the top bus to the owner group.
            og = self.group_buses[self.group_of(owner.id)]
            t += nc_ns                         # local group directory lookup
            if spans is not None:
                spans.phase("dir_lookup", t)
            t = self.bus.phase(t, self._bg)              # top bus request
            if spans is not None:
                spans.phase("bus_arb", self.bus.arb_start(t))
                spans.phase("tbus_req", t)
            t += nc_ns                         # remote group directory
            if spans is not None:
                spans.phase("dir_lookup", t)
            t = og.phase(t, self._bg)                    # owner group bus
            if spans is not None:
                spans.phase("bus_arb", og.arb_start(t))
                spans.phase("gbus_req", t)
            s = owner.nc.acquire(t, nc_busy, self._bg)
            t = s + nc_ns
            s = owner.dram.acquire(t, self._t_dram_busy, self._bg)
            t = og.phase(s + self._t_dram_lat, self._bg)
            if spans is not None:
                spans.phase("remote_am", s + self._t_dram_lat)
                spans.phase("gbus_reply", t)
            t = self.bus.phase(t, self._bg)              # top bus reply
            if spans is not None:
                spans.phase("bus_arb", self.bus.arb_start(t))
                spans.phase("tbus_reply", t)
            t = lg.phase(t + nc_ns, self._bg)            # back down the local group
            if spans is not None:
                spans.phase("gbus_reply", t)
        s = local.nc.acquire(t, nc_busy, self._bg)
        if spans is not None:
            spans.phase("nc_ret", s + nc_ns)
        return s + nc_ns

    def _upgrade_broadcast(self, node: ComaNode, line: int, t: int) -> int:
        """Erase goes up only as far as copies exist (DDM's point: the
        directories know whether anything outside the group has a copy)."""
        info = self.lines.maybe(line)
        lg = self.group_buses[self.group_of(node.id)]
        lg.record(TxKind.UPGRADE, t, node.id, line)
        t = lg.phase(t, self._bg)
        holder_groups: set[int] = set()
        if info is not None:
            holders = set(info.sharers)
            holders.add(info.owner_node)
            holders.discard(node.id)
            holder_groups = {self.group_of(h) for h in holders}
            holder_groups.discard(self.group_of(node.id))
        if holder_groups:
            # The directories know which groups hold copies: the erase
            # crosses the top bus and descends only into those groups.
            self.bus.record(TxKind.UPGRADE, t, node.id, line)
            t = self.bus.phase(t, self._bg)
            for g in holder_groups:
                self.group_buses[g].record(TxKind.UPGRADE, t, node.id, line)
        return t

    def charge_replacement(self, src, dst, now, data: bool, line: int = -1) -> None:
        lg = self.group_buses[self.group_of(src.id)]
        lg.record(TxKind.REPLACE_PROBE, now, src.id, line)
        t = lg.phase(now, self._bg)
        if not data:
            return
        assert dst is not None
        if self.same_group(src, dst):
            lg.record(TxKind.REPLACE_DATA, t, src.id, line)
            t = lg.phase(t, self._bg)
        else:
            dg = self.group_buses[self.group_of(dst.id)]
            for b, kind in (
                (self.bus, TxKind.REPLACE_PROBE),
                (self.bus, TxKind.REPLACE_DATA),
                (dg, TxKind.REPLACE_DATA),
            ):
                b.record(kind, t, src.id, line)
            t = self.bus.phase(t, self._bg)
            t = dg.phase(t, self._bg)
        s = dst.nc.acquire(t, self._t_nc_busy, self._bg)
        dst.dram.acquire(s + self._t_nc, self._t_dram_busy, self._bg)

    def node_scan_order(self, exclude_id: int, rotor: int):
        """In-group receivers first (rotating), then the rest — evicted
        owners stay close to their ejecting node when possible."""
        order = super().node_scan_order(exclude_id, rotor)
        g = self.group_of(exclude_id)
        return sorted(order, key=lambda n: self.group_of(n.id) != g)
