"""One cluster node: the shared attraction memory plus its resources.

A node groups ``procs_per_node`` processors behind one node controller and
one attraction memory (Figure 1 of the paper).  The per-processor L1s and
SLCs live in :class:`repro.coma.machine.ComaMachine` (indexed by processor
id); this class owns everything that is per-*node*.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import CacheGeometry, MachineConfig
from repro.mem.soa import LineArray
from repro.mem.shadow import ShadowTags
from repro.timing.resource import Resource

#: Reasons a line left a node, for miss classification.
REMOVED_INVALIDATED = "inv"
REMOVED_EVICTED = "evict"


class ComaNode:
    """Per-node state: attraction memory, overflow buffer, resources,
    and the tracking needed for miss classification."""

    def __init__(
        self,
        node_id: int,
        am_geometry: CacheGeometry,
        config: MachineConfig,
    ) -> None:
        self.id = node_id
        self.am = LineArray(am_geometry)
        #: Victim overflow buffer: owner lines that could not be placed
        #: anywhere (machine-wide set conflict).  Maps line -> state.
        self.overflow: dict[int, int] = {}
        #: Non-inclusive hierarchies only: lines resident in local SLCs but
        #: absent from the AM.  Maps line -> [slc_mask, state].
        self.slc_resident: dict[int, list] = {}
        #: Node controller and AM DRAM as contended resources.
        self.nc = Resource(f"nc{node_id}")
        self.dram = Resource(f"dram{node_id}")
        #: Every line ever present in this node (cold-miss detection).
        self.ever: set[int] = set()
        #: Why a currently-absent line last left this node.
        self.removal_reason: dict[int, str] = {}
        #: Fully-associative shadow for conflict classification (optional).
        self.shadow: Optional[ShadowTags] = (
            ShadowTags(am_geometry.num_lines) if config.track_miss_classes else None
        )

    def has_line(self, line: int) -> bool:
        """Node-level presence: AM, overflow buffer, or (non-inclusive
        hierarchies) a local SLC."""
        return line in self.am or line in self.overflow or line in self.slc_resident

    def note_present(self, line: int) -> None:
        self.ever.add(line)
        self.removal_reason.pop(line, None)

    def note_removed(self, line: int, reason: str) -> None:
        self.removal_reason[line] = reason

    def owned_lines_in_am(self) -> int:
        """Number of owner (E or O) lines held in the AM (tests/metrics)."""
        from repro.coma.states import EXCLUSIVE, OWNER

        return self.am.count_state(OWNER) + self.am.count_state(EXCLUSIVE)
