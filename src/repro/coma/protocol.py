"""Declarative specification of the E/O/S/I coherence protocol.

The executable machine lives in :mod:`repro.coma.machine`; this module
states the protocol as data — the local-state transition table for every
(state, event) pair — and provides a reference oracle the test suite uses
to cross-validate the machine's behaviour.  It also renders the table as
text for documentation (``coma-sim protocol``).

Events, from the perspective of one node's copy of a line:

=============  ==========================================================
event          meaning
=============  ==========================================================
local_read     a processor in this node loads the line
local_write    a processor in this node stores to the line
remote_read    another node's read miss is snooped on the bus
remote_write   another node's upgrade/read-exclusive is snooped
evict          the replacement engine displaces this copy
inject         an evicted owner line is accepted into this node
=============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.coma.states import EXCLUSIVE, INVALID, OWNER, SHARED, state_name
from repro.common.errors import ProtocolError

EVENTS = (
    "local_read",
    "local_write",
    "remote_read",
    "remote_write",
    "evict",
    "inject",
)

STATES = (INVALID, SHARED, OWNER, EXCLUSIVE)


@dataclass(frozen=True)
class Transition:
    """One row of the protocol table.

    ``next_state`` is the resulting state when, after the event, no *other*
    node holds a Shared copy of the line; ``next_state_sharers`` (when not
    None) is the resulting state when sharers remain.  Only the ``inject``
    rows are sharer-dependent: a node accepting a relocated owner ends up
    Exclusive when it receives the only copy in the machine and Owner when
    replicas survive elsewhere.  Use :meth:`resolved` / :func:`resolved_next`
    to pick the right one.
    """

    state: int
    event: str
    next_state: Optional[int]  # None = transition not allowed / no copy
    bus_action: str            # "", "read", "read_excl", "upgrade", "replace"
    notes: str = ""
    next_state_sharers: Optional[int] = None

    def resolved(self, sharers_exist: bool) -> Optional[int]:
        """Next state given whether other sharers hold the line."""
        if sharers_exist and self.next_state_sharers is not None:
            return self.next_state_sharers
        return self.next_state


#: The complete table.  ``INVALID + local_*`` covers the miss paths.
TRANSITIONS: tuple[Transition, ...] = (
    # Invalid (no copy in this node)
    Transition(INVALID, "local_read", SHARED, "read",
               "fetch a replica; supplier stays owner (E degrades to O)"),
    Transition(INVALID, "local_write", EXCLUSIVE, "read_excl",
               "fetch and erase every other copy"),
    Transition(INVALID, "remote_read", None, "", "not involved"),
    Transition(INVALID, "remote_write", None, "", "not involved"),
    Transition(INVALID, "evict", None, "", "nothing to evict"),
    Transition(INVALID, "inject", EXCLUSIVE, "replace",
               "accepts a relocated owner",
               next_state_sharers=OWNER),
    # Shared
    Transition(SHARED, "local_read", SHARED, "", "hit"),
    Transition(SHARED, "local_write", EXCLUSIVE, "upgrade",
               "erase other copies, take ownership"),
    Transition(SHARED, "remote_read", SHARED, "", "owner supplies, not us"),
    Transition(SHARED, "remote_write", INVALID, "", "erased"),
    Transition(SHARED, "evict", INVALID, "",
               "dropped silently: an owner exists elsewhere"),
    Transition(SHARED, "inject", EXCLUSIVE, "replace",
               "sharer takeover: ownership moves here without data",
               next_state_sharers=OWNER),
    # Owner (shared copies may exist elsewhere)
    Transition(OWNER, "local_read", OWNER, "", "hit"),
    Transition(OWNER, "local_write", EXCLUSIVE, "upgrade",
               "erase the replicas"),
    Transition(OWNER, "remote_read", OWNER, "", "supplies the data"),
    Transition(OWNER, "remote_write", INVALID, "", "erased by new owner"),
    Transition(OWNER, "evict", INVALID, "replace",
               "must be relocated (accept-based receiver search)"),
    Transition(OWNER, "inject", None, "", "cannot hold a second copy"),
    # Exclusive (the only copy in the machine)
    Transition(EXCLUSIVE, "local_read", EXCLUSIVE, "", "hit"),
    Transition(EXCLUSIVE, "local_write", EXCLUSIVE, "", "silent"),
    Transition(EXCLUSIVE, "remote_read", OWNER, "",
               "supplies the data, a replica now exists"),
    Transition(EXCLUSIVE, "remote_write", INVALID, "", "erased by new owner"),
    Transition(EXCLUSIVE, "evict", INVALID, "replace",
               "must be relocated — the only copy"),
    Transition(EXCLUSIVE, "inject", None, "", "cannot hold a second copy"),
)

_TABLE = {(t.state, t.event): t for t in TRANSITIONS}


def transition(state: int, event: str) -> Transition:
    """Look up the table entry for ``(state, event)``."""
    try:
        return _TABLE[(state, event)]
    except KeyError:
        raise KeyError(f"no transition for ({state_name(state)}, {event})") from None


def next_state(state: int, event: str) -> Optional[int]:
    return transition(state, event).next_state


def resolved_next(state: int, event: str, sharers_exist: bool) -> Optional[int]:
    """Next state for ``(state, event)`` given the machine-wide sharer set.

    ``sharers_exist`` must be True when, after the event completes, at
    least one *other* node still holds a Shared copy of the line.
    """
    return transition(state, event).resolved(sharers_exist)


def is_complete() -> bool:
    """Every (state, event) pair must be specified."""
    return all((s, e) in _TABLE for s in STATES for e in EVENTS)


#: Timing parameters each bus action's latency model consults.  A
#: config that leaves one of these unset (or negative) would silently
#: miscount simulated time, so ``validate_table(timing=...)`` rejects it
#: before a dispatch is built (see ``repro.analysis.compile``).
ACTION_TIMING_PARAMS: dict[str, tuple[str, ...]] = {
    "read": ("nc_ns", "bus_phase_ns", "dram_latency_ns",
             "remote_overhead_ns"),
    "read_excl": ("nc_ns", "bus_phase_ns", "dram_latency_ns",
                  "remote_overhead_ns"),
    "upgrade": ("nc_ns", "bus_phase_ns"),
    "replace": ("nc_ns", "bus_phase_ns", "dram_latency_ns"),
}


def validate_table(transitions: Iterable[Transition] = TRANSITIONS,
                   timing: object = None) -> None:
    """Check the table is *total*: every (state, event) pair present exactly
    once, no row for an unknown state or event.  Raises
    :class:`~repro.common.errors.ProtocolError` on the first defect.

    With ``timing`` (a :class:`~repro.common.config.TimingConfig` or
    anything attribute-compatible), additionally checks that every bus
    action the table references has its timing parameters present and
    non-negative — the error names the (action, parameter) pair.

    Runs at import time (totality only) so a malformed table can never
    drive a simulation; ``build_dispatch`` re-runs it with the machine's
    timing config.
    """
    transitions = tuple(transitions)
    seen: dict[tuple[int, str], Transition] = {}
    for t in transitions:
        if t.state not in STATES:
            raise ProtocolError(
                f"({state_name(t.state)}, {t.event}): unknown state "
                f"{t.state!r} — states are I/S/O/E = 0..3"
            )
        if t.event not in EVENTS:
            raise ProtocolError(
                f"({state_name(t.state)}, {t.event}): unknown event "
                f"{t.event!r} — events are {', '.join(EVENTS)}"
            )
        key = (t.state, t.event)
        if key in seen:
            raise ProtocolError(
                f"({state_name(t.state)}, {t.event}): duplicate transition "
                f"row — already defined as next={seen[key].next_state!r}"
            )
        seen[key] = t
    for s in STATES:
        for e in EVENTS:
            if (s, e) not in seen:
                raise ProtocolError(
                    f"protocol table not total: missing ({state_name(s)}, {e})"
                )
    if timing is not None:
        referenced = sorted({t.bus_action for t in transitions
                             if t.bus_action})
        for action in referenced:
            for param in ACTION_TIMING_PARAMS.get(action, ()):
                value = getattr(timing, param, None)
                if value is None:
                    raise ProtocolError(
                        f"action {action!r}: timing parameter {param} is "
                        f"missing from {type(timing).__name__}"
                    )
                if value < 0:
                    raise ProtocolError(
                        f"action {action!r}: timing parameter {param} is "
                        f"negative ({value})"
                    )


def format_table() -> str:
    """Render the protocol table for documentation.

    A sharer-dependent next state renders as ``alone/shr`` — e.g. ``E/O``
    means Exclusive when no other sharer survives, Owner otherwise.
    """
    lines = [
        "E/O/S/I protocol transition table (one node's copy of a line)",
        f"{'state':>6s} {'event':13s} {'next':>5s} {'bus':10s} notes",
        "-" * 78,
    ]
    for t in TRANSITIONS:
        nxt = state_name(t.next_state) if t.next_state is not None else "-"
        if t.next_state_sharers is not None and t.next_state_sharers != t.next_state:
            nxt = f"{nxt}/{state_name(t.next_state_sharers)}"
        lines.append(
            f"{state_name(t.state):>6s} {t.event:13s} {nxt:>5s} "
            f"{t.bus_action or '-':10s} {t.notes}"
        )
    return "\n".join(lines)


validate_table()
