"""Attraction-memory line states.

The bus-based COMA protocol has "four states per cache line (Exclusive,
Owner, Shared and Invalid)" (paper section 3.1):

* **Exclusive** — the only copy in the machine, held by the owner node;
* **Owner**     — the owning copy, with Shared copies elsewhere (the owner
  cannot observe the last sharer silently dropping its copy, so O never
  silently reverts to E);
* **Shared**    — a non-owning replica; safe to drop silently because an
  owner exists somewhere;
* **Invalid**   — empty way.

Machine-wide invariant: every materialized line has exactly one owner
(state E or O) somewhere, and every S copy coexists with that owner.
Losing the owner copy would lose the datum — COMA has no backing memory —
so the replacement machinery must relocate owners, never drop them.
"""

from __future__ import annotations

INVALID = 0
SHARED = 1
OWNER = 2
EXCLUSIVE = 3

_NAMES = {INVALID: "I", SHARED: "S", OWNER: "O", EXCLUSIVE: "E"}

#: States that denote ownership of the (possibly only) authoritative copy.
OWNING_STATES = (OWNER, EXCLUSIVE)


def state_name(state: int) -> str:
    """Single-letter mnemonic for a state value."""
    return _NAMES.get(state, f"?{state}")


def is_owning(state: int) -> bool:
    return state == OWNER or state == EXCLUSIVE
