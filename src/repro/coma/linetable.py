"""Global line bookkeeping.

The simulated hardware is a *snooping* bus — there is no directory in the
modeled machine, and no directory cost is charged.  This table exists so
the simulator can find the owner and the sharer set of a line in O(1)
instead of scanning every node on every transaction; it is pure
bookkeeping and is cross-checked against the per-node arrays by
``ComaMachine.check_consistency`` in the test suite.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError

#: Owner-copy locations.
LOC_AM = 0        # in the owner node's attraction memory
LOC_OVERFLOW = 1  # parked in the owner node's victim overflow buffer
LOC_SLC = 2       # (non-inclusive hierarchies only) held in local SLC(s)


class LineInfo:
    """Owner and replica bookkeeping for one materialized line."""

    __slots__ = ("owner_node", "owner_loc", "sharers")

    def __init__(self, owner_node: int) -> None:
        self.owner_node = owner_node
        self.owner_loc = LOC_AM
        self.sharers: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        loc = {LOC_AM: "am", LOC_OVERFLOW: "ovf", LOC_SLC: "slc"}[self.owner_loc]
        return f"LineInfo(owner={self.owner_node}@{loc}, sharers={sorted(self.sharers)})"


class LineTable:
    """Map from line address to :class:`LineInfo` for every materialized line."""

    def __init__(self) -> None:
        self._lines: dict[int, LineInfo] = {}

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def get(self, line: int) -> LineInfo:
        info = self._lines.get(line)
        if info is None:
            raise ProtocolError(f"line {line:#x} accessed before materialization")
        return info

    def maybe(self, line: int):
        return self._lines.get(line)

    def materialize(self, line: int, owner_node: int) -> LineInfo:
        if line in self._lines:
            raise ProtocolError(f"line {line:#x} materialized twice")
        info = LineInfo(owner_node)
        self._lines[line] = info
        return info

    def items(self):
        return self._lines.items()

    def lines_owned_by(self, node_id: int):
        """Iterate lines whose owner copy lives in ``node_id`` (slow; tests only)."""
        for line, info in self._lines.items():
            if info.owner_node == node_id:
                yield line
