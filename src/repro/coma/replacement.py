"""Accept-based replacement (paper section 3.1).

"Upon replacement of a cache line in state Exclusive or Owner, a
snooping-based mechanism is used to find a receiving node that can store
the replaced cache line without causing further avalanching replacements.
When choosing what local line to replace, entries in state Shared are
prioritized over entries in the Owner and Exclusive states.  When choosing
a receiver of the replacement, nodes with Invalid entries are prioritized
over those with Shared entries."

Receiver search order implemented here:

1. a node already holding a *Shared copy of the same line* — ownership
   simply moves there (no data transfer needed);
2. a node with an Invalid way in the line's set;
3. a node with a Shared way in the line's set (the S replica is dropped —
   always safe, an owner exists elsewhere);
4. *forced cascade* (only when the machine-wide set is full of owners,
   which is exactly the conflict regime of section 4.2): displace the
   least-recently-used owner way of another node and relocate it
   recursively, up to ``relocation_max_hops`` hops;
5. park the line in the source node's victim overflow buffer (a datum may
   never be dropped — COMA has no backing memory).

Steps 4-5 are only taken for *mandatory* allocations (gaining write
ownership, page materialization).  An optional allocation (caching a
Shared replica on a read miss) that reaches step 4 is abandoned instead:
the read completes uncached, which is the pressure-valve behaviour that
produces the read-traffic blow-up the paper observes at 87.5 % memory
pressure.

The engine runs on the compiled dispatch plane: ways are addressed as
plain ints into each AM's :class:`repro.mem.soa.LineArray`, the local
victim-class policy is the interned ``victim_mode`` (certified against
the config at machine build), and the two ``inject`` resolutions come
from the machine's compiled protocol table rather than string dispatch.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.common.rng import derive_seed

from repro.coma.linetable import LOC_AM, LOC_OVERFLOW, LOC_SLC
from repro.coma.node import REMOVED_EVICTED, ComaNode
from repro.coma.states import SHARED, is_owning, state_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine


class ReplacementEngine:
    """Implements victim selection and owner relocation for one machine."""

    def __init__(self, machine: "ComaMachine") -> None:
        self.m = machine
        #: Rotating start point so relocations spread over nodes.
        self._rotor = 0
        #: Seeded shuffler for the "random" receiver-policy ablation.
        self._rng = random.Random(derive_seed(machine.config.seed, "replacement"))
        cfg = machine.config
        self._victim_mode = machine._victim_mode
        self._random_receiver = cfg.replacement_receiver_policy == "random"
        self._inclusive = cfg.inclusive
        self._max_hops = cfg.relocation_max_hops

    # ------------------------------------------------------------------
    def make_room(
        self, node: ComaNode, line: int, now: int, mandatory: bool
    ) -> Optional[int]:
        """Return an invalid way (as a way number) of ``line``'s set in
        ``node``'s AM, evicting/relocating as needed.  Returns None when
        an optional allocation should be abandoned (see module
        docstring)."""
        am = node.am
        set_idx = line % am.num_sets
        free = am.free_way_idx(set_idx)
        if free >= 0:
            return free
        victim = am.victim_way(set_idx, self._victim_mode)
        if am.state_a[victim] == SHARED:
            self.m.drop_shared_copy(node, victim)
            return victim
        # Victim is an owner: it must be relocated, never dropped.
        ok = self.relocate_owner(node, victim, now, mandatory=mandatory, hops=0)
        if ok:
            return victim
        if not mandatory:
            self.m.counters.uncached_reads += 1
            if self.m.trace is not None:
                self.m.trace.replacement(now, node.id, -1, line, "uncached", 0)
            if self.m.metrics is not None:
                self.m.metrics.relocation("uncached", 0)
            return None
        # Mandatory and nowhere to go: park the victim in overflow.
        self._park_in_overflow(node, victim)
        return victim

    # ------------------------------------------------------------------
    def relocate_owner(
        self, src: ComaNode, src_way: int, now: int, mandatory: bool, hops: int
    ) -> bool:
        """Move the owner line held in ``src_way`` of ``src``'s AM out.

        On success the way has been invalidated in ``src`` (with SLC
        back-invalidation) and the line table updated.  Traffic and
        resource occupancy for the relocation transaction are charged; no
        processor latency is added (replacements proceed in the background
        of the access that triggered them).
        """
        m = self.m
        am = src.am
        line = am.line_a[src_way]
        state = am.state_a[src_way]
        assert is_owning(state), f"relocating non-owner way {src_way}"
        info = m.lines.get(line)
        assert info.owner_node == src.id and info.owner_loc == LOC_AM

        m.counters.replacements += 1

        # 0. Non-inclusive hierarchy: if a local SLC still holds the line,
        # ownership simply falls back to the SLC — no traffic at all.
        # This is the replication-space win of breaking inclusion ([9,2]).
        aux = am.aux_a[src_way]
        if not self._inclusive and aux:
            src.slc_resident[line] = [aux, state]
            info.owner_loc = LOC_SLC
            am.aux_a[src_way] = 0
            am.invalidate_way(src_way)
            m.counters.replace_to_slc += 1
            if m.trace is not None:
                m.trace.replacement(now, src.id, src.id, line, "to_slc", hops)
            if m.metrics is not None:
                m.metrics.relocation("to_slc", hops)
            if m.spans is not None:
                m.spans.note_relocation()
            return True

        # 1. A sharer node can take over ownership without a data transfer:
        # S + inject resolves to E when the taker held the last replica.
        if info.sharers:
            dst_id = min(info.sharers)
            dst = m.nodes[dst_id]
            sw = dst.am.index.get(line)
            info.sharers.discard(dst_id)
            new_state = m._inj_shared[1 if info.sharers else 0]
            if sw is not None:
                assert dst.am.state_a[sw] == SHARED
                dst.am.state_a[sw] = new_state
                dst.am.tick += 1
                dst.am.lru_a[sw] = dst.am.tick
                info.owner_loc = LOC_AM
            else:
                # Non-inclusive: the sharer holds it in an SLC only.
                sr = dst.slc_resident[line]
                sr[1] = new_state
                info.owner_loc = LOC_SLC
            info.owner_node = dst_id
            m.charge_replacement(src, None, now, data=False, line=line)
            m.counters.replace_to_sharer += 1
            if m.trace is not None:
                m.trace.replacement(now, src.id, dst_id, line, "to_sharer", hops)
                m.trace.transition(now, dst_id, line, "inject", "S",
                                   state_name(new_state))
            if m.metrics is not None:
                m.metrics.relocation("to_sharer", hops)
            if m.spans is not None:
                m.spans.note_relocation()
            m.strip_node_copy(src, src_way, REMOVED_EVICTED)
            return True

        set_idx = src_way // am.assoc
        order = self._node_order(src.id)

        if self._random_receiver:
            # Ablation: first receiver in a random order that has *any*
            # capacity, with no Invalid-before-Shared preference.
            shuffled = list(order)
            self._rng.shuffle(shuffled)
            for dst in shuffled:
                way = dst.am.free_way_idx(set_idx)
                if way >= 0:
                    self._transfer(src, src_way, dst, way, now, "to_invalid", hops)
                    m.counters.replace_to_invalid += 1
                    return True
                base = set_idx * dst.am.assoc
                for way in range(base, base + dst.am.assoc):
                    if dst.am.state_a[way] == SHARED:
                        m.drop_shared_copy(dst, way)
                        self._transfer(src, src_way, dst, way, now,
                                       "to_shared", hops)
                        m.counters.replace_to_shared += 1
                        return True
        else:
            # 2. A node with an Invalid way accepts the line.
            for dst in order:
                way = dst.am.free_way_idx(set_idx)
                if way >= 0:
                    self._transfer(src, src_way, dst, way, now, "to_invalid", hops)
                    m.counters.replace_to_invalid += 1
                    return True

            # 3. A node with a Shared way accepts it, dropping the S replica.
            for dst in order:
                base = set_idx * dst.am.assoc
                for way in range(base, base + dst.am.assoc):
                    if dst.am.state_a[way] == SHARED:
                        m.drop_shared_copy(dst, way)
                        self._transfer(src, src_way, dst, way, now,
                                       "to_shared", hops)
                        m.counters.replace_to_shared += 1
                        return True

        # 4. Forced cascade: every way of this set, machine-wide, holds an
        # owner.  Displace another node's LRU owner recursively.
        if mandatory and hops < self._max_hops:
            dst, way = self._oldest_owner_way(order, set_idx)
            if dst is not None:
                m.counters.replace_forced_hops += 1
                if self.relocate_owner(dst, way, now, mandatory=True, hops=hops + 1):
                    self._transfer(src, src_way, dst, way, now, "cascade", hops + 1)
                    return True
        return False

    # ------------------------------------------------------------------
    def _transfer(
        self,
        src: ComaNode,
        src_way: int,
        dst: ComaNode,
        dst_way: int,
        now: int,
        outcome: str = "to_invalid",
        hops: int = 0,
    ) -> None:
        """Move the owner line in ``src_way`` of ``src`` into ``dst_way``
        of ``dst``.

        The receiver applies I + inject from the table: the replacement
        probe is snooped machine-wide, so the receiver learns whether any
        Shared replica survives and installs E when it now holds the only
        copy (even if the evicted copy had degraded to O after its last
        sharer silently dropped).
        """
        m = self.m
        line = src.am.line_a[src_way]
        info = m.lines.get(line)
        state = m._inj_invalid[1 if info.sharers else 0]
        # Charge the replacement transaction: probe + data transfer into
        # the receiving node (controller + DRAM occupancy).
        m.charge_replacement(src, dst, now, data=True, line=line)
        if m.trace is not None:
            m.trace.replacement(now, src.id, dst.id, line, outcome, hops)
            m.trace.transition(now, dst.id, line, "inject", "I",
                               state_name(state))
        if m.metrics is not None:
            m.metrics.relocation(outcome, hops)
        if m.spans is not None:
            m.spans.note_relocation()
        m.strip_node_copy(src, src_way, REMOVED_EVICTED)
        dst.am.fill_way(dst_way, line, state)
        dst.note_present(line)
        info.owner_node = dst.id
        info.owner_loc = LOC_AM

    def _park_in_overflow(self, node: ComaNode, way: int) -> None:
        m = self.m
        am = node.am
        line = am.line_a[way]
        info = m.lines.get(line)
        node.overflow[line] = am.state_a[way]
        info.owner_loc = LOC_OVERFLOW
        m.counters.overflow_parks += 1
        if m.trace is not None:
            m.trace.replacement(m.now, node.id, -1, line, "overflow_park", 0)
        if m.metrics is not None:
            m.metrics.relocation("overflow_park", 0)
        if m.spans is not None:
            m.spans.note_relocation()
        # The line is still present in the node (overflow), so strip only
        # the AM way, not the node-level tracking.
        m.backinvalidate_slcs(node, way)
        am.invalidate_way(way)

    # ------------------------------------------------------------------
    def _node_order(self, exclude_id: int) -> list[ComaNode]:
        """Candidate receivers in scan order, excluding ``exclude_id``.

        Delegated to the machine so topology-aware variants (the
        hierarchical machine prefers in-group receivers) can reorder it.
        """
        self._rotor = (self._rotor + 1) % len(self.m.nodes)
        return self.m.node_scan_order(exclude_id, self._rotor)

    @staticmethod
    def _oldest_owner_way(order: list[ComaNode], set_idx: int):
        """LRU owner way across the candidate nodes, as ``(node, way)``.

        Scan order (node order, then way order, strict ``<``) reproduces
        the object-based implementation's tie-breaks exactly.
        """
        best_node, best_way, best_lru = None, -1, 0
        for dst in order:
            am = dst.am
            base = set_idx * am.assoc
            for way in range(base, base + am.assoc):
                if am.state_a[way] > SHARED and (
                    best_node is None or am.lru_a[way] < best_lru
                ):
                    best_node, best_way, best_lru = dst, way, am.lru_a[way]
        return best_node, best_way
