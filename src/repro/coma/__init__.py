"""The paper's primary subject: the bus-based COMA memory system with
(optionally shared) attraction memories.

Public surface:

* :class:`repro.coma.machine.ComaMachine` — the full memory system;
* :mod:`repro.coma.states` — the four line states (E/O/S/I);
* :class:`repro.coma.linetable.LineTable` — global bookkeeping directory.
"""

from repro.coma.states import INVALID, SHARED, OWNER, EXCLUSIVE, state_name
from repro.coma.linetable import LineInfo, LineTable
from repro.coma.machine import ComaMachine
from repro.coma.hierarchy import HierarchicalComaMachine

__all__ = [
    "INVALID",
    "SHARED",
    "OWNER",
    "EXCLUSIVE",
    "state_name",
    "LineInfo",
    "LineTable",
    "ComaMachine",
    "HierarchicalComaMachine",
]
