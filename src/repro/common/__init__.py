"""Shared low-level utilities: units, errors, deterministic RNG, configs.

Everything in :mod:`repro` builds on this package.  It has no dependencies
on any other ``repro`` subpackage.
"""

from repro.common.units import KiB, MiB, GiB, NS, US, MS
from repro.common.errors import (
    ReproError,
    ConfigError,
    ProtocolError,
    SimulationError,
    DataLossError,
)
from repro.common.rng import make_rng, derive_seed
from repro.common.config import (
    CacheGeometry,
    TimingConfig,
    MachineConfig,
    PAPER_MEMORY_PRESSURES,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "NS",
    "US",
    "MS",
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "SimulationError",
    "DataLossError",
    "make_rng",
    "derive_seed",
    "CacheGeometry",
    "TimingConfig",
    "MachineConfig",
    "PAPER_MEMORY_PRESSURES",
]
