"""Deterministic random-number helpers.

Every stochastic choice in the simulator and in the workloads flows from a
single root seed through :func:`derive_seed`, so that a run is a pure
function of its configuration.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, *tags: object) -> int:
    """Derive a child seed from ``root`` and a sequence of tags.

    The derivation is stable across processes and Python versions (it uses
    SHA-256, not ``hash()``).  Typical use::

        seed = derive_seed(cfg.seed, "workload", "fft", thread_id)
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for t in tags:
        h.update(b"\x1f")
        h.update(str(t).encode())
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(root: int, *tags: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root, *tags))
