"""Exception hierarchy for the simulator."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state that violates an invariant.

    Raised by the internal self-checks; seeing this in a run always
    indicates a simulator bug, never a property of the workload.
    """


class SimulationError(ReproError):
    """The simulation kernel could not make progress (e.g. deadlock)."""


class DataLossError(ProtocolError):
    """The last copy of a datum was about to be dropped.

    COMA machines have no backing main memory: losing the only copy of a
    line is unrecoverable, so the replacement machinery asserts against it.
    """
