"""Marker for compiled hot-path functions.

``@hotpath`` is a zero-cost annotation: it tags a function as part of the
simulator's *compiled* inner loop — code that must dispatch through the
precomputed arrays of :mod:`repro.analysis.compile` instead of falling
back to interpreted dict/dataclass lookups.  The hygiene linter
(``coma-sim lint``) enforces the discipline inside marked functions with
the HOT rules:

=======  ==============================================================
rule     meaning
=======  ==============================================================
HOT001   interpreted table dispatch: a tuple- or string-keyed subscript
         (``table[(state, event)]``, ``d["level"]``) or ``.get()`` call —
         intern the key to a small int and index a flat array
HOT002   allocation per call: a list/dict/set display, a comprehension,
         or a ``list()``/``dict()``/``set()``/``sorted()`` call — hoist
         the container out of the hot loop or precompute it at build time
HOT003   repeated multi-level attribute chain (``self.timing.nc_ns`` read
         more than once) — resolve it once into a local, or intern it on
         the object at machine build time
=======  ==============================================================

The decorator itself does nothing at runtime (no wrapper, no overhead);
the linter recognizes the bare ``@hotpath`` decoration syntactically.
"""

from __future__ import annotations


def hotpath(fn):
    """Mark ``fn`` as hot-path code held to the HOT lint rules."""
    fn.__hotpath__ = True
    return fn
