"""Unit constants.

Sizes are plain byte counts; times are integer nanoseconds.  The whole
simulator works in integer nanoseconds so that runs are exactly
reproducible (no float drift in clocks).
"""

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: One nanosecond — the base time unit of the simulator.
NS = 1
US = 1000 * NS
MS = 1000 * US


def fmt_bytes(n: int) -> str:
    """Render a byte count human-readably (``"40.5 MiB"``)."""
    if n >= GiB:
        return f"{n / GiB:.2f} GiB"
    if n >= MiB:
        return f"{n / MiB:.2f} MiB"
    if n >= KiB:
        return f"{n / KiB:.2f} KiB"
    return f"{n} B"


def fmt_time(ns: int) -> str:
    """Render an integer-nanosecond duration human-readably."""
    if ns >= MS:
        return f"{ns / MS:.3f} ms"
    if ns >= US:
        return f"{ns / US:.3f} us"
    return f"{ns} ns"
