"""Configuration dataclasses for the simulated machine.

The paper's machine (section 3.1-3.2) is the default configuration:
16 processors at 250 MHz (4 ns cycle, 4-wide issue), 64-byte lines,
a direct-mapped first-level cache, a private 4-way second-level cache per
processor sized at 1/128 of the application working set, and one 4-way
set-associative attraction memory per node whose size is derived from the
target *memory pressure* (working set / total attraction memory).

Sizes that the paper expresses as ratios are kept as ratios here; see
DESIGN.md section 2 for the scaling argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional

from repro.common.errors import ConfigError

#: The memory pressures used throughout the paper's evaluation: a single
#: copy of the working set entirely fills 1, 8, 12, 13 and 14 of the 16
#: attraction memories of a 16-node machine (section 3.1).
PAPER_MEMORY_PRESSURES: dict[str, Fraction] = {
    "6%": Fraction(1, 16),
    "50%": Fraction(8, 16),
    "75%": Fraction(12, 16),
    "81%": Fraction(13, 16),
    "87%": Fraction(14, 16),
}


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache array.

    ``num_sets`` is *not* required to be a power of two: the paper sizes
    the attraction memory directly from the memory pressure, which
    "results in odd cache sizes" (section 3.1).  Indexing uses modulo.
    """

    num_sets: int
    assoc: int
    line_size: int

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise ConfigError(f"num_sets must be >= 1, got {self.num_sets}")
        if self.assoc < 1:
            raise ConfigError(f"assoc must be >= 1, got {self.assoc}")
        if self.line_size < 1 or self.line_size & (self.line_size - 1):
            raise ConfigError(f"line_size must be a power of two, got {self.line_size}")

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_size

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc

    def set_index(self, line_addr: int) -> int:
        """Map a line address (byte address >> log2(line)) to a set index."""
        return line_addr % self.num_sets

    @classmethod
    def from_size(cls, size_bytes: int, assoc: int, line_size: int) -> "CacheGeometry":
        """Build a geometry whose capacity is as close as possible to
        ``size_bytes`` with the given associativity and line size."""
        sets = max(1, round(size_bytes / (assoc * line_size)))
        return cls(num_sets=sets, assoc=assoc, line_size=line_size)


@dataclass(frozen=True)
class TimingConfig:
    """Latency and occupancy parameters (paper section 3.2).

    Contention-free read latencies: L1 0 ns, SLC 32 ns, attraction memory
    148 ns (24 ns node controller + 100 ns DRAM + 24 ns controller return),
    remote 332 ns with the global bus occupied 2 x 20 ns.

    Bandwidth ablations scale *occupancies* while holding latencies
    constant, exactly as the paper does ("If the DRAM bandwidth is doubled
    (while the latency is held constant)...").
    """

    cycle_ns: int = 4
    issue_width: int = 4
    l1_hit_ns: int = 0
    slc_hit_ns: int = 32
    slc_occupancy_ns: int = 32
    nc_ns: int = 24
    dram_latency_ns: int = 100
    dram_occupancy_ns: int = 100
    bus_phase_ns: int = 20
    bus_occupancy_ns: int = 20
    #: Fixed interconnect overhead that tops the remote path up to the
    #: paper's 332 ns contention-free remote latency.
    remote_overhead_ns: int = 20
    write_buffer_entries: int = 10
    #: Bandwidth scale factors (2.0 = doubled bandwidth = halved occupancy).
    dram_bandwidth_factor: float = 1.0
    nc_bandwidth_factor: float = 1.0
    bus_bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("dram_bandwidth_factor", "nc_bandwidth_factor", "bus_bandwidth_factor"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.write_buffer_entries < 1:
            raise ConfigError("write_buffer_entries must be >= 1")

    @property
    def dram_busy_ns(self) -> int:
        """Effective DRAM occupancy per access after the bandwidth factor."""
        return max(1, round(self.dram_occupancy_ns / self.dram_bandwidth_factor))

    @property
    def nc_busy_ns(self) -> int:
        return max(1, round(self.nc_ns / self.nc_bandwidth_factor))

    @property
    def bus_busy_ns(self) -> int:
        return max(1, round(self.bus_occupancy_ns / self.bus_bandwidth_factor))

    @property
    def am_hit_ns(self) -> int:
        """Contention-free attraction-memory read hit latency (148 ns)."""
        return 2 * self.nc_ns + self.dram_latency_ns

    @property
    def remote_ns(self) -> int:
        """Contention-free remote read latency (332 ns by default)."""
        return (
            2 * self.nc_ns           # local controller out + in
            + 2 * self.bus_phase_ns  # request + reply bus phases
            + self.nc_ns             # remote controller
            + self.dram_latency_ns   # remote DRAM read
            + self.dram_latency_ns   # local DRAM allocate/fill
            + self.remote_overhead_ns
        )

    def instructions_ns(self, n_instr: int) -> int:
        """Time to execute ``n_instr`` instructions on the 4-wide core."""
        if n_instr <= 0:
            return 0
        cycles = -(-n_instr // self.issue_width)  # ceil division
        return cycles * self.cycle_ns


@dataclass(frozen=True)
class MachineConfig:
    """Full machine configuration.

    Cache capacities may either be given explicitly (``*_bytes`` fields) or
    derived from a working-set size via :meth:`sized_for`, which applies
    the paper's ratios: SLC = WS/128 per processor, total attraction
    memory = WS / memory_pressure split evenly over nodes, L1 = WS/512
    (scaled stand-in for the paper's fixed 4 KB; see DESIGN.md).
    """

    n_processors: int = 16
    procs_per_node: int = 1
    line_size: int = 64
    page_size: int = 2048
    am_assoc: int = 4
    slc_assoc: int = 4
    l1_assoc: int = 1
    memory_pressure: Fraction = Fraction(8, 16)
    slc_ws_fraction: Fraction = Fraction(1, 128)
    l1_ws_fraction: Fraction = Fraction(1, 512)
    #: Explicit capacities; ``None`` means "derive from working set".
    am_bytes_per_node: Optional[int] = None
    slc_bytes: Optional[int] = None
    l1_bytes: Optional[int] = None
    #: Enforce SLC/L1 subset-of-AM inclusion (paper default).  Setting this
    #: to False models the "break the inclusion" extension of section 4.2.
    inclusive: bool = True
    #: Classify node misses into cold/coherence/conflict/capacity using a
    #: fully-associative shadow directory per node.
    track_miss_classes: bool = True
    #: Maximum relocation-cascade depth before a displaced owner line is
    #: parked in the node's victim overflow buffer.
    relocation_max_hops: int = 4
    #: Local victim selection: "shared_first" (paper section 3.1:
    #: "entries in state Shared are prioritized over entries in the Owner
    #: and Exclusive states") or "lru" (state-blind, for the ablation).
    am_victim_policy: str = "shared_first"
    #: Relocation receiver selection: "accept" (paper: nodes with Invalid
    #: entries prioritized over those with Shared entries) or "random"
    #: (first candidate in a seeded random order, for the ablation).
    replacement_receiver_policy: str = "accept"
    #: Memory consistency model: "rc" (release consistency with the write
    #: buffer — the paper's assumption, section 3.2) or "sc" (sequential
    #: consistency: the processor stalls on every write; ablation).
    consistency: str = "rc"
    #: Coalesce writes to a line already pending in the write buffer
    #: (they merge into the buffered entry and never reach the memory
    #: system).  Off by default to match the paper's model.
    write_buffer_coalescing: bool = False
    seed: int = 1997
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        if self.procs_per_node < 1 or self.n_processors % self.procs_per_node:
            raise ConfigError(
                f"procs_per_node={self.procs_per_node} must divide "
                f"n_processors={self.n_processors}"
            )
        if self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a power of two")
        if self.page_size % self.line_size:
            raise ConfigError("page_size must be a multiple of line_size")
        if not (0 < self.memory_pressure <= 1):
            raise ConfigError("memory_pressure must be in (0, 1]")
        if self.am_victim_policy not in ("shared_first", "lru"):
            raise ConfigError(f"unknown am_victim_policy {self.am_victim_policy!r}")
        if self.replacement_receiver_policy not in ("accept", "random"):
            raise ConfigError(
                f"unknown replacement_receiver_policy "
                f"{self.replacement_receiver_policy!r}"
            )
        if self.consistency not in ("rc", "sc"):
            raise ConfigError(f"unknown consistency model {self.consistency!r}")

    @property
    def n_nodes(self) -> int:
        return self.n_processors // self.procs_per_node

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    def sized_for(self, working_set_bytes: int) -> "MachineConfig":
        """Return a copy with concrete cache capacities for a working set.

        The attraction memory per *processor* is held constant across
        clustering degrees (paper section 3.1): a 2-processor node gets an
        AM twice the size of a 1-processor node's.
        """
        if working_set_bytes <= 0:
            raise ConfigError("working_set_bytes must be positive")
        total_am = int(math.ceil(working_set_bytes / self.memory_pressure))
        am_per_node = max(
            self.procs_per_node * self.am_assoc * self.line_size,
            total_am // self.n_nodes,
        )
        slc = max(4 * self.line_size, int(working_set_bytes * self.slc_ws_fraction))
        l1 = max(2 * self.line_size, int(working_set_bytes * self.l1_ws_fraction))
        return replace(
            self,
            am_bytes_per_node=am_per_node,
            slc_bytes=slc,
            l1_bytes=l1,
        )

    def _require_sized(self) -> None:
        if self.am_bytes_per_node is None or self.slc_bytes is None or self.l1_bytes is None:
            raise ConfigError(
                "cache capacities not set; call sized_for(working_set_bytes) first"
            )

    @property
    def am_geometry(self) -> CacheGeometry:
        self._require_sized()
        assert self.am_bytes_per_node is not None
        return CacheGeometry.from_size(self.am_bytes_per_node, self.am_assoc, self.line_size)

    @property
    def slc_geometry(self) -> CacheGeometry:
        self._require_sized()
        assert self.slc_bytes is not None
        return CacheGeometry.from_size(self.slc_bytes, self.slc_assoc, self.line_size)

    @property
    def l1_geometry(self) -> CacheGeometry:
        self._require_sized()
        assert self.l1_bytes is not None
        return CacheGeometry.from_size(self.l1_bytes, self.l1_assoc, self.line_size)

    def node_of_proc(self, proc_id: int) -> int:
        """Node that processor ``proc_id`` belongs to.

        Processors are assigned to nodes in sequential order, matching the
        paper's process placement ("processes created after each other are
        likely to belong to the same cluster").
        """
        return proc_id // self.procs_per_node

    def procs_of_node(self, node_id: int) -> range:
        base = node_id * self.procs_per_node
        return range(base, base + self.procs_per_node)

    def describe(self) -> str:
        """One-line human-readable summary of the configuration."""
        mp = float(self.memory_pressure) * 100
        sized = self.am_bytes_per_node is not None
        size_txt = (
            f", AM/node={self.am_bytes_per_node}B SLC={self.slc_bytes}B L1={self.l1_bytes}B"
            if sized
            else " (unsized)"
        )
        return (
            f"{self.n_processors}p/{self.n_nodes}n x{self.procs_per_node} "
            f"MP={mp:.1f}% AM {self.am_assoc}-way{size_txt}"
        )
