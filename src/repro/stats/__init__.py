"""Counters, miss classification, derived metrics, and profilers."""

from repro.stats.counters import Counters
from repro.stats.metrics import (
    read_node_miss_rate,
    relative_rnmr,
    traffic_by_class,
    time_breakdown_figure5,
)
from repro.obs.timeline import CompositeProfiler
from repro.stats.profiler import SharingProfiler, format_profile

# repro.stats.timeline is deprecated (import it to get the legacy
# TrafficTimeline, with a DeprecationWarning); the canonical timeline
# home is repro.obs.timeline.

__all__ = [
    "Counters",
    "read_node_miss_rate",
    "relative_rnmr",
    "traffic_by_class",
    "time_breakdown_figure5",
    "SharingProfiler",
    "format_profile",
    "CompositeProfiler",
]
