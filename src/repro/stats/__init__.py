"""Counters, miss classification, derived metrics, and profilers."""

from repro.stats.counters import Counters
from repro.stats.metrics import (
    read_node_miss_rate,
    relative_rnmr,
    traffic_by_class,
    time_breakdown_figure5,
)
from repro.stats.profiler import SharingProfiler, format_profile
from repro.stats.timeline import (
    CompositeProfiler,
    TrafficTimeline,
    format_timeline,
)

__all__ = [
    "Counters",
    "read_node_miss_rate",
    "relative_rnmr",
    "traffic_by_class",
    "time_breakdown_figure5",
    "SharingProfiler",
    "format_profile",
    "CompositeProfiler",
    "TrafficTimeline",
    "format_timeline",
]
