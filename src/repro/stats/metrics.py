"""Derived metrics matching the paper's reported quantities."""

from __future__ import annotations

from typing import Mapping

from repro.sim.results import SimulationResult


def read_node_miss_rate(result: SimulationResult) -> float:
    """RNMr — fraction of all processor reads that miss in the node."""
    return result.read_node_miss_rate


def relative_rnmr(clustered: SimulationResult, base: SimulationResult) -> float:
    """Figure 2's metric: RNMr of a clustered system divided by the RNMr
    of the non-clustered system (1.0 = no change, lower is better)."""
    b = base.read_node_miss_rate
    if b == 0:
        return 1.0 if clustered.read_node_miss_rate == 0 else float("inf")
    return clustered.read_node_miss_rate / b


def traffic_by_class(
    result: SimulationResult, normalize_to: float | None = None
) -> dict[str, float]:
    """Bus traffic split read/write/replace (Figures 3-4).

    With ``normalize_to`` set, values are scaled so the *total* of the
    reference value maps to 100 (the figures normalize every group of bars
    to its tallest bar).
    """
    t = {k: float(v) for k, v in result.traffic_bytes.items()}
    if normalize_to:
        t = {k: 100.0 * v / normalize_to for k, v in t.items()}
    return t


def time_breakdown_figure5(result: SimulationResult) -> dict[str, float]:
    """Execution time split Busy / SLC / AM / Remote (Figure 5), in ns
    averaged over processors.

    The paper's four categories subsume everything: its spin loops execute
    instructions (Busy) and its release-consistency write stalls are
    negligible.  We therefore fold our separately-tracked ``sync`` and
    ``write`` categories into Busy for this view; the raw six-way split
    remains available as ``SimulationResult.mean_stalls``.
    """
    m = result.mean_stalls
    return {
        "busy": m["busy"] + m["sync"] + m["write"],
        "slc": m["slc"],
        "am": m["am"],
        "remote": m["remote"],
    }


def normalized_breakdown(breakdown: Mapping[str, float], reference_total: float) -> dict[str, float]:
    """Scale a time breakdown to percent of ``reference_total``."""
    if reference_total <= 0:
        return {k: 0.0 for k in breakdown}
    return {k: 100.0 * v / reference_total for k, v in breakdown.items()}
