"""Event counters accumulated by the machine during a run.

Read misses at node level are classified (cold / coherence / conflict /
capacity) to support the paper's section-4.2 analysis; the other counters
feed the RNMr metric (Figure 2), the traffic breakdowns (Figures 3-4) and
general sanity checks in the test suite.
"""

from __future__ import annotations

_FIELDS = (
    # processor-issued operations
    "reads",
    "writes",
    "atomics",
    # hit levels for reads
    "l1_read_hits",
    "slc_read_hits",
    "am_read_hits",
    "overflow_read_hits",
    # node-level misses
    "node_read_misses",
    "node_write_misses",
    # read node miss classification
    "read_miss_cold",
    "read_miss_coherence",
    "read_miss_conflict",
    "read_miss_capacity",
    # protocol events
    "upgrades",
    "read_exclusive",
    "invalidations_sent",
    "back_invalidations",
    # replacement machinery
    "replacements",
    "replace_to_sharer",
    "replace_to_invalid",
    "replace_to_shared",
    "replace_forced_hops",
    "replace_to_slc",
    "overflow_parks",
    "shared_drops",
    "uncached_reads",
    "slc_neighbor_hits",
    "slc_owner_reinserts",
    # paging & sync
    "pages_allocated",
    "lock_acquires",
    "barrier_episodes",
    # write-back / write buffer
    "slc_writebacks",
    "wb_coalesced",
)


class Counters:
    """A flat bag of integer event counters."""

    __slots__ = _FIELDS

    def __init__(self) -> None:
        for f in _FIELDS:
            setattr(self, f, 0)

    def as_dict(self) -> dict[str, int]:
        """Counter values keyed by name, in sorted key order.

        Sorted so every serialization (JSON exports, trace manifests,
        ``__repr__`` diffs) is stable regardless of declaration order.
        """
        return {f: getattr(self, f) for f in sorted(_FIELDS)}

    def merged(self, other: "Counters") -> "Counters":
        out = Counters()
        for f in _FIELDS:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    # -- derived convenience ------------------------------------------------

    @property
    def read_miss_classified(self) -> int:
        return (
            self.read_miss_cold
            + self.read_miss_coherence
            + self.read_miss_conflict
            + self.read_miss_capacity
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        nz = {k: v for k, v in self.as_dict().items() if v}  # sorted via as_dict
        return f"Counters({nz})"
