"""Sharing/replication profiler.

Periodically samples the machine's line table to measure how the paper's
central resource — *replication space* — is actually used:

* the replication degree of each line (1 owner + sharers), its maximum
  over the run and the machine-wide histogram;
* owner migrations (a line's owner node changing between samples);
* per-node attraction-memory composition (owner vs shared vs invalid
  ways), i.e. how much of the AM is replication space right now.

This turns the section-4.2 analysis into a measurement: at low memory
pressure hot lines replicate into every node (degree = n_nodes); above
the analytic threshold ``(W - n + 1)/W`` the observed maximum degree
drops toward the closed-form cap from
:func:`repro.analytic.replication.max_replication_degree`.

Attach via ``Simulation(..., profiler=SharingProfiler(), profile_every=N)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.coma.states import SHARED, is_owning

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine


@dataclass
class ProfileReport:
    """Aggregated sharing profile of one run."""

    samples: int
    #: replication degree -> number of (line, sample) observations
    degree_histogram: dict[int, int]
    #: per line: the largest simultaneous copy count observed
    max_degree: int
    mean_degree: float
    #: owner-node changes observed between consecutive samples
    migrations: int
    #: lines that migrated most, as (line, count)
    top_migrators: list[tuple[int, int]]
    #: averaged AM composition across samples: state fraction of all ways
    am_composition: dict[str, float] = field(default_factory=dict)

    def degree_fraction_at_least(self, degree: int) -> float:
        total = sum(self.degree_histogram.values())
        if not total:
            return 0.0
        hit = sum(v for d, v in self.degree_histogram.items() if d >= degree)
        return hit / total


class SharingProfiler:
    """Samples a :class:`ComaMachine`'s sharing state."""

    def __init__(self) -> None:
        self.samples = 0
        self._degree_hist: Counter[int] = Counter()
        self._max_degree_per_line: dict[int, int] = {}
        self._last_owner: dict[int, int] = {}
        self._migrations: Counter[int] = Counter()
        self._comp_totals: Counter[str] = Counter()

    # ------------------------------------------------------------------
    def sample(self, machine: "ComaMachine") -> None:
        """Record one snapshot (called by the simulation kernel)."""
        self.samples += 1
        maxd = self._max_degree_per_line
        for line, info in machine.lines.items():
            degree = 1 + len(info.sharers)
            self._degree_hist[degree] += 1
            if degree > maxd.get(line, 0):
                maxd[line] = degree
            prev = self._last_owner.get(line)
            if prev is not None and prev != info.owner_node:
                self._migrations[line] += 1
            self._last_owner[line] = info.owner_node
        owners = shared = invalid = 0
        for node in machine.nodes:
            for st in node.am.state_a:
                if st == 0:
                    invalid += 1
                elif st == SHARED:
                    shared += 1
                elif is_owning(st):
                    owners += 1
        self._comp_totals["owner"] += owners
        self._comp_totals["shared"] += shared
        self._comp_totals["invalid"] += invalid

    # ------------------------------------------------------------------
    def report(self, top_n: int = 10) -> ProfileReport:
        total_ways = sum(self._comp_totals.values())
        comp = (
            {k: v / total_ways for k, v in self._comp_totals.items()}
            if total_ways
            else {}
        )
        observations = sum(self._degree_hist.values())
        mean = (
            sum(d * v for d, v in self._degree_hist.items()) / observations
            if observations
            else 0.0
        )
        return ProfileReport(
            samples=self.samples,
            degree_histogram=dict(self._degree_hist),
            max_degree=max(self._max_degree_per_line.values(), default=0),
            mean_degree=mean,
            migrations=sum(self._migrations.values()),
            top_migrators=self._migrations.most_common(top_n),
            am_composition=comp,
        )


def format_profile(report: ProfileReport) -> str:
    """Plain-text rendering of a sharing profile."""
    lines = [
        f"sharing profile over {report.samples} samples",
        f"  replication degree: max {report.max_degree}, "
        f"mean {report.mean_degree:.2f}",
        f"  owner migrations  : {report.migrations}",
    ]
    if report.am_composition:
        comp = ", ".join(
            f"{k} {100 * v:.1f}%" for k, v in sorted(report.am_composition.items())
        )
        lines.append(f"  AM way composition: {comp}")
    hist = sorted(report.degree_histogram.items())
    if hist:
        total = sum(v for _, v in hist)
        lines.append("  degree histogram  :")
        for d, v in hist[:12]:
            lines.append(f"    {d:3d} copies: {100 * v / total:5.1f}%")
    return "\n".join(lines)
