"""Phase-resolved traffic timelines (legacy profiler).

The figures report whole-run traffic totals; this profiler resolves them
over *simulated time*, which exposes the phase structure of the workloads
(FFT's transpose bursts, radix's permutation storms, the per-wavefront
rhythm of Cholesky).  It rides the same sampling hook as
:class:`repro.stats.profiler.SharingProfiler`: each sample records the
machine's cumulative per-class traffic and the current simulated time;
differencing adjacent samples yields the series.

.. deprecated::
   :class:`TrafficTimeline` duplicates what
   :class:`repro.obs.timeline.TimelineSampler` now does for *every*
   machine/registry metric (bus utilization, AM occupancy, miss rate,
   plus the traffic classes) with JSON and Perfetto exports.  The class
   stays for the traffic-only strip chart and existing callers, but new
   code should attach a ``TimelineSampler``.  :class:`CompositeProfiler`
   moved to :mod:`repro.obs.timeline` and is re-exported here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.timeline import CompositeProfiler, traffic_by_class

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine

warnings.warn(
    "repro.stats.timeline is deprecated; use repro.obs.timeline "
    "(TimelineSampler, CompositeProfiler) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "CompositeProfiler",
    "TrafficSample",
    "TrafficTimeline",
    "TrafficWindow",
    "format_timeline",
]


def _sorted_dict_repr(d: dict) -> str:
    inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(d.items()))
    return "{" + inner + "}"


@dataclass(frozen=True, repr=False)
class TrafficSample:
    """Cumulative state at one sample point."""

    sim_time_ns: int
    bytes_by_class: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.bytes_by_class.values())

    def __repr__(self) -> str:  # sorted: repr is diff- and doctest-stable
        return (f"TrafficSample(sim_time_ns={self.sim_time_ns}, "
                f"bytes_by_class={_sorted_dict_repr(self.bytes_by_class)})")


@dataclass(frozen=True, repr=False)
class TrafficWindow:
    """Traffic between two adjacent samples."""

    start_ns: int
    end_ns: int
    bytes_by_class: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.bytes_by_class.values())

    @property
    def bandwidth_bytes_per_us(self) -> float:
        dur = self.end_ns - self.start_ns
        return 1000.0 * self.total / dur if dur > 0 else 0.0

    def __repr__(self) -> str:  # sorted: repr is diff- and doctest-stable
        return (f"TrafficWindow(start_ns={self.start_ns}, "
                f"end_ns={self.end_ns}, "
                f"bytes_by_class={_sorted_dict_repr(self.bytes_by_class)})")


class TrafficTimeline:
    """Samples cumulative bus traffic against simulated time.

    .. deprecated:: use :class:`repro.obs.timeline.TimelineSampler`,
       which covers traffic plus utilization/occupancy/miss-rate series.
    """

    def __init__(self) -> None:
        warnings.warn(
            "TrafficTimeline is deprecated; attach "
            "repro.obs.timeline.TimelineSampler instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.samples: list[TrafficSample] = []

    def sample(self, machine: "ComaMachine") -> None:
        self.samples.append(
            TrafficSample(
                sim_time_ns=machine.now,
                bytes_by_class=traffic_by_class(machine),
            )
        )

    # ------------------------------------------------------------------
    def windows(self) -> list[TrafficWindow]:
        """Per-interval traffic (differences of adjacent samples).

        Samples are taken on event-count boundaries, so out-of-order
        simulated times can occur around synchronization wakeups; windows
        are emitted only for strictly advancing sample pairs.
        """
        out: list[TrafficWindow] = []
        prev = None
        for s in self.samples:
            if prev is not None and s.sim_time_ns > prev.sim_time_ns:
                delta = {
                    k: s.bytes_by_class.get(k, 0) - prev.bytes_by_class.get(k, 0)
                    for k in s.bytes_by_class
                }
                out.append(
                    TrafficWindow(prev.sim_time_ns, s.sim_time_ns, delta)
                )
            prev = s
        return out

    def peak_window(self) -> TrafficWindow | None:
        ws = self.windows()
        return max(ws, key=lambda w: w.bandwidth_bytes_per_us) if ws else None


def format_timeline(timeline: TrafficTimeline, width: int = 50) -> str:
    """Render the traffic series as an ASCII strip chart."""
    windows = timeline.windows()
    if not windows:
        return "traffic timeline: no windows sampled"
    peak = max(w.bandwidth_bytes_per_us for w in windows) or 1.0
    lines = [
        "traffic over simulated time (each row = one sample window;",
        f" bar = bandwidth, peak {peak:.1f} B/us)",
    ]
    for w in windows:
        n = int(round(width * w.bandwidth_bytes_per_us / peak))
        lines.append(
            f"  {w.start_ns / 1e6:8.3f}-{w.end_ns / 1e6:8.3f} ms "
            f"{w.total / 1024:8.1f}K |{'#' * n}"
        )
    return "\n".join(lines)
