"""Plain-text report rendering for single runs (used by the CLI)."""

from __future__ import annotations

from repro.common.units import fmt_bytes, fmt_time
from repro.sim.results import SimulationResult
from repro.stats.metrics import time_breakdown_figure5


def render_run_report(result: SimulationResult) -> str:
    """Human-readable summary of one simulation run."""
    cfg = result.config_summary
    c = result.counters
    lines = [
        "=== simulation run ===",
        f"machine      : {cfg.get('n_processors')} processors, "
        f"{cfg.get('procs_per_node')} per node, "
        f"MP {100 * float(cfg.get('memory_pressure', 0)):.1f}%, "
        f"AM {cfg.get('am_assoc')}-way"
        + ("" if cfg.get("inclusive", True) else ", non-inclusive"),
        f"working set  : {fmt_bytes(result.allocated_bytes)} allocated, "
        f"{fmt_bytes(result.touched_bytes)} touched",
        f"exec time    : {fmt_time(result.elapsed_ns)}",
        f"reads        : {c['reads']} "
        f"(L1 {c['l1_read_hits']}, SLC {c['slc_read_hits']}, "
        f"AM {c['am_read_hits']}, node misses {c['node_read_misses']})",
        f"RNMr         : {100 * result.read_node_miss_rate:.2f}%",
        f"writes       : {c['writes']} (node misses {c['node_write_misses']}, "
        f"upgrades {c['upgrades']})",
        "miss classes : "
        + ", ".join(
            f"{k} {100 * v:.1f}%" for k, v in result.miss_class_fractions.items()
        ),
        "traffic      : "
        + ", ".join(f"{k} {fmt_bytes(v)}" for k, v in result.traffic_bytes.items())
        + f" (bus util {100 * result.bus_utilization:.1f}%)",
        f"replacements : {c['replacements']} "
        f"(to sharer {c['replace_to_sharer']}, to invalid {c['replace_to_invalid']}, "
        f"to shared {c['replace_to_shared']}, forced hops {c['replace_forced_hops']}, "
        f"overflow {c['overflow_parks']})",
    ]
    bd = time_breakdown_figure5(result)
    total = sum(bd.values()) or 1
    lines.append(
        "time split   : "
        + ", ".join(f"{k} {100 * v / total:.1f}%" for k, v in bd.items())
    )
    return "\n".join(lines)
