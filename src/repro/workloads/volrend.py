"""Volrend: ray-cast volume rendering of a shared voxel volume.

Every processor casts rays through the *same* volume (the paper's input is
a 256x256x126 CT head): the voxel data and the opacity/color lookup tables
are read-shared by everyone, making Volrend replication-hungry — a
Figure-4 application.  Rays terminate early once accumulated opacity
saturates, and image tiles come from a shared task queue.

Voxels are one byte each (64 per cache line), so the volume's line
footprint is compact and heavily re-read across processors.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register


@register
class VolrendWorkload(Workload):
    name = "volrend"
    description = "3-D volume rendering"
    paper_working_set_mb = 22.5  # 256x256x126 head in the paper
    n_locks = 1
    n_barriers = 1

    tile = 8
    opacity_cutoff = 0.95

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.vol_dim = int(48 * scale ** (1 / 3))
        # Image edge rounded to whole tiles so the task queue covers it.
        self.image_dim = max(self.tile, int(48 * math.sqrt(scale)) // self.tile * self.tile)

    def allocate(self, space: AddressSpace) -> None:
        v = self.vol_dim
        self.volume = SharedArray(
            space, "volrend.volume", v * v * v, itemsize=1, dtype=np.uint8
        )
        self.table = SharedArray(space, "volrend.table", 256, itemsize=8)
        self.image = SharedArray(
            space, "volrend.image", self.image_dim * self.image_dim, itemsize=8
        )
        self.queue = SharedArray(space, "volrend.queue", 8, itemsize=8, dtype=np.int64)
        rng = self.rng("volume")
        # A smooth blobby density field: a few Gaussian blobs.
        coords = np.stack(
            np.meshgrid(*[np.linspace(0, 1, v)] * 3, indexing="ij"), axis=-1
        )
        field = np.zeros((v, v, v))
        for _ in range(5):
            c = rng.random(3)
            s = 0.1 + 0.15 * rng.random()
            field += np.exp(-np.sum((coords - c) ** 2, axis=-1) / (2 * s * s))
        field = 255 * field / field.max()
        self.volume.data[:] = field.reshape(-1).astype(np.uint8)
        self.table.data[:] = np.linspace(0, 0.08, 256)

    def _vox(self, x: int, y: int, z: int) -> int:
        v = self.vol_dim
        return (x * v + y) * v + z

    def _take_task(self, n_tasks: int):
        yield ("l", 0)
        yield ("r", self.queue.addr(0))
        t = int(self.queue.data[0])
        if t < n_tasks:
            self.queue.data[0] = t + 1
            yield ("w", self.queue.addr(0))
        yield ("u", 0)
        return t

    def _cast(self, px: int, py: int):
        """March one ray front-to-back along z with early termination."""
        v = self.vol_dim
        x = min(v - 1, px * v // self.image_dim)
        y = min(v - 1, py * v // self.image_dim)
        opacity = 0.0
        intensity = 0.0
        for z in range(v):
            idx = self._vox(x, y, z)
            yield ("r", self.volume.addr(idx))
            sample = int(self.volume.data[idx])
            yield ("r", self.table.addr(sample))
            a = self.table.data[sample]
            intensity += (1.0 - opacity) * a * sample
            opacity += (1.0 - opacity) * a
            yield ("c", 14)
            if opacity > self.opacity_cutoff:
                break
        self.image.data[py * self.image_dim + px] = intensity
        yield ("w", self.image.addr(py * self.image_dim + px))

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        v = self.vol_dim
        # First touch: volume slabs along x, the lookup table by thread 0.
        for x in self.chunk(v, tid):
            for y in range(v):
                # Touch one voxel per line (64 voxels span one line).
                for z in range(0, v, 64):
                    yield ("w", self.volume.addr(self._vox(x, y, z)))
            yield ("c", 4 * v)
        if tid == 0:
            for k in range(0, 256, 8):
                yield ("w", self.table.addr(k))
            yield ("w", self.queue.addr(0))
        yield ("b", 0)

        dim = self.image_dim
        tiles_per_row = dim // self.tile
        n_tasks = tiles_per_row * tiles_per_row
        while True:
            t = yield from self._take_task(n_tasks)
            if t >= n_tasks:
                break
            ty, tx = divmod(t, tiles_per_row)
            for py in range(ty * self.tile, (ty + 1) * self.tile):
                for px in range(tx * self.tile, (tx + 1) * self.tile):
                    yield from self._cast(px, py)
                    yield ("c", 20)
        yield ("b", 0)
