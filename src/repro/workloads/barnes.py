"""Barnes: Barnes-Hut hierarchical N-body (gravitational).

An octree is built over the bodies each step; every thread then walks the
*whole shared tree* to compute forces on its own bodies.  The tree is
read-shared by all processors — the replication-hungry access pattern
that puts Barnes in the paper's conflict-sensitive Figure-4 group at very
high memory pressure.

Tree building is parallel with per-cell locks hashed onto a small lock
array (as in the SPLASH-2 code); the structural insertion is computed on
real body positions, so the walk's access stream is genuinely irregular.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

#: Simulated doubles per tree cell: 8 child pointers + center-of-mass
#: (x, y, z, mass) + bookkeeping = 16 doubles = 2 lines.
_CELL_FIELDS = 16
#: Simulated doubles per body: pos(3) vel(3) acc(3) mass + padding.
_BODY_FIELDS = 16


class _Cell:
    """Python-side octree cell (structure mirrored in simulated memory)."""

    __slots__ = ("index", "children", "body", "com", "mass", "size", "center")

    def __init__(self, index: int, center, size: float) -> None:
        self.index = index
        self.children: list[Optional["_Cell"]] = [None] * 8
        self.body: Optional[int] = None  # leaf body id
        self.com = np.zeros(3)
        self.mass = 0.0
        self.size = size
        self.center = np.asarray(center, dtype=float)


@register
class BarnesWorkload(Workload):
    name = "barnes"
    description = "N-body"
    paper_working_set_mb = 3.5  # 16K particles in the paper
    n_locks = 16
    n_barriers = 1

    theta = 0.6
    steps = 2

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n_bodies = int(448 * scale)
        self.max_cells = 4 * self.n_bodies

    def allocate(self, space: AddressSpace) -> None:
        self.bodies = SharedArray(
            space, "barnes.bodies", self.n_bodies * _BODY_FIELDS, itemsize=8
        )
        self.cells = SharedArray(
            space, "barnes.cells", self.max_cells * _CELL_FIELDS, itemsize=8
        )
        rng = self.rng("bodies")
        # Plummer-like clustered distribution (two clusters, like the
        # paper's FMM input, gives the walk realistic depth variance).
        half = self.n_bodies // 2
        c1 = rng.normal(0.3, 0.08, size=(half, 3))
        c2 = rng.normal(0.7, 0.08, size=(self.n_bodies - half, 3))
        self.pos = np.clip(np.vstack([c1, c2]), 0.0, 1.0)
        self._tree_built = False
        self.root: Optional[_Cell] = None
        self._n_cells = 0

    # -- addresses -------------------------------------------------------

    def _body_addr(self, i: int, f: int = 0) -> int:
        return self.bodies.addr(i * _BODY_FIELDS + f)

    def _cell_addr(self, c: int, f: int = 0) -> int:
        return self.cells.addr(c * _CELL_FIELDS + f)

    # -- octree ----------------------------------------------------------

    def _new_cell(self, center, size: float) -> _Cell:
        cell = _Cell(self._n_cells, center, size)
        self._n_cells += 1
        if self._n_cells > self.max_cells:
            raise RuntimeError("barnes: cell pool exhausted")
        return cell

    def _octant(self, cell: _Cell, p) -> int:
        o = 0
        if p[0] >= cell.center[0]:
            o |= 1
        if p[1] >= cell.center[1]:
            o |= 2
        if p[2] >= cell.center[2]:
            o |= 4
        return o

    def _child_center(self, cell: _Cell, o: int):
        off = cell.size / 4
        return cell.center + off * np.array(
            [1 if o & 1 else -1, 1 if o & 2 else -1, 1 if o & 4 else -1]
        )

    def _insert(self, cell: _Cell, body: int, events: list) -> None:
        """Insert ``body``; appends the simulated accesses to ``events``.

        Each cell's accesses are bracketed by that *cell's* hashed lock
        (as in the SPLASH-2 code): concurrent insertions by different
        threads meet in shared interior cells, and only a lock keyed on
        the cell orders those conflicting accesses.  Locks never nest,
        so the hashed sharing cannot deadlock.
        """
        o = self._octant(cell, self.pos[body])
        lid = cell.index % self.n_locks
        events.append(("l", lid))
        events.append(("r", self._cell_addr(cell.index, o)))
        child = cell.children[o]
        if child is None:
            leaf = self._new_cell(self._child_center(cell, o), cell.size / 2)
            leaf.body = body
            cell.children[o] = leaf
            events.append(("w", self._cell_addr(cell.index, o)))
            events.append(("u", lid))
            # The new leaf's body field is written under the *leaf's* own
            # lock: a later insertion that splits this leaf reads the field
            # under that same lock, which is what orders the two accesses.
            llid = leaf.index % self.n_locks
            events.append(("l", llid))
            events.append(("w", self._cell_addr(leaf.index, 8)))
            events.append(("u", llid))
            return
        events.append(("u", lid))
        if child.body is not None:
            # Split the leaf: push the resident body down.
            old = child.body
            child.body = None
            clid = child.index % self.n_locks
            events.append(("l", clid))
            events.append(("r", self._cell_addr(child.index, 8)))
            events.append(("u", clid))
            self._insert(child, old, events)
        self._insert(child, body, events)

    def _build_tree(self) -> None:
        """Structural build on the *current* positions.

        Called once up front and again after each position update (the
        tree is rebuilt every timestep, as in the real code, so the walk's
        access stream tracks the evolving body distribution).
        """
        if self._tree_built:
            return
        self._n_cells = 0
        self.root = self._new_cell([0.5, 0.5, 0.5], 1.0)
        self._insert_events: dict[int, list] = {}
        for b in range(self.n_bodies):
            ev: list = []
            self._insert(self.root, b, ev)
            self._insert_events[b] = ev
        self._summarize(self.root)
        self._tree_built = True

    def _advance_positions(self, step: int) -> None:
        """Drift the bodies (seeded, deterministic) and invalidate the
        tree so the next build reflects the new distribution."""
        rng = self.rng("drift", step)
        self.pos = np.clip(
            self.pos + 0.03 * rng.standard_normal(self.pos.shape), 0.0, 1.0
        )
        self._tree_built = False

    def _summarize(self, cell: _Cell):
        """Bottom-up centers of mass."""
        if cell.body is not None:
            cell.mass = 1.0
            cell.com = self.pos[cell.body].copy()
            return cell.mass, cell.com
        total, com = 0.0, np.zeros(3)
        for ch in cell.children:
            if ch is None:
                continue
            m, c = self._summarize(ch)
            total += m
            com += m * c
        cell.mass = total
        cell.com = com / total if total else cell.center
        return cell.mass, cell.com

    # -- force walk --------------------------------------------------------

    def _walk(self, cell: _Cell, body: int):
        """Barnes-Hut opening-criterion walk, emitting cell reads."""
        # Read the cell's center of mass (one line) and children (other line).
        yield ("r", self._cell_addr(cell.index, 8))
        d = float(np.linalg.norm(self.pos[body] - cell.com)) + 1e-9
        if cell.body is not None or cell.size / d < self.theta:
            yield ("c", 24)  # one body-cell interaction
            return
        yield ("r", self._cell_addr(cell.index, 0))
        for ch in cell.children:
            if ch is not None:
                yield from self._walk(ch, body)

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        self._build_tree()
        mine = self.chunk(self.n_bodies, tid)
        # First touch of owned bodies.
        for b in mine:
            for f in range(_BODY_FIELDS):
                yield ("w", self._body_addr(b, f))
            yield ("c", 16)
        yield ("b", 0)
        for step in range(self.steps):
            if step > 0:
                # Thread 0 drifts the bodies and triggers the rebuild;
                # the preceding barrier guarantees nobody is mid-walk.
                if tid == 0:
                    self._advance_positions(step)
                    self._build_tree()
                yield ("b", 0)
            # Parallel tree build: replay each owned body's insertion
            # access stream; the per-cell hashed locks are embedded in
            # the stream itself (see _insert).
            for b in mine:
                yield ("r", self._body_addr(b, 0))
                for ev in self._insert_events[b]:
                    yield ev
                yield ("c", 30)
            yield ("b", 0)
            # Summarization: thread 0 sweeps the cells bottom-up.
            if tid == 0:
                for c in range(self._n_cells):
                    yield ("r", self._cell_addr(c, 0))
                    yield ("w", self._cell_addr(c, 8))
                yield ("c", 10 * self._n_cells)
            yield ("b", 0)
            # Force computation: every thread walks the shared tree.
            assert self.root is not None
            for b in mine:
                yield ("r", self._body_addr(b, 0))
                yield from self._walk(self.root, b)
                yield ("w", self._body_addr(b, 6))  # acc
                yield ("c", 40)
            yield ("b", 0)
            # Position/velocity update on owned bodies.
            for b in mine:
                yield ("r", self._body_addr(b, 6))
                yield ("w", self._body_addr(b, 0))
                yield ("w", self._body_addr(b, 3))
                yield ("c", 20)
            yield ("b", 0)
