"""FFT: the SPLASH-2 radix-sqrt(n) six-step 1-D FFT.

The n = m*m complex data points are viewed as an m x m matrix distributed
by contiguous rows over the threads.  The six steps are: transpose, row
FFTs, twiddle multiplication, transpose, row FFTs, transpose.  The
transposes are the communication phases — every thread reads a block of
columns from every other thread's partition (all-to-all), which is what
makes FFT one of the paper's most memory-pressure-sensitive applications.

Transposes are blocked so that the 4 complex elements sharing a 64-byte
line are consumed together (as the SPLASH-2 code does).
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

_BLOCK = 4  # complex elements per 64-byte line


@register
class FftWorkload(Workload):
    name = "fft"
    description = "1-dim. six-step FFT"
    paper_working_set_mb = 50.0  # 1M data points in the paper
    n_locks = 0
    n_barriers = 1

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        # m is kept a multiple of both the block size and (ideally) the
        # thread count so partitions are clean.
        m = int(64 * math.sqrt(self.scale))
        self.m = max(16, (m // _BLOCK) * _BLOCK)
        self.n = self.m * self.m

    def allocate(self, space: AddressSpace) -> None:
        n = self.n
        self.a = SharedArray(space, "fft.a", n, itemsize=16, dtype=np.complex128)
        self.b = SharedArray(space, "fft.b", n, itemsize=16, dtype=np.complex128)
        self.tw = SharedArray(space, "fft.twiddle", n, itemsize=16, dtype=np.complex128)
        rng = self.rng("twiddle")
        # Real twiddle factors: exp(-2*pi*i*r*c/n).
        r = np.arange(n) // self.m
        c = np.arange(n) % self.m
        self.tw.data[:] = np.exp(-2j * np.pi * (r * c) / n)
        self.init_vals = rng.standard_normal(n) + 1j * rng.standard_normal(n)

    # ------------------------------------------------------------------
    def _rows(self, tid: int) -> range:
        return self.chunk(self.m, tid)

    def _transpose(self, src: SharedArray, dst: SharedArray, tid: int):
        """Blocked transpose: dst[r, c] = src[c, r] for owned rows r."""
        m = self.m
        rows = self._rows(tid)
        for r0 in rows[::_BLOCK]:
            r_hi = min(r0 + _BLOCK, rows.stop)
            for c0 in range(0, m, _BLOCK):
                for c in range(c0, min(c0 + _BLOCK, m)):
                    base_src = c * m
                    for r in range(r0, r_hi):
                        yield ("r", src.addr(base_src + r))
                        dst.data[r * m + c] = src.data[base_src + r]
                        yield ("w", dst.addr(r * m + c))
                yield ("c", 8 * _BLOCK * _BLOCK)

    def _row_ffts(self, arr: SharedArray, tid: int):
        """In-place m-point FFT of each owned row."""
        m = self.m
        flops = int(5 * m * max(1, math.log2(m)))
        for r in self._rows(tid):
            lo = r * m
            for c in range(m):
                yield ("r", arr.addr(lo + c))
            arr.data[lo : lo + m] = np.fft.fft(arr.data[lo : lo + m])
            yield ("c", flops)
            for c in range(m):
                yield ("w", arr.addr(lo + c))

    def _twiddle(self, arr: SharedArray, tid: int):
        m = self.m
        for r in self._rows(tid):
            lo = r * m
            for c in range(m):
                yield ("r", self.tw.addr(lo + c))
                yield ("r", arr.addr(lo + c))
                arr.data[lo + c] *= self.tw.data[lo + c]
                yield ("w", arr.addr(lo + c))
            yield ("c", 6 * m)

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        m = self.m
        # Initialize owned rows (first touch places pages at the owner).
        for r in self._rows(tid):
            lo = r * m
            for c in range(m):
                self.a.data[lo + c] = self.init_vals[lo + c]
                yield ("w", self.a.addr(lo + c))
            yield ("c", 2 * m)
        yield ("b", 0)
        yield from self._transpose(self.a, self.b, tid)
        yield ("b", 0)
        yield from self._row_ffts(self.b, tid)
        yield ("b", 0)
        yield from self._twiddle(self.b, tid)
        yield ("b", 0)
        yield from self._transpose(self.b, self.a, tid)
        yield ("b", 0)
        yield from self._row_ffts(self.a, tid)
        yield ("b", 0)
        yield from self._transpose(self.a, self.b, tid)
        yield ("b", 0)
