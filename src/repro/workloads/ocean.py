"""Ocean: red-black SOR relaxation from the SPLASH-2 ocean simulation.

The g x g grid is partitioned into square subgrids, one per thread (4 x 4
subgrids for 16 threads).  Each iteration performs a red sweep and a black
sweep of the 5-point stencil over two coupled grids (stream function and
vorticity), with barriers between sweeps; communication is
nearest-neighbour along subgrid borders.

* ``ocean_contig``    — "enhanced locality": each thread's subgrid is
  allocated contiguously, so only true border elements share lines with
  neighbours.
* ``ocean_noncontig`` — the original row-major 2-D arrays: a subgrid's
  rows are strided by the full grid width, so vertical borders are spread
  over many lines and horizontally adjacent subgrids false-share every
  boundary line.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register


class _OceanBase(Workload):
    n_locks = 0
    n_barriers = 1
    contiguous_subgrids = True
    iterations = 2

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.pgrid = max(1, int(math.sqrt(n_threads)))
        g = int(96 * math.sqrt(scale))
        # Grid divisible by the processor grid.
        self.g = max(self.pgrid * 8, (g // self.pgrid) * self.pgrid)
        self.sub = self.g // self.pgrid  # subgrid edge

    #: Coarse-grid correction levels of the multigrid solver (the real
    #: ocean code solves its elliptic equations with multigrid W-cycles;
    #: we run one V-cycle per iteration).
    multigrid_levels = 2

    def allocate(self, space: AddressSpace) -> None:
        n = self.g * self.g
        self.psi = SharedArray(space, f"{self.name}.psi", n, itemsize=8)
        self.vort = SharedArray(space, f"{self.name}.vort", n, itemsize=8)
        # Coarse grids for the multigrid cycle (level k has edge g / 2^k).
        self.coarse: list[SharedArray] = []
        edge = self.g
        for lvl in range(1, self.multigrid_levels + 1):
            edge //= 2
            self.coarse.append(
                SharedArray(space, f"{self.name}.mg{lvl}", edge * edge, itemsize=8)
            )
        rng = self.rng("init")
        self.psi.data[:] = rng.standard_normal(n)
        self.vort.data[:] = rng.standard_normal(n)

    # -- layout ---------------------------------------------------------

    def idx(self, i: int, j: int) -> int:
        if not self.contiguous_subgrids:
            return i * self.g + j
        s = self.sub
        si, ii = divmod(i, s)
        sj, jj = divmod(j, s)
        return ((si * self.pgrid + sj) * s + ii) * s + jj

    def _region(self, tid: int) -> tuple[int, int, int, int]:
        """(i0, i1, j0, j1) of thread ``tid``'s subgrid."""
        si, sj = divmod(tid % (self.pgrid * self.pgrid), self.pgrid)
        s = self.sub
        return si * s, (si + 1) * s, sj * s, (sj + 1) * s

    # -- kernel ----------------------------------------------------------

    def _sweep(self, tid: int, arr: SharedArray, other: SharedArray, color: int):
        """One red/black SOR sweep over the thread's subgrid interior."""
        g = self.g
        i0, i1, j0, j1 = self._region(tid)
        omega = 1.2
        data = arr.data
        for i in range(max(1, i0), min(g - 1, i1)):
            jstart = max(1, j0)
            if (i + jstart) % 2 != color:
                jstart += 1
            for j in range(jstart, min(g - 1, j1), 2):
                c = self.idx(i, j)
                up, dn = self.idx(i - 1, j), self.idx(i + 1, j)
                lf, rt = self.idx(i, j - 1), self.idx(i, j + 1)
                yield ("r", arr.addr(up))
                yield ("r", arr.addr(dn))
                yield ("r", arr.addr(lf))
                yield ("r", arr.addr(rt))
                yield ("r", other.addr(c))
                yield ("r", arr.addr(c))
                new = (1 - omega) * data[c] + omega * 0.25 * (
                    data[up] + data[dn] + data[lf] + data[rt] + 0.01 * other.data[c]
                )
                data[c] = new
                yield ("w", arr.addr(c))
            yield ("c", 12 * (min(g - 1, j1) - jstart) // 2)

    # -- multigrid pieces --------------------------------------------------

    def _coarse_region(self, tid: int, factor: int) -> tuple[int, int, int, int]:
        i0, i1, j0, j1 = self._region(tid)
        return i0 // factor, i1 // factor, j0 // factor, j1 // factor

    def _restrict(self, tid: int, fine, coarse, factor: int):
        """Full-weighting restriction of the thread's subgrid: each coarse
        point averages a 2x2 fine patch (of the finer level's values)."""
        edge = self.g // factor
        i0, i1, j0, j1 = self._coarse_region(tid, factor)
        for ci in range(i0, i1):
            for cj in range(j0, j1):
                fi, fj = 2 * ci, 2 * cj
                acc = 0.0
                for di in (0, 1):
                    for dj in (0, 1):
                        src = self._fine_index(fine, fi + di, fj + dj, factor // 2)
                        yield ("r", fine.addr(src))
                        acc += fine.data[src]
                coarse.data[ci * edge + cj] = 0.25 * acc
                yield ("w", coarse.addr(ci * edge + cj))
            yield ("c", 6 * max(1, j1 - j0))

    def _fine_index(self, arr, i: int, j: int, factor: int) -> int:
        """Index into a grid: the finest level uses the layout mapping,
        coarse levels are plain row-major."""
        if factor <= 1:
            return self.idx(i, j)
        edge = self.g // factor
        return min(i, edge - 1) * edge + min(j, edge - 1)

    def _coarse_sweep(self, tid: int, coarse, factor: int, color: int):
        """Red/black relaxation on a coarse grid."""
        edge = self.g // factor
        i0, i1, j0, j1 = self._coarse_region(tid, factor)
        data = coarse.data
        for i in range(max(1, i0), min(edge - 1, i1)):
            jstart = max(1, j0)
            if (i + jstart) % 2 != color:
                jstart += 1
            for j in range(jstart, min(edge - 1, j1), 2):
                c = i * edge + j
                for nb in (c - edge, c + edge, c - 1, c + 1):
                    yield ("r", coarse.addr(nb))
                data[c] = 0.25 * (
                    data[c - edge] + data[c + edge] + data[c - 1] + data[c + 1]
                )
                yield ("w", coarse.addr(c))
            yield ("c", 8 * max(1, (min(edge - 1, j1) - jstart) // 2))

    def _prolong(self, tid: int, coarse, fine, factor: int):
        """Inject the coarse correction back into the finer level."""
        edge = self.g // factor
        i0, i1, j0, j1 = self._coarse_region(tid, factor)
        for ci in range(i0, i1):
            for cj in range(j0, j1):
                src = ci * edge + cj
                yield ("r", coarse.addr(src))
                dst = self._fine_index(fine, 2 * ci, 2 * cj, factor // 2)
                fine.data[dst] += 0.05 * coarse.data[src]
                yield ("w", fine.addr(dst))
            yield ("c", 3 * max(1, j1 - j0))

    def _vcycle(self, tid: int):
        """One multigrid V-cycle on the stream function."""
        grids = [self.psi] + self.coarse
        # Down: restrict level by level.
        for lvl in range(len(self.coarse)):
            factor = 2 ** (lvl + 1)
            yield from self._restrict(tid, grids[lvl], grids[lvl + 1], factor)
            yield ("b", 0)
        # Relax on the coarsest grid.
        factor = 2 ** len(self.coarse)
        for color in (0, 1):
            yield from self._coarse_sweep(tid, grids[-1], factor, color)
            yield ("b", 0)
        # Up: prolong corrections back down the hierarchy.
        for lvl in range(len(self.coarse) - 1, -1, -1):
            factor = 2 ** (lvl + 1)
            yield from self._prolong(tid, grids[lvl + 1], grids[lvl], factor)
            yield ("b", 0)

    def thread(self, tid: int) -> Iterator[tuple]:
        # First touch: each thread initializes its own subgrid.
        i0, i1, j0, j1 = self._region(tid)
        for i in range(i0, i1):
            for j in range(j0, j1):
                yield ("w", self.psi.addr(self.idx(i, j)))
                yield ("w", self.vort.addr(self.idx(i, j)))
            yield ("c", 4 * (j1 - j0))
        yield ("b", 0)
        for _ in range(self.iterations):
            for color in (0, 1):
                yield from self._sweep(tid, self.psi, self.vort, color)
                yield ("b", 0)
                yield from self._sweep(tid, self.vort, self.psi, color)
                yield ("b", 0)
            yield from self._vcycle(tid)


@register
class OceanContigWorkload(_OceanBase):
    name = "ocean_contig"
    description = "Ocean movement simul., enhanced locality"
    paper_working_set_mb = 14.5  # 258x258 in the paper
    contiguous_subgrids = True


@register
class OceanNoncontigWorkload(_OceanBase):
    name = "ocean_noncontig"
    description = "Ocean movement simulation"
    paper_working_set_mb = 14.5
    contiguous_subgrids = False
