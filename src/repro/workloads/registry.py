"""Workload registry keyed by the paper's application names."""

from __future__ import annotations

from typing import Type

from repro.workloads.base import Workload

_REGISTRY: dict[str, Type[Workload]] = {}

#: The paper's application order (Table 1 / the figures).
PAPER_ORDER = [
    "barnes",
    "cholesky",
    "fft",
    "fmm",
    "lu_contig",
    "lu_noncontig",
    "ocean_contig",
    "ocean_noncontig",
    "radiosity",
    "radix",
    "raytrace",
    "volrend",
    "water_n2",
    "water_sp",
]


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def workload_names() -> list[str]:
    return sorted(_REGISTRY)


def paper_workloads() -> list[str]:
    """The 14 applications in the paper's canonical order."""
    return [n for n in PAPER_ORDER if n in _REGISTRY]
