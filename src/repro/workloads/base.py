"""Workload building blocks: shared arrays and the workload base class."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterator

import numpy as np

from repro.common.rng import make_rng
from repro.mem.address import AddressSpace

#: Sharing-pattern declarations for :meth:`Workload.declared_sharing`.
#: ``private``: after an initial barrier-separated setup phase, each element
#: is accessed by exactly one thread — a concurrent conflicting access pair
#: is a workload bug.  ``shared``: elements may be accessed by several
#: threads; conflicts must still be ordered by locks/barriers.  ``sync``:
#: the segment implements synchronization itself (lock/barrier words) and
#: is exempt from data-race checking.
SHARING_PRIVATE = "private"
SHARING_SHARED = "shared"
SHARING_SYNC = "sync"


class SharedArray:
    """A 1-D array living in the simulated shared address space.

    Data values are kept in a NumPy array on the Python side (the memory
    system never sees values); the simulated side is the address range.
    Hot loops use :meth:`addr` and yield ``("r", addr)`` / ``("w", addr)``
    tuples directly; :meth:`read` / :meth:`write` are readable generator
    helpers for cooler code paths (``x = yield from arr.read(i)``).

    Indices passed to :meth:`addr` should be plain Python ints in hot
    loops (NumPy scalars work but are slower as dict keys downstream).
    """

    __slots__ = ("name", "base", "itemsize", "length", "data")

    def __init__(
        self,
        space: AddressSpace,
        name: str,
        length: int,
        itemsize: int = 8,
        dtype=np.float64,
    ) -> None:
        seg = space.alloc(length * itemsize, name)
        self.name = name
        self.base = seg.base
        self.itemsize = itemsize
        self.length = length
        self.data = np.zeros(length, dtype=dtype)

    def __len__(self) -> int:
        return self.length

    def addr(self, i: int) -> int:
        """Byte address of element ``i`` (unchecked, hot path)."""
        return self.base + i * self.itemsize

    def addr_checked(self, i: int) -> int:
        if not 0 <= i < self.length:
            raise IndexError(f"{self.name}[{i}] out of range ({self.length})")
        return self.base + i * self.itemsize

    def read(self, i: int):
        """Generator helper: emit the load and return the value."""
        yield ("r", self.base + i * self.itemsize)
        return self.data[i]

    def write(self, i: int, value):
        """Generator helper: store the value and emit the write."""
        self.data[i] = value
        yield ("w", self.base + i * self.itemsize)


class Workload(ABC):
    """Base class for the SPLASH-2-like kernels.

    Lifecycle (driven by ``repro.experiments.runner``):

    1. construct with ``n_threads`` / ``scale`` / ``seed``;
    2. :meth:`allocate` carves arrays out of the address space (this
       determines the working set and therefore the cache sizing);
    3. one generator per thread from :meth:`thread` feeds the simulator.

    ``scale`` multiplies the problem dimensions; 1.0 is the scaled-down
    default documented in DESIGN.md.
    """

    #: Registry key, e.g. ``"fft"``.
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: Working set the paper reports for the full-size problem (Table 1).
    paper_working_set_mb: ClassVar[float] = 0.0
    #: Synchronization footprint; the runner allocates one line for each.
    n_locks: ClassVar[int] = 1
    n_barriers: ClassVar[int] = 4

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.n_threads = n_threads
        self.scale = scale
        self.seed = seed

    # -- abstract interface ------------------------------------------------

    @abstractmethod
    def allocate(self, space: AddressSpace) -> None:
        """Allocate every shared array the kernel uses."""

    @abstractmethod
    def thread(self, tid: int) -> Iterator[tuple]:
        """The event generator executed by thread ``tid``."""

    def declared_sharing(self) -> dict[str, str]:
        """Segment-name -> sharing pattern (``SHARING_*``) declarations.

        Consumed by the coherence sanitizer: a conflicting access pair on
        a segment declared ``SHARING_PRIVATE`` is reported as a
        partitioning bug (rule R003) even when it happens to be ordered.
        The default declares nothing; kernels override selectively.
        """
        return {}

    # -- helpers -------------------------------------------------------------

    def rng(self, *tags) -> np.random.Generator:
        """Deterministic per-purpose RNG."""
        return make_rng(self.seed, self.name, *tags)

    def chunk(self, n: int, tid: int) -> range:
        """Contiguous block partition of ``range(n)`` for thread ``tid``.

        Contiguous (not interleaved) assignment preserves the locality that
        the paper's sequential process placement exploits within clusters.
        """
        per = -(-n // self.n_threads)
        lo = min(n, tid * per)
        hi = min(n, lo + per)
        return range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(threads={self.n_threads}, scale={self.scale})"
