"""FMM: an adaptive fast-multipole N-body solver (2-D, two clusters).

The paper's FMM input is a "two cluster" particle distribution.  We run
the classic uniform-grid FMM pipeline on a two-cluster input:

1. P2M — leaf boxes build multipole expansions from their bodies;
2. M2M — upward pass merges child expansions into parents;
3. M2L — every box *reads the multipole expansions of its interaction
   list* (up to 27 well-separated boxes at its level) — the read-shared
   irregular phase that dominates communication;
4. L2L — downward pass;
5. L2P + P2P — leaf boxes evaluate local expansions and compute direct
   interactions with the 8 neighbouring leaves.

The expansions are the shared, replication-hungry structure that puts FMM
in the paper's Figure-4 group.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

_ORDER = 8          # multipole terms per box
_BODY_FIELDS = 24   # pos, vel, force, multipole-source terms


@register
class FmmWorkload(Workload):
    name = "fmm"
    description = "N-body two cluster"
    paper_working_set_mb = 29.0
    n_locks = 8
    n_barriers = 1

    levels = 4  # leaf grid is 2^(levels-1) per side

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n_bodies = int(640 * scale)
        self.leaf_dim = 1 << (self.levels - 1)

    # -- box indexing: boxes of all levels in one array -------------------

    def _level_offset(self, level: int) -> int:
        # Level l has (2^l)^2 boxes; offset is the sum over lower levels.
        return sum((1 << l) ** 2 for l in range(level))

    def _box(self, level: int, x: int, y: int) -> int:
        return self._level_offset(level) + x * (1 << level) + y

    def allocate(self, space: AddressSpace) -> None:
        self.n_boxes = self._level_offset(self.levels)
        self.multipole = SharedArray(
            space, "fmm.multipole", self.n_boxes * _ORDER, itemsize=8
        )
        self.local = SharedArray(space, "fmm.local", self.n_boxes * _ORDER, itemsize=8)
        self.bodies = SharedArray(
            space, "fmm.bodies", self.n_bodies * _BODY_FIELDS, itemsize=8
        )
        rng = self.rng("bodies")
        half = self.n_bodies // 2
        c1 = rng.normal(0.25, 0.07, size=(half, 2))
        c2 = rng.normal(0.75, 0.07, size=(self.n_bodies - half, 2))
        self.pos = np.clip(np.vstack([c1, c2]), 0.0, 0.999)
        d = self.leaf_dim
        self.body_leaf = [
            (int(self.pos[i][0] * d), int(self.pos[i][1] * d))
            for i in range(self.n_bodies)
        ]
        self.leaf_bodies: dict[tuple[int, int], list[int]] = {}
        for i, cell in enumerate(self.body_leaf):
            self.leaf_bodies.setdefault(cell, []).append(i)

    # -- address helpers ---------------------------------------------------

    def _mp(self, box: int, k: int) -> int:
        return self.multipole.addr(box * _ORDER + k)

    def _loc(self, box: int, k: int) -> int:
        return self.local.addr(box * _ORDER + k)

    def _body_addr(self, i: int, f: int = 0) -> int:
        return self.bodies.addr(i * _BODY_FIELDS + f)

    def _leaf_owner(self, x: int, y: int) -> int:
        """Leaf boxes are distributed in contiguous column bands."""
        return min(self.n_threads - 1, x * self.n_threads // self.leaf_dim)

    def _interaction_list(self, level: int, x: int, y: int):
        """Well-separated same-level boxes: children of the parent's
        neighbours that are not neighbours of (x, y)."""
        dim = 1 << level
        px, py = x // 2, y // 2
        for nx in range(max(0, (px - 1) * 2), min(dim, (px + 2) * 2)):
            for ny in range(max(0, (py - 1) * 2), min(dim, (py + 2) * 2)):
                if abs(nx - x) > 1 or abs(ny - y) > 1:
                    yield self._box(level, nx, ny)

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        d = self.leaf_dim
        leaf_level = self.levels - 1
        # First touch: bodies by owner of their leaf box.
        for i in range(self.n_bodies):
            x, y = self.body_leaf[i]
            if self._leaf_owner(x, y) == tid:
                for f in range(_BODY_FIELDS):
                    yield ("w", self._body_addr(i, f))
                yield ("c", 10)
        yield ("b", 0)

        # P2M: leaves owned by this thread.
        for x in range(d):
            if self._leaf_owner(x, 0) != tid:
                continue
            for y in range(d):
                box = self._box(leaf_level, x, y)
                for i in self.leaf_bodies.get((x, y), []):
                    yield ("r", self._body_addr(i, 0))
                    yield ("c", 8 * _ORDER)
                for k in range(_ORDER):
                    yield ("w", self._mp(box, k))
        yield ("b", 0)

        # M2M upward: parent owners merge children.
        for level in range(leaf_level - 1, -1, -1):
            dim = 1 << level
            for x in range(dim):
                # Ownership follows the leaf bands through the hierarchy.
                if self._leaf_owner(x * (d // dim), 0) != tid:
                    continue
                for y in range(dim):
                    box = self._box(level, x, y)
                    for cx in (2 * x, 2 * x + 1):
                        for cy in (2 * y, 2 * y + 1):
                            child = self._box(level + 1, cx, cy)
                            for k in range(0, _ORDER, 2):
                                yield ("r", self._mp(child, k))
                    yield ("c", 16 * _ORDER)
                    for k in range(_ORDER):
                        yield ("w", self._mp(box, k))
            yield ("b", 0)

        # M2L: the communication-heavy phase — read interaction lists.
        for level in range(1, self.levels):
            dim = 1 << level
            for x in range(dim):
                if self._leaf_owner(x * (d // dim), 0) != tid:
                    continue
                for y in range(dim):
                    box = self._box(level, x, y)
                    for src in self._interaction_list(level, x, y):
                        for k in range(0, _ORDER, 2):
                            yield ("r", self._mp(src, k))
                        yield ("c", 12 * _ORDER)
                    for k in range(_ORDER):
                        yield ("w", self._loc(box, k))
        yield ("b", 0)

        # L2L downward.
        for level in range(1, self.levels):
            dim = 1 << level
            for x in range(dim):
                if self._leaf_owner(x * (d // dim), 0) != tid:
                    continue
                for y in range(dim):
                    box = self._box(level, x, y)
                    parent = self._box(level - 1, x // 2, y // 2)
                    for k in range(0, _ORDER, 2):
                        yield ("r", self._loc(parent, k))
                    yield ("c", 8 * _ORDER)
                    for k in range(0, _ORDER, 2):
                        yield ("w", self._loc(box, k))
            yield ("b", 0)

        # L2P + P2P on owned leaves.
        for x in range(d):
            if self._leaf_owner(x, 0) != tid:
                continue
            for y in range(d):
                box = self._box(leaf_level, x, y)
                residents = self.leaf_bodies.get((x, y), [])
                for k in range(0, _ORDER, 2):
                    yield ("r", self._loc(box, k))
                for i in residents:
                    yield ("r", self._body_addr(i, 0))
                    yield ("c", 6 * _ORDER)
                    # Direct interactions with neighbour leaves (capped,
                    # like the SPLASH-2 well-separateness bound).
                    for nx in range(max(0, x - 1), min(d, x + 2)):
                        for ny in range(max(0, y - 1), min(d, y + 2)):
                            for j in self.leaf_bodies.get((nx, ny), [])[:6]:
                                if j == i:
                                    continue
                                yield ("r", self._body_addr(j, 0))
                                yield ("c", 12)
                    yield ("w", self._body_addr(i, 4))
        yield ("b", 0)
