"""Cholesky: sparse supernodal Cholesky factorization.

The paper's input (tk29.O) is a sparse SPD matrix.  We generate a seeded
sparse SPD *pattern* (banded plus random off-band entries), run a genuine
**symbolic factorization** — column structures with fill-in, the
elimination tree, supernode grouping — and then drive the simulated
numeric factorization from that structure:

* panels (supernodes) are eliminated wavefront by wavefront up the
  elimination tree (independent panels within a level, a shared task
  queue per level — dynamic scheduling is what makes Cholesky's panels
  *migratory*: whoever grabs the task pulls the panel to its node);
* a factored panel scatters right-looking updates into every ancestor
  panel its column structure reaches, under the ancestor's lock.

``networkx`` computes the elimination-tree levels (longest path from a
leaf), exactly the dependency analysis a real solver performs.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx
import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register


@register
class CholeskyWorkload(Workload):
    name = "cholesky"
    description = "Sparse matrix factorization"
    paper_working_set_mb = 40.5  # tk29.O in the paper
    #: lock 0 = task queue; locks 1.. guard panels (hashed).
    n_locks = 9
    n_barriers = 1

    band = 5
    extra_per_col = 3
    max_supernode = 8

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n_cols = int(224 * scale)

    # ------------------------------------------------------------------
    # symbolic factorization
    # ------------------------------------------------------------------

    def _generate_pattern(self) -> list[set[int]]:
        """Below-diagonal nonzero rows of each column (no fill yet)."""
        rng = self.rng("pattern")
        n = self.n_cols
        cols: list[set[int]] = [set() for _ in range(n)]
        for j in range(n):
            for i in range(j + 1, min(n, j + 1 + self.band)):
                cols[j].add(i)
            for _ in range(self.extra_per_col):
                lo = j + 1
                if lo < n:
                    cols[j].add(int(rng.integers(lo, n)))
        return cols

    def _symbolic(self) -> None:
        """Fill-in, elimination tree, supernodes, level schedule."""
        n = self.n_cols
        struct = self._generate_pattern()
        parent = [-1] * n
        # Standard up-looking symbolic factorization: column j's structure
        # merges into its parent (its smallest below-diagonal row index).
        for j in range(n):
            if struct[j]:
                parent[j] = min(struct[j])
                struct[parent[j]] |= {i for i in struct[j] if i > parent[j]}
        self.col_struct = struct
        self.etree_parent = parent

        # Supernodes: maximal runs of consecutive columns forming a chain
        # in the elimination tree with compatible structure sizes.
        self.panel_cols: list[list[int]] = []
        j = 0
        while j < n:
            run = [j]
            while (
                len(run) < self.max_supernode
                and run[-1] + 1 < n
                and parent[run[-1]] == run[-1] + 1
                and len(struct[run[-1] + 1]) >= len(struct[run[-1]]) - 1
            ):
                run.append(run[-1] + 1)
            self.panel_cols.append(run)
            j = run[-1] + 1
        self.n_panels = len(self.panel_cols)
        self.panel_of_col = {}
        for pid, cols_ in enumerate(self.panel_cols):
            for c in cols_:
                self.panel_of_col[c] = pid

        # Panel-level dependency DAG via networkx: panel -> panel of its
        # columns' parents; levels = longest path from a leaf (wavefronts).
        dag = nx.DiGraph()
        dag.add_nodes_from(range(self.n_panels))
        for pid, cols_ in enumerate(self.panel_cols):
            p = self.etree_parent[cols_[-1]]
            if p != -1:
                tgt = self.panel_of_col[p]
                if tgt != pid:
                    dag.add_edge(pid, tgt)
        assert nx.is_directed_acyclic_graph(dag)
        depth = {pid: 0 for pid in dag.nodes}
        for pid in nx.topological_sort(dag):
            for succ in dag.successors(pid):
                depth[succ] = max(depth[succ], depth[pid] + 1)
        self.dag = dag
        n_levels = 1 + max(depth.values(), default=0)
        self.levels: list[list[int]] = [[] for _ in range(n_levels)]
        for pid, d in depth.items():
            self.levels[d].append(pid)

        # Ancestor panels each panel updates (its columns' structures).
        self.update_targets: list[list[int]] = []
        for pid, cols_ in enumerate(self.panel_cols):
            rows = set()
            for c in cols_:
                rows |= struct[c]
            targets = sorted({self.panel_of_col[r] for r in rows} - {pid})
            self.update_targets.append(targets)

        # Panel storage: columns' below-diagonal nnz plus the diagonal.
        self.panel_nnz = [
            sum(1 + len(struct[c]) for c in cols_) for cols_ in self.panel_cols
        ]
        self.panel_off = np.zeros(self.n_panels + 1, dtype=np.int64)
        np.cumsum(self.panel_nnz, out=self.panel_off[1:])

    # ------------------------------------------------------------------
    def allocate(self, space: AddressSpace) -> None:
        self._symbolic()
        total = int(self.panel_off[-1])
        self.panels = SharedArray(space, "cholesky.panels", total, itemsize=8)
        self.queue = SharedArray(
            space, "cholesky.queue", len(self.levels) * 8, itemsize=8, dtype=np.int64
        )
        rng = self.rng("values")
        self.panels.data[:] = rng.standard_normal(total)

    # -- helpers -----------------------------------------------------------

    def _panel_addr(self, p: int, k: int) -> int:
        return self.panels.addr(int(self.panel_off[p]) + k)

    def _panel_lock(self, p: int) -> int:
        return 1 + p % (self.n_locks - 1)

    def _take_task(self, level_slot: int, n_tasks: int):
        """Pop the next task index from the level's shared counter."""
        qi = level_slot * 8
        yield ("l", 0)
        yield ("r", self.queue.addr(qi))
        t = int(self.queue.data[qi])
        if t < n_tasks:
            self.queue.data[qi] = t + 1
            yield ("w", self.queue.addr(qi))
        yield ("u", 0)
        return t

    # ------------------------------------------------------------------
    def _factor_panel(self, p: int):
        nnz = self.panel_nnz[p]
        for k in range(nnz):
            yield ("r", self._panel_addr(p, k))
        lo = int(self.panel_off[p])
        seg = self.panels.data[lo : lo + nnz]
        seg /= np.sqrt(np.abs(seg[0]) + 1.0)
        yield ("c", 8 * nnz)
        for k in range(nnz):
            yield ("w", self._panel_addr(p, k))

    def _update_panel(self, src: int, dst: int):
        """Right-looking scatter: src's outer product into dst's columns."""
        src_nnz = self.panel_nnz[src]
        dst_nnz = self.panel_nnz[dst]
        span = min(dst_nnz, max(4, src_nnz // 2))
        for k in range(0, src_nnz, 2):
            yield ("r", self._panel_addr(src, k))
        lid = self._panel_lock(dst)
        yield ("l", lid)
        lo_s, lo_d = int(self.panel_off[src]), int(self.panel_off[dst])
        data = self.panels.data
        for k in range(0, span, 2):
            yield ("r", self._panel_addr(dst, k))
            data[lo_d + k] -= 0.1 * data[lo_s + k % src_nnz] ** 2
            yield ("w", self._panel_addr(dst, k))
        yield ("c", 3 * span)
        yield ("u", lid)

    def thread(self, tid: int) -> Iterator[tuple]:
        # First touch: panels distributed over threads in contiguous runs.
        for p in self.chunk(self.n_panels, tid):
            for k in range(self.panel_nnz[p]):
                yield ("w", self._panel_addr(p, k))
            yield ("c", self.panel_nnz[p])
        if tid == 0:
            for slot in range(len(self.levels)):
                yield ("w", self.queue.addr(slot * 8))
        yield ("b", 0)
        # Eliminate wavefront by wavefront up the elimination tree.
        for slot, panels in enumerate(self.levels):
            n_tasks = len(panels)
            while True:
                t = yield from self._take_task(slot, n_tasks)
                if t >= n_tasks:
                    break
                p = panels[t]
                yield from self._factor_panel(p)
                for dst in self.update_targets[p]:
                    yield from self._update_panel(p, dst)
            yield ("b", 0)
