"""Raytrace: grid-traversal ray tracer over a shared scene (car.env-like).

The scene (spheres binned into a uniform 3-D grid) is *read-shared by all
processors*: every ray walks grid cells (3-D DDA) and intersects the
spheres listed there, with one bounce for reflective hits.  Image tiles
are distributed through a shared task queue for load balance.  The shared
scene structure makes Raytrace replication-hungry — one of the paper's
Figure-4 applications whose traffic blows up from AM conflict misses at
87.5 % memory pressure.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

_SPHERE_FIELDS = 8  # center(3) radius reflect pad -> one line
_CELL_CAP = 6


@register
class RaytraceWorkload(Workload):
    name = "raytrace"
    description = "hierarchical ray tracing"
    paper_working_set_mb = 36.0  # car.env -a1 in the paper
    n_locks = 1  # task queue
    n_barriers = 1

    grid_dim = 12
    tile = 8

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        # Image edge rounded to whole tiles so the task queue covers it.
        self.image_dim = max(self.tile, int(64 * math.sqrt(scale)) // self.tile * self.tile)
        self.n_spheres = int(192 * scale)

    def allocate(self, space: AddressSpace) -> None:
        g = self.grid_dim
        self.spheres = SharedArray(
            space, "raytrace.spheres", self.n_spheres * _SPHERE_FIELDS, itemsize=8
        )
        # Per-cell occupant lists: count + sphere ids.
        self.grid = SharedArray(
            space, "raytrace.grid", g * g * g * (_CELL_CAP + 1), itemsize=8, dtype=np.int64
        )
        self.image = SharedArray(
            space, "raytrace.image", self.image_dim * self.image_dim, itemsize=8
        )
        self.queue = SharedArray(space, "raytrace.queue", 8, itemsize=8, dtype=np.int64)
        rng = self.rng("scene")
        self.centers = rng.random((self.n_spheres, 3))
        self.radii = 0.02 + 0.05 * rng.random(self.n_spheres)
        self.reflective = rng.random(self.n_spheres) < 0.3
        # Bin spheres into grid cells (by center; radius spill ignored for
        # the structure, compensated by testing neighbours' occupants).
        self.cell_lists: dict[int, list[int]] = {}
        for s in range(self.n_spheres):
            c = self._cell_of(self.centers[s])
            self.cell_lists.setdefault(c, []).append(s)

    # -- geometry ----------------------------------------------------------

    def _cell_of(self, p) -> int:
        g = self.grid_dim
        x = min(g - 1, int(p[0] * g))
        y = min(g - 1, int(p[1] * g))
        z = min(g - 1, int(p[2] * g))
        return (x * g + y) * g + z

    def _cell_addr(self, cell: int, slot: int = 0) -> int:
        return self.grid.addr(cell * (_CELL_CAP + 1) + slot)

    def _sphere_addr(self, s: int, f: int = 0) -> int:
        return self.spheres.addr(s * _SPHERE_FIELDS + f)

    def _intersect(self, origin, direction, s: int) -> Optional[float]:
        oc = origin - self.centers[s]
        b = float(np.dot(oc, direction))
        c = float(np.dot(oc, oc)) - self.radii[s] ** 2
        disc = b * b - c
        if disc < 0:
            return None
        t = -b - math.sqrt(disc)
        return t if t > 1e-6 else None

    def _trace(self, origin, direction, depth: int):
        """DDA walk through the grid; emits scene reads, returns hit id."""
        g = self.grid_dim
        pos = origin.copy()
        step = direction / (np.max(np.abs(direction)) * g) * 0.9
        best: Optional[tuple[float, int]] = None
        seen_cells = set()
        for _ in range(3 * g):
            if not ((0 <= pos) & (pos < 1)).all():
                break
            cell = self._cell_of(pos)
            if cell not in seen_cells:
                seen_cells.add(cell)
                yield ("r", self._cell_addr(cell, 0))
                for s in self.cell_lists.get(cell, [])[:_CELL_CAP]:
                    yield ("r", self._cell_addr(cell, 1))
                    yield ("r", self._sphere_addr(s, 0))
                    yield ("r", self._sphere_addr(s, 3))
                    yield ("c", 30)
                    t = self._intersect(origin, direction, s)
                    if t is not None and (best is None or t < best[0]):
                        best = (t, s)
            if best is not None:
                break
            pos = pos + step
        if best is not None and depth > 0 and self.reflective[best[1]]:
            # One reflection bounce.
            hit = origin + best[0] * direction
            normal = hit - self.centers[best[1]]
            normal = normal / (np.linalg.norm(normal) + 1e-12)
            refl = direction - 2 * float(np.dot(direction, normal)) * normal
            yield ("c", 40)
            yield from self._trace(hit + 1e-3 * normal, refl, depth - 1)
        return best[1] if best is not None else -1

    def _take_task(self, n_tasks: int):
        yield ("l", 0)
        yield ("r", self.queue.addr(0))
        t = int(self.queue.data[0])
        if t < n_tasks:
            self.queue.data[0] = t + 1
            yield ("w", self.queue.addr(0))
        yield ("u", 0)
        return t

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        g = self.grid_dim
        # First touch: scene structures built by their owners.
        for s in self.chunk(self.n_spheres, tid):
            for f in range(_SPHERE_FIELDS):
                yield ("w", self._sphere_addr(s, f))
            yield ("c", 12)
        for cell in self.chunk(g * g * g, tid):
            yield ("w", self._cell_addr(cell, 0))
            for k, _s in enumerate(self.cell_lists.get(cell, [])[:_CELL_CAP]):
                yield ("w", self._cell_addr(cell, 1 + k))
        if tid == 0:
            yield ("w", self.queue.addr(0))
        yield ("b", 0)

        dim = self.image_dim
        tiles_per_row = dim // self.tile
        n_tasks = tiles_per_row * tiles_per_row
        eye = np.array([0.5, 0.5, -1.0])
        while True:
            t = yield from self._take_task(n_tasks)
            if t >= n_tasks:
                break
            ty, tx = divmod(t, tiles_per_row)
            for py in range(ty * self.tile, (ty + 1) * self.tile):
                for px in range(tx * self.tile, (tx + 1) * self.tile):
                    target = np.array([px / dim, py / dim, 0.5])
                    d = target - eye
                    d = d / np.linalg.norm(d)
                    hit = yield from self._trace(np.array([px / dim, py / dim, 0.0]), d, 1)
                    self.image.data[py * dim + px] = float(hit)
                    yield ("w", self.image.addr(py * dim + px))
                    yield ("c", 25)
        yield ("b", 0)
