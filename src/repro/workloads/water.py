"""Water: molecular dynamics of water molecules, in both SPLASH-2 variants.

Both variants carry the smallest working sets of the suite (Table 1: 1 MB
and 1.7 MB at full scale) and spend almost all their time inside the node,
which is why the paper notes "For Water not much can be done, since it
already spends almost all its time inside the node".

* ``water_n2`` — the O(n^2) variant: every pair of molecules interacts
  each step; forces accumulate into per-molecule accumulators guarded by
  per-partition locks.
* ``water_sp`` — the spatial variant: molecules live in a 3-D cell grid
  ("larger data structure") and only neighbouring cells interact.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

#: Simulated fields per molecule: position(3), velocity(3), force(3),
#: plus intra-molecular state — 16 doubles = 2 cache lines.
_MOL_FIELDS = 16


class _WaterBase(Workload):
    n_barriers = 1
    iterations = 2

    #: Auxiliary per-molecule state (predictor/corrector derivatives etc.)
    #: touched only by the owner — most of the molecule record's footprint,
    #: as in the real code where the pair loop reads only the positions.
    _AUX_FIELDS = 48

    def _alloc_molecules(self, space: AddressSpace, n_mol: int, tag: str) -> None:
        self.n_mol = n_mol
        self.mol = SharedArray(space, f"{tag}.mol", n_mol * _MOL_FIELDS, itemsize=8)
        self.aux = SharedArray(space, f"{tag}.aux", n_mol * self._AUX_FIELDS, itemsize=8)
        rng = self.rng("positions")
        self.box = 1.0
        pos = rng.random((n_mol, 3))
        for i in range(n_mol):
            self.mol.data[i * _MOL_FIELDS : i * _MOL_FIELDS + 3] = pos[i]
        self.pos = pos

    def _mol_addr(self, i: int, field: int) -> int:
        return self.mol.addr(i * _MOL_FIELDS + field)

    def _read_mol(self, i: int):
        """Read a molecule's position (one line's worth of fields)."""
        yield ("r", self._mol_addr(i, 0))
        yield ("r", self._mol_addr(i, 1))
        yield ("r", self._mol_addr(i, 2))

    def _accumulate_force(self, i: int):
        # Forces live on the molecule's second line (the SPLASH-2 code
        # keeps F in separate sub-arrays), so accumulation does not
        # invalidate readers of the position line.
        yield ("r", self._mol_addr(i, 8))
        yield ("w", self._mol_addr(i, 8))

    def _intra_step(self, tid: int):
        """Intra-molecular work on owned molecules (predict/correct)."""
        for i in self.chunk(self.n_mol, tid):
            for f in range(0, _MOL_FIELDS, 2):
                yield ("r", self._mol_addr(i, f))
            base = i * self._AUX_FIELDS
            for f in range(0, self._AUX_FIELDS, 8):  # one access per line
                yield ("r", self.aux.addr(base + f))
                yield ("w", self.aux.addr(base + f))
            yield ("c", 220)
            for f in (0, 1, 2, 3, 4, 5):
                yield ("w", self._mol_addr(i, f))

    def _first_touch(self, tid: int):
        for i in self.chunk(self.n_mol, tid):
            for f in range(_MOL_FIELDS):
                yield ("w", self._mol_addr(i, f))
            base = i * self._AUX_FIELDS
            for f in range(0, self._AUX_FIELDS, 8):
                yield ("w", self.aux.addr(base + f))
            yield ("c", 40)
        yield ("b", 0)


@register
class WaterN2Workload(_WaterBase):
    name = "water_n2"
    description = "molecular dyn. N-body, O(n2)"
    paper_working_set_mb = 1.0  # 512 molecules in the paper
    n_locks = 16

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self._n = int(120 * math.sqrt(scale))

    def allocate(self, space: AddressSpace) -> None:
        self._alloc_molecules(space, self._n, "water_n2")

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        n = self.n_mol
        for _ in range(self.iterations):
            yield from self._intra_step(tid)
            yield ("b", 0)
            # Pairwise forces, balanced as in the SPLASH-2 code: each
            # owned molecule interacts with the next n/2 molecules
            # cyclically, so every molecule has the same partner count.
            # Contributions accumulate into thread-private arrays...
            half = n // 2
            for i in self.chunk(n, tid):
                yield from self._read_mol(i)
                for k in range(1, half + 1):
                    j = (i + k) % n
                    yield from self._read_mol(j)
                    yield ("c", 360)  # O-O, O-H, H-H pair terms (9 distances + sqrt)
            yield ("b", 0)
            # ... and are merged into the shared per-molecule force
            # accumulators under per-partition locks.
            for j in range(n):
                lid = j % self.n_locks
                yield ("l", lid)
                yield from self._accumulate_force(j)
                yield ("u", lid)
            yield ("b", 0)
            yield from self._intra_step(tid)
            yield ("b", 0)


@register
class WaterSpWorkload(_WaterBase):
    name = "water_sp"
    description = "molecular dyn. N-body, O(n), larger data structure"
    paper_working_set_mb = 1.7
    n_locks = 16

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.cells_per_dim = max(3, int(4 * scale ** (1 / 3)))
        # ~8 molecules per cell, like the SPLASH-2 density.
        self._n = 8 * self.cells_per_dim ** 3

    def allocate(self, space: AddressSpace) -> None:
        self._alloc_molecules(space, self._n, "water_sp")
        c = self.cells_per_dim
        # Cell list structure: per cell a fixed-capacity molecule list
        # (the "larger data structure" of Table 1).
        self.cell_cap = 16
        self.cells = SharedArray(
            space, "water_sp.cells", c * c * c * self.cell_cap, itemsize=8, dtype=np.int64
        )
        self.cell_count = SharedArray(
            space, "water_sp.count", c * c * c, itemsize=8, dtype=np.int64
        )
        # Precompute a static assignment of molecules to cells.
        self.mol_cell = [
            (
                min(c - 1, int(self.pos[i][0] * c)),
                min(c - 1, int(self.pos[i][1] * c)),
                min(c - 1, int(self.pos[i][2] * c)),
            )
            for i in range(self._n)
        ]

    def _cell_idx(self, x: int, y: int, z: int) -> int:
        c = self.cells_per_dim
        return (x * c + y) * c + z

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        c = self.cells_per_dim
        n = self.n_mol
        # Build the cell lists: owners insert their molecules.
        for i in self.chunk(n, tid):
            ci = self._cell_idx(*self.mol_cell[i])
            lid = ci % self.n_locks
            yield ("l", lid)
            yield ("r", self.cell_count.addr(ci))
            cnt = int(self.cell_count.data[ci])
            if cnt < self.cell_cap:
                self.cells.data[ci * self.cell_cap + cnt] = i
                self.cell_count.data[ci] = cnt + 1
                yield ("w", self.cells.addr(ci * self.cell_cap + cnt))
                yield ("w", self.cell_count.addr(ci))
            yield ("u", lid)
        yield ("b", 0)
        cell_of = {}
        for i in range(n):
            cell_of.setdefault(self.mol_cell[i], []).append(i)
        for _ in range(self.iterations):
            yield from self._intra_step(tid)
            yield ("b", 0)
            # Neighbour-cell interactions for owned molecules.
            for i in self.chunk(n, tid):
                x, y, z = self.mol_cell[i]
                yield from self._read_mol(i)
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            nx, ny, nz = x + dx, y + dy, z + dz
                            if not (0 <= nx < c and 0 <= ny < c and 0 <= nz < c):
                                continue
                            ci = self._cell_idx(nx, ny, nz)
                            yield ("r", self.cell_count.addr(ci))
                            for j in cell_of.get((nx, ny, nz), [])[:4]:
                                if j == i:
                                    continue
                                yield ("r", self.cells.addr(ci * self.cell_cap))
                                yield from self._read_mol(j)
                                yield ("c", 170)
                yield from self._accumulate_force(i)
            yield ("b", 0)
            yield from self._intra_step(tid)
            yield ("b", 0)


