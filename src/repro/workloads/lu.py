"""LU: blocked dense LU factorization, in both SPLASH-2 variants.

The n x n matrix is divided into b x b blocks owned by threads in a 2-D
round-robin scatter.  Step k factors the diagonal block, updates the
perimeter (row/column panels), then updates the trailing submatrix; the
pivot panels of step k are *read by every thread* that owns a trailing
block — a broadcast pattern that makes LU replication-hungry, which is why
the paper's LU-contig lands in the conflict-sensitive Figure-4 group.

* ``lu_contig``    — "enhanced locality": blocks are allocated
  contiguously (block-major), so a block's 64 doubles span 8 lines shared
  with nobody else.
* ``lu_noncontig`` — the original row-major allocation: a block's rows are
  strided by the full matrix row, so blocks share lines with horizontal
  neighbours (false sharing) and panel reads touch many more lines.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register


class _LuBase(Workload):
    n_locks = 0
    n_barriers = 1
    #: block-major (True) vs row-major (False) element layout
    contiguous_blocks = True

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.b = 8
        n = int(96 * np.sqrt(scale))
        self.n = max(self.b * 4, (n // self.b) * self.b)
        self.g = self.n // self.b  # blocks per dimension

    def allocate(self, space: AddressSpace) -> None:
        n = self.n
        self.a = SharedArray(space, f"{self.name}.a", n * n, itemsize=8)
        rng = self.rng("matrix")
        m = rng.standard_normal((n, n))
        # Diagonally dominant so the factorization is stable without pivoting.
        m += n * np.eye(n)
        flat = self.a.data.reshape(n, n)
        flat[:, :] = m

    # -- layout ---------------------------------------------------------

    def idx(self, i: int, j: int) -> int:
        """Element index of matrix entry (i, j) under the variant's layout."""
        if self.contiguous_blocks:
            b = self.b
            bi, ii = divmod(i, b)
            bj, jj = divmod(j, b)
            return ((bi * self.g + bj) * b + ii) * b + jj
        return i * self.n + j

    def owner(self, bi: int, bj: int) -> int:
        """2-D round-robin scatter ownership of block (bi, bj)."""
        return (bi * self.g + bj) % self.n_threads

    # -- matrix value helpers (operate on logical (i, j) coordinates) ----

    def _get(self, i: int, j: int) -> float:
        return self.a.data[self.idx(i, j)]

    def _set(self, i: int, j: int, v: float) -> None:
        self.a.data[self.idx(i, j)] = v

    # -- kernel pieces ----------------------------------------------------

    def _block_addrs(self, bi: int, bj: int):
        b = self.b
        for ii in range(bi * b, bi * b + b):
            for jj in range(bj * b, bj * b + b):
                yield self.a.addr(self.idx(ii, jj))

    def _factor_diag(self, k: int):
        """Unblocked LU of the diagonal block (owner thread only)."""
        b, lo = self.b, k * self.b
        for a in self._block_addrs(k, k):
            yield ("r", a)
        for p in range(lo, lo + b):
            piv = self._get(p, p)
            for i in range(p + 1, lo + b):
                l = self._get(i, p) / piv
                self._set(i, p, l)
                for j in range(p + 1, lo + b):
                    self._set(i, j, self._get(i, j) - l * self._get(p, j))
        yield ("c", 2 * b * b * b // 3)
        for a in self._block_addrs(k, k):
            yield ("w", a)

    def _update_panel(self, k: int, bi: int, bj: int, lower: bool):
        """Solve a perimeter block against the factored diagonal block."""
        b = self.b
        lo = k * b
        for a in self._block_addrs(k, k):  # broadcast read of the pivot block
            yield ("r", a)
        for a in self._block_addrs(bi, bj):
            yield ("r", a)
        base_i, base_j = bi * b, bj * b
        # Triangular solve, vectorized on the value side.
        blk = np.array(
            [[self._get(base_i + ii, base_j + jj) for jj in range(b)] for ii in range(b)]
        )
        diag = np.array(
            [[self._get(lo + ii, lo + jj) for jj in range(b)] for ii in range(b)]
        )
        if lower:  # column panel: solve X * U = B
            u = np.triu(diag)
            blk = np.linalg.solve(u.T, blk.T).T
        else:  # row panel: solve L * X = B
            l = np.tril(diag, -1) + np.eye(b)
            blk = np.linalg.solve(l, blk)
        for ii in range(b):
            for jj in range(b):
                self._set(base_i + ii, base_j + jj, blk[ii, jj])
        yield ("c", b * b * b)
        for a in self._block_addrs(bi, bj):
            yield ("w", a)

    def _update_interior(self, k: int, bi: int, bj: int):
        """Trailing block update: C -= L(bi,k) @ U(k,bj)."""
        b = self.b
        for a in self._block_addrs(bi, k):  # broadcast-read pivot column
            yield ("r", a)
        for a in self._block_addrs(k, bj):  # broadcast-read pivot row
            yield ("r", a)
        for a in self._block_addrs(bi, bj):
            yield ("r", a)
        base_i, base_j = bi * b, bj * b
        l = np.array(
            [[self._get(base_i + ii, k * b + jj) for jj in range(b)] for ii in range(b)]
        )
        u = np.array(
            [[self._get(k * b + ii, base_j + jj) for jj in range(b)] for ii in range(b)]
        )
        prod = l @ u
        for ii in range(b):
            for jj in range(b):
                self._set(base_i + ii, base_j + jj, self._get(base_i + ii, base_j + jj) - prod[ii, jj])
        yield ("c", 2 * b * b * b)
        for a in self._block_addrs(bi, bj):
            yield ("w", a)

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        g = self.g
        # First-touch initialization: owners write their blocks.
        for bi in range(g):
            for bj in range(g):
                if self.owner(bi, bj) == tid:
                    for a in self._block_addrs(bi, bj):
                        yield ("w", a)
                    yield ("c", self.b * self.b)
        yield ("b", 0)
        for k in range(g):
            if self.owner(k, k) == tid:
                yield from self._factor_diag(k)
            yield ("b", 0)
            for bi in range(k + 1, g):
                if self.owner(bi, k) == tid:
                    yield from self._update_panel(k, bi, k, lower=True)
            for bj in range(k + 1, g):
                if self.owner(k, bj) == tid:
                    yield from self._update_panel(k, k, bj, lower=False)
            yield ("b", 0)
            for bi in range(k + 1, g):
                for bj in range(k + 1, g):
                    if self.owner(bi, bj) == tid:
                        yield from self._update_interior(k, bi, bj)
            yield ("b", 0)


@register
class LuContigWorkload(_LuBase):
    name = "lu_contig"
    description = "Blocked LU-fact., enhanced locality"
    paper_working_set_mb = 2.0  # 512x512 in the paper
    contiguous_blocks = True


@register
class LuNoncontigWorkload(_LuBase):
    name = "lu_noncontig"
    description = "Blocked LU-factorization"
    paper_working_set_mb = 2.0
    contiguous_blocks = False
