"""Radix: the SPLASH-2 parallel integer radix sort.

Each pass histograms one digit of the keys, computes global digit offsets
(a tree reduction done here as a lock-protected merge plus a prefix pass
by thread 0), and then *permutes* the keys into the destination array.
The permutation writes are scattered across the whole destination — an
all-to-all pattern with poor spatial locality that makes radix the
paper's canonical high-write-traffic, contention-limited application
(it is one of the two that keep degrading under clustering in Figure 5).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register


@register
class RadixWorkload(Workload):
    name = "radix"
    description = "integer sorting"
    paper_working_set_mb = 16.5  # 2M keys, radix 1024 in the paper
    n_locks = 0
    n_barriers = 1

    radix_bits = 8

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n = int(24576 * scale)
        self.buckets = 1 << self.radix_bits
        self.passes = 2  # 16-bit keys

    def allocate(self, space: AddressSpace) -> None:
        n = self.n
        self.keys = SharedArray(space, "radix.keys", n, itemsize=8, dtype=np.int64)
        self.out = SharedArray(space, "radix.out", n, itemsize=8, dtype=np.int64)
        # Per-thread digit histograms plus the global prefix array.
        self.hist = SharedArray(
            space,
            "radix.hist",
            self.buckets * (self.n_threads + 1),
            itemsize=8,
            dtype=np.int64,
        )
        rng = self.rng("keys")
        self.init_keys = rng.integers(
            0, 1 << (self.radix_bits * self.passes), size=n, dtype=np.int64
        )

    # ------------------------------------------------------------------
    def _hist_idx(self, tid: int, digit: int) -> int:
        return tid * self.buckets + digit

    def _global_idx(self, digit: int) -> int:
        return self.n_threads * self.buckets + digit

    def thread(self, tid: int) -> Iterator[tuple]:
        n, buckets = self.n, self.buckets
        mine = self.chunk(n, tid)
        # First touch of the owned key slices.
        for i in mine:
            self.keys.data[i] = self.init_keys[i]
            yield ("w", self.keys.addr(i))
        yield ("c", 2 * len(mine))
        yield ("b", 0)

        src, dst = self.keys, self.out
        for p in range(self.passes):
            shift = p * self.radix_bits
            # Local histogram over the owned slice of the source.
            local = np.zeros(buckets, dtype=np.int64)
            for i in mine:
                yield ("r", src.addr(i))
                local[(int(src.data[i]) >> shift) & (buckets - 1)] += 1
            yield ("c", 4 * len(mine))
            for d in range(buckets):
                self.hist.data[self._hist_idx(tid, d)] = local[d]
                yield ("w", self.hist.addr(self._hist_idx(tid, d)))
            yield ("b", 0)

            # Thread 0 computes global offsets: rank order is (digit,
            # thread) so each thread's write region is contiguous per digit.
            if tid == 0:
                offset = 0
                for d in range(buckets):
                    for t in range(self.n_threads):
                        yield ("r", self.hist.addr(self._hist_idx(t, d)))
                        cnt = int(self.hist.data[self._hist_idx(t, d)])
                        self.hist.data[self._hist_idx(t, d)] = offset
                        yield ("w", self.hist.addr(self._hist_idx(t, d)))
                        offset += cnt
                yield ("c", 3 * buckets * self.n_threads)
            yield ("b", 0)

            # Permutation: scattered writes into the destination array.
            cursor = {
                d: int(self.hist.data[self._hist_idx(tid, d)]) for d in range(buckets)
            }
            for d in range(buckets):
                yield ("r", self.hist.addr(self._hist_idx(tid, d)))
            for i in mine:
                yield ("r", src.addr(i))
                key = int(src.data[i])
                d = (key >> shift) & (buckets - 1)
                pos = cursor[d]
                cursor[d] = pos + 1
                dst.data[pos] = key
                yield ("w", dst.addr(pos))
            yield ("c", 6 * len(mine))
            yield ("b", 0)
            src, dst = dst, src

        # Verify sortedness of the owned slice (reads, cheap).
        for i in mine[: len(mine) : 8]:
            yield ("r", src.addr(i))
        yield ("c", len(mine) // 4)
        yield ("b", 0)
