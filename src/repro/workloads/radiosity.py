"""Radiosity: iterative hierarchical radiosity light distribution.

Patches of a scene exchange light along a (precomputed, visibility-pruned)
interaction graph.  Each sweep, workers pull patch tasks from a shared
queue and *gather*: they read the radiosity of every patch visible from
their patch — a highly irregular read-shared pattern over the whole scene,
which is why Radiosity sits in the paper's conflict-sensitive Figure-4
group.  Bright patches subdivide after the first sweep, growing the task
set (the adaptive refinement of the real application, in miniature).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import register

#: Doubles per patch: geometry(8) + radiosity + unshot + area + pad = 16.
_PATCH_FIELDS = 16


@register
class RadiosityWorkload(Workload):
    name = "radiosity"
    description = "Light distribution"
    paper_working_set_mb = 29.0  # -room -batch in the paper
    n_locks = 1  # lock 0 = task queue (patch fields are double-buffered)
    n_barriers = 1

    sweeps = 3
    avg_degree = 40

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n_patches = int(320 * scale)
        self.max_patches = self.n_patches + self.n_patches // 2

    def allocate(self, space: AddressSpace) -> None:
        self.patches = SharedArray(
            space, "radiosity.patches", self.max_patches * _PATCH_FIELDS, itemsize=8
        )
        self.queue = SharedArray(space, "radiosity.queue", 8, itemsize=8, dtype=np.int64)
        # Form-factor interaction lists in simulated memory.
        rng = self.rng("visibility")
        self.vis: list[list[int]] = []
        for p in range(self.max_patches):
            deg = max(4, int(rng.poisson(self.avg_degree)))
            others = rng.choice(self.n_patches, size=min(deg, self.n_patches - 1), replace=False)
            self.vis.append([int(o) for o in others if o != p])
        total_edges = sum(len(v) for v in self.vis)
        self.ff = SharedArray(space, "radiosity.ff", total_edges, itemsize=8)
        self.vis_offset: list[int] = []
        off = 0
        for v in self.vis:
            self.vis_offset.append(off)
            off += len(v)
        self.patches.data[0 :: _PATCH_FIELDS] = rng.random(self.max_patches)
        self.ff.data[:] = rng.random(total_edges) / self.avg_degree
        #: number of live patches (grows by subdivision); Python-side copy
        #: of the shared counter semantics, deterministic across threads.
        self.live = self.n_patches
        self._subdivided = False

    # -- helpers -----------------------------------------------------------

    def _patch_addr(self, p: int, f: int = 0) -> int:
        return self.patches.addr(p * _PATCH_FIELDS + f)

    def _take_task(self, n_tasks: int):
        yield ("l", 0)
        yield ("r", self.queue.addr(0))
        t = int(self.queue.data[0])
        if t < n_tasks:
            self.queue.data[0] = t + 1
            yield ("w", self.queue.addr(0))
        yield ("u", 0)
        return t

    def _gather(self, p: int):
        """Gather radiosity into patch ``p`` from its visible set.

        Jacobi-style double buffering: the sweep reads every patch's
        *published* radiosity (field 8, written last sweep) and stores
        the new value into the staging field 9.  Field 8 is read-shared
        for the whole sweep and field 9 has a single writer (the task
        queue hands out each patch exactly once), so the gather needs no
        patch locks — a barrier-separated flip publishes 9 -> 8.
        """
        yield ("r", self._patch_addr(p, 0))
        off = self.vis_offset[p]
        total = 0.0
        for k, q in enumerate(self.vis[p]):
            yield ("r", self.ff.addr(off + k))
            yield ("r", self._patch_addr(q, 8))  # q's published radiosity
            total += self.ff.data[off + k] * self.patches.data[q * _PATCH_FIELDS + 8]
            yield ("c", 6)
        yield ("r", self._patch_addr(p, 8))
        self.patches.data[p * _PATCH_FIELDS + 9] = (
            0.5 * self.patches.data[p * _PATCH_FIELDS + 8] + 0.5 * total
        )
        yield ("w", self._patch_addr(p, 9))

    def _subdivide(self):
        """Split the brightest patches (adds work for later sweeps)."""
        if self._subdivided:
            return []
        self._subdivided = True
        rad = self.patches.data[8 :: _PATCH_FIELDS][: self.n_patches]
        order = np.argsort(rad)[::-1]
        new_ids = []
        for p in order[: self.max_patches - self.n_patches]:
            child = self.live
            if child >= self.max_patches:
                break
            self.vis[child] = list(self.vis[int(p)])
            self.vis_offset[child] = self.vis_offset[int(p)]
            self.live += 1
            new_ids.append(child)
        return new_ids

    # ------------------------------------------------------------------
    def thread(self, tid: int) -> Iterator[tuple]:
        # First touch: patch and form-factor slices.
        for p in self.chunk(self.n_patches, tid):
            for f in range(_PATCH_FIELDS):
                yield ("w", self._patch_addr(p, f))
            off = self.vis_offset[p]
            for k in range(len(self.vis[p])):
                yield ("w", self.ff.addr(off + k))
            yield ("c", 30)
        if tid == 0:
            yield ("w", self.queue.addr(0))
        yield ("b", 0)
        for sweep in range(self.sweeps):
            n_tasks = self.live
            done: list[int] = []
            while True:
                t = yield from self._take_task(n_tasks)
                if t >= n_tasks:
                    break
                yield from self._gather(t)
                done.append(t)
                yield ("c", 20)
            yield ("b", 0)
            # Flip phase: publish the staged radiosity (field 9 -> 8)
            # for the patches this thread gathered.  One writer per
            # patch; the barriers order it against every gather read.
            for p in done:
                yield ("r", self._patch_addr(p, 9))
                self.patches.data[p * _PATCH_FIELDS + 8] = self.patches.data[
                    p * _PATCH_FIELDS + 9
                ]
                yield ("w", self._patch_addr(p, 8))
            yield ("b", 0)
            if tid == 0:
                # Reset the queue and subdivide bright patches once.
                for child in self._subdivide():
                    for f in range(_PATCH_FIELDS):
                        yield ("w", self._patch_addr(child, f))
                self.queue.data[0] = 0
                yield ("w", self.queue.addr(0))
            yield ("b", 0)
