"""SPLASH-2-like workloads driving the program-driven simulation.

Each workload is a genuine parallel kernel: it allocates arrays in the
simulated shared address space, runs real computation on real data (kept
on the Python side), and emits the resulting loads/stores/synchronization
as events.  See DESIGN.md section 4 for the per-application mapping to the
paper's Table 1.
"""

from repro.workloads.base import SharedArray, Workload
from repro.workloads.registry import (
    register,
    get_workload,
    workload_names,
    paper_workloads,
)

# Import the concrete workloads so registration happens on package import.
from repro.workloads import (  # noqa: F401  (registration side effects)
    barnes,
    cholesky,
    fft,
    fmm,
    lu,
    ocean,
    radiosity,
    radix,
    raytrace,
    volrend,
    water,
)
from repro.trace import synth  # noqa: F401  (synthetic workload registration)

__all__ = [
    "SharedArray",
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "paper_workloads",
]
