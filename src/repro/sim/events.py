"""The event vocabulary emitted by workload threads.

A workload thread is a Python generator yielding plain tuples; the first
element is a one-character opcode (kept as tuples, not objects, because
the simulator dispatches hundreds of thousands of them per run):

========  =======================  =========================================
opcode    tuple                    meaning
========  =======================  =========================================
``"r"``   ``("r", addr)``          load one word at byte address ``addr``
``"w"``   ``("w", addr)``          store one word at byte address ``addr``
``"c"``   ``("c", n)``             execute ``n`` non-memory instructions
``"l"``   ``("l", lock_id)``       acquire lock ``lock_id``
``"u"``   ``("u", lock_id)``       release lock ``lock_id``
``"b"``   ``("b", barrier_id)``    sense-reversing barrier
========  =======================  =========================================

The helper constructors below exist for readability in non-hot workload
code; hot loops yield the tuples directly.
"""

from __future__ import annotations

EV_READ = "r"
EV_WRITE = "w"
EV_COMPUTE = "c"
EV_LOCK = "l"
EV_UNLOCK = "u"
EV_BARRIER = "b"


def read(addr: int) -> tuple[str, int]:
    return (EV_READ, addr)


def write(addr: int) -> tuple[str, int]:
    return (EV_WRITE, addr)


def compute(n_instructions: int) -> tuple[str, int]:
    return (EV_COMPUTE, n_instructions)


def lock(lock_id: int) -> tuple[str, int]:
    return (EV_LOCK, lock_id)


def unlock(lock_id: int) -> tuple[str, int]:
    return (EV_UNLOCK, lock_id)


def barrier(barrier_id: int) -> tuple[str, int]:
    return (EV_BARRIER, barrier_id)
