"""Result container for one simulation run.

Everything the experiment harness needs is serializable to/from plain
dicts so runs can be cached on disk (see ``repro.experiments.runner``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.timing.accounting import STALL_CATEGORIES

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine
    from repro.cpu.processor import Processor


@dataclass
class SimulationResult:
    """Metrics of one run."""

    elapsed_ns: int
    counters: dict[str, int]
    traffic_bytes: dict[str, int]
    traffic_counts: dict[str, int]
    #: Per-processor stall breakdowns (ns), category -> value.
    stalls: list[dict[str, int]]
    allocated_bytes: int
    touched_bytes: int
    bus_utilization: float
    config_summary: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        machine: "ComaMachine",
        procs: "list[Processor]",
        elapsed_ns: int,
    ) -> "SimulationResult":
        cfg = machine.config
        hierarchy = {}
        if hasattr(machine, "group_bus_bytes"):
            # Hierarchical machine: machine.bus is the top bus; surface
            # the per-level split so results capture both.
            hierarchy = {
                "top_bus_bytes": machine.top_bus_bytes,
                "group_bus_bytes": machine.group_bus_bytes,
                "n_groups": machine.n_groups,
            }
        return cls(
            elapsed_ns=elapsed_ns,
            counters=machine.counters.as_dict(),
            traffic_bytes={k.value: v for k, v in machine.bus.tx_bytes.items()},
            traffic_counts={k.value: v for k, v in machine.bus.tx_count.items()},
            stalls=[p.acct.as_dict() for p in procs],
            allocated_bytes=machine.space.allocated_bytes,
            touched_bytes=machine.space.touched_bytes,
            bus_utilization=machine.bus.utilization(elapsed_ns),
            config_summary={
                "n_processors": cfg.n_processors,
                "procs_per_node": cfg.procs_per_node,
                "memory_pressure": float(cfg.memory_pressure),
                "am_assoc": cfg.am_assoc,
                "am_bytes_per_node": cfg.am_bytes_per_node,
                "slc_bytes": cfg.slc_bytes,
                "l1_bytes": cfg.l1_bytes,
                "dram_bandwidth_factor": cfg.timing.dram_bandwidth_factor,
                "nc_bandwidth_factor": cfg.timing.nc_bandwidth_factor,
                "bus_bandwidth_factor": cfg.timing.bus_bandwidth_factor,
                "inclusive": cfg.inclusive,
                **hierarchy,
            },
        )

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def reads(self) -> int:
        return self.counters["reads"]

    @property
    def read_node_miss_rate(self) -> float:
        """RNMr: "the fraction of all reads the processors perform that
        result in node misses" (paper section 4.1)."""
        reads = self.counters["reads"]
        return self.counters["node_read_misses"] / reads if reads else 0.0

    @property
    def total_traffic_bytes(self) -> int:
        return sum(self.traffic_bytes.values())

    @property
    def mean_stalls(self) -> dict[str, float]:
        """Per-category time averaged over processors (ns)."""
        n = max(1, len(self.stalls))
        return {
            c: sum(s[c] for s in self.stalls) / n for c in STALL_CATEGORIES
        }

    @property
    def miss_class_fractions(self) -> dict[str, float]:
        total = max(
            1,
            self.counters["read_miss_cold"]
            + self.counters["read_miss_coherence"]
            + self.counters["read_miss_conflict"]
            + self.counters["read_miss_capacity"],
        )
        return {
            k: self.counters[f"read_miss_{k}"] / total
            for k in ("cold", "coherence", "conflict", "capacity")
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "elapsed_ns": self.elapsed_ns,
            "counters": self.counters,
            "traffic_bytes": self.traffic_bytes,
            "traffic_counts": self.traffic_counts,
            "stalls": self.stalls,
            "allocated_bytes": self.allocated_bytes,
            "touched_bytes": self.touched_bytes,
            "bus_utilization": self.bus_utilization,
            "config_summary": self.config_summary,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SimulationResult":
        return cls(**d)
