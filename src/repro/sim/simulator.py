"""The conservative event-ordered simulation loop.

Each processor owns a clock; the loop always advances the processor with
the minimum clock, pulling events from its workload generator, so requests
reach every contended resource in non-decreasing time order (see
``repro.timing.resource``).  Synchronization is orchestrated here: lock
waiters and barrier parties block (leave the ready heap) and are woken by
the releasing processor with the appropriate memory traffic charged.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.common.errors import ReproError, SimulationError
from repro.cpu.processor import Processor
from repro.sim.events import (
    EV_BARRIER,
    EV_COMPUTE,
    EV_LOCK,
    EV_READ,
    EV_UNLOCK,
    EV_WRITE,
)
from repro.sim.results import SimulationResult
from repro.obs.timeline import CompositeProfiler
from repro.sync.primitives import SimBarrier, SimLock, SyncSpace

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine


class Simulation:
    """Couples workload threads to a :class:`ComaMachine`."""

    def __init__(
        self,
        machine: "ComaMachine",
        programs: Sequence[Iterator],
        sync: Optional[SyncSpace] = None,
        max_events: int = 200_000_000,
        check_every: int = 0,
        profiler=None,
        profile_every: int = 5000,
        observers: Sequence = (),
    ) -> None:
        if len(programs) > machine.config.n_processors:
            raise SimulationError(
                f"{len(programs)} threads > {machine.config.n_processors} processors"
            )
        self.machine = machine
        self.sync = sync
        #: Set by the runner; lets attached analyses (the coherence
        #: sanitizer) read the workload's sharing declarations.
        self.workload = None
        self.max_events = max_events
        self.check_every = check_every
        self.profiler = None
        self.profile_every = profile_every
        #: :class:`repro.obs.metrics.SimInstruments` when a registry is
        #: attached; None keeps the kernel allocation-free.
        self.metrics = None
        if profiler is not None:
            self.attach(profiler, every=profile_every)
        for obs in observers:
            self.attach(obs)
        timing = machine.config.timing
        coalesce = machine.config.write_buffer_coalescing
        self.procs = [
            Processor(pid, timing, prog, wb_coalescing=coalesce)
            for pid, prog in enumerate(programs)
        ]
        #: Sequential consistency stalls the processor on every write.
        self._sc = machine.config.consistency == "sc"
        self._shift = machine.config.line_shift
        self.n_participants = len(self.procs)
        self._heap: list[tuple[int, int]] = []
        self.events_processed = 0

    # ------------------------------------------------------------------
    def attach(self, observer, every: Optional[int] = None) -> None:
        """Attach an observer through the one uniform path.

        Every observer kind hangs off the simulation the same way:
        objects exposing ``attach_to(sim, every=)`` wire themselves in
        (trace sinks tee onto ``machine.trace``, a
        :class:`~repro.obs.metrics.MetricsRegistry` builds its pre-bound
        instrument bundles); anything exposing ``sample(machine)``
        registers as a sampling profiler, merged into a
        :class:`~repro.obs.timeline.CompositeProfiler` when one is
        already attached.  ``every`` overrides the sampling interval for
        profilers and is forwarded to ``attach_to`` hooks.
        """
        hook = getattr(observer, "attach_to", None)
        if hook is not None:
            hook(self, every=every)
            return
        if hasattr(observer, "sample"):
            if every is not None:
                self.profile_every = every
            if self.profiler is None:
                self.profiler = observer
            elif isinstance(self.profiler, CompositeProfiler):
                self.profiler.profilers.append(observer)
            else:
                self.profiler = CompositeProfiler([self.profiler, observer])
            return
        raise SimulationError(
            f"cannot attach {type(observer).__name__}: it exposes neither "
            "attach_to(sim, every=) nor sample(machine)"
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run every thread to completion and collect the results.

        If the run dies (deadlock, protocol invariant violation, event
        budget) and a trace sink is attached, the sink's
        ``on_simulation_error`` hook fires — the flight recorder uses it
        to dump the last events before the crash — and the rendered dump
        (if any) is attached to the exception as ``flight_dump``.
        """
        try:
            heap = self._heap
            for p in self.procs:
                heapq.heappush(heap, (p.clock, p.pid))
            while heap:
                clock, pid = heapq.heappop(heap)
                p = self.procs[pid]
                if p.done or p.blocked or p.clock != clock:
                    continue  # stale entry
                self._advance(p)
            self._check_finished()
        except (AssertionError, ReproError) as exc:
            trace = getattr(self.machine, "trace", None)
            if trace is not None:
                dump = trace.on_simulation_error(exc)
                spans = getattr(self.machine, "spans", None)
                if spans is not None and spans.open:
                    stack = spans.open_stack_text()
                    dump = f"{dump}\n{stack}" if dump else stack
                exc.flight_dump = dump
            raise
        return self._collect()

    def _advance(self, p: Processor) -> None:
        """Run ``p`` until it blocks, finishes, or passes the next clock."""
        heap = self._heap
        program = p.program
        assert program is not None
        while True:
            try:
                ev = next(program)
            except StopIteration:
                p.done = True
                now, stall = p.wb.drain(p.clock)
                p.acct.write += stall
                p.clock = now
                return
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimulationError(
                    f"event budget exceeded ({self.max_events}); runaway workload?"
                )
            if self.check_every and self.events_processed % self.check_every == 0:
                self.machine.check_consistency()
            if (
                self.profiler is not None
                and self.events_processed % self.profile_every == 0
            ):
                self.profiler.sample(self.machine)
            self._dispatch(p, ev)
            if p.blocked:
                return
            if heap and p.clock > heap[0][0]:
                heapq.heappush(heap, (p.clock, p.pid))
                return

    # ------------------------------------------------------------------
    def _dispatch(self, p: Processor, ev: tuple) -> None:
        op = ev[0]
        m = self.machine
        if op == EV_READ:
            done, level = m.read(p.pid, ev[1], p.clock)
            self._charge(p, level, done - p.clock)
            p.clock = done
        elif op == EV_WRITE:
            if self._sc:
                # Sequential consistency: the store must complete before
                # the processor proceeds (the ablation's whole cost).
                done, level = m.write_stalling(p.pid, ev[1], p.clock)
                self._charge(p, level, done - p.clock)
                p.clock = done
                return
            line = ev[1] >> self._shift
            if p.wb.try_coalesce(line, p.clock):
                m.counters.wb_coalesced += 1
                return
            now, stall = p.wb.wait_for_slot(p.clock)
            if stall:
                p.acct.write += stall
            completion = m.write(p.pid, ev[1], now)
            p.wb.push(completion, line)
            p.clock = now
        elif op == EV_COMPUTE:
            ns = m.timing.instructions_ns(ev[1])
            p.acct.busy += ns
            p.clock += ns
        elif op == EV_LOCK:
            self._acquire(p, self._lock(ev[1]))
        elif op == EV_UNLOCK:
            self._release(p, self._lock(ev[1]))
        elif op == EV_BARRIER:
            self._barrier(p, self._barrier_obj(ev[1]))
        else:
            raise SimulationError(f"unknown event opcode {op!r}")

    @staticmethod
    def _charge(p: Processor, level: str, dt: int) -> None:
        if dt <= 0:
            return
        if level == "l1":
            p.acct.busy += dt
        else:
            p.acct.add(level, dt)

    def _lock(self, lock_id: int) -> SimLock:
        if self.sync is None:
            raise SimulationError("workload uses locks but no SyncSpace was provided")
        return self.sync.lock(lock_id)

    def _barrier_obj(self, barrier_id: int) -> SimBarrier:
        if self.sync is None:
            raise SimulationError("workload uses barriers but no SyncSpace was provided")
        return self.sync.barrier(barrier_id)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def _acquire(self, p: Processor, lock: SimLock) -> None:
        if lock.holder is None:
            done, level = self.machine.rmw(p.pid, lock.addr, p.clock)
            self._charge(p, level, done - p.clock)
            p.clock = done
            lock.holder = p.pid
            self.machine.counters.lock_acquires += 1
            trace = getattr(self.machine, "trace", None)
            if trace is not None:
                trace.syncop(done, p.pid, "acquire", "lock", lock.lock_id)
        else:
            lock.waiters.append(p.pid)
            p.block()

    def _release(self, p: Processor, lock: SimLock) -> None:
        if lock.holder != p.pid:
            raise SimulationError(
                f"processor {p.pid} releasing lock {lock.lock_id} "
                f"held by {lock.holder}"
            )
        # Release consistency: drain the write buffer first.
        now, stall = p.wb.drain(p.clock)
        p.acct.write += stall
        p.clock = now
        handoff = self.machine.write(p.pid, lock.addr, p.clock)
        lock.holder = None
        trace = getattr(self.machine, "trace", None)
        if trace is not None:
            trace.syncop(p.clock, p.pid, "release", "lock", lock.lock_id)
        if lock.waiters:
            wpid = lock.waiters.popleft()
            # The release invalidated every waiter's cached copy of the
            # lock line; each spins through one refetch (traffic only).
            for other in lock.waiters:
                self.machine.read(other, lock.addr, handoff)
            done, _lvl = self.machine.rmw(wpid, lock.addr, handoff)
            lock.holder = wpid
            self.machine.counters.lock_acquires += 1
            wp = self.procs[wpid]
            wp.unblock(done)
            if trace is not None:
                trace.sync(
                    wp.clock, wpid, "lock", lock.lock_id,
                    wp.clock - wp.block_start,
                )
                trace.syncop(done, wpid, "acquire", "lock", lock.lock_id)
            if self.metrics is not None:
                self.metrics.sync_wait.labels("lock").observe(
                    wp.clock - wp.block_start
                )
            heapq.heappush(self._heap, (wp.clock, wpid))

    def _barrier(self, p: Processor, b: SimBarrier) -> None:
        # Barrier arrival is a release point.
        now, stall = p.wb.drain(p.clock)
        p.acct.write += stall
        p.clock = now
        done, level = self.machine.rmw(p.pid, b.addr, p.clock)
        self._charge(p, level, done - p.clock)
        p.clock = done
        b.arrived[p.pid] = done
        trace = getattr(self.machine, "trace", None)
        if trace is not None:
            trace.syncop(done, p.pid, "arrive", "barrier", b.barrier_id)
        if len(b.arrived) < self.n_participants:
            p.block()
            return
        # Last arriver: flip the sense and wake everyone.
        release_t = max(b.arrived.values())
        sense_done = self.machine.write(p.pid, b.addr, release_t)
        self.machine.counters.barrier_episodes += 1
        for pid2 in b.arrived:
            if pid2 == p.pid:
                continue
            q = self.procs[pid2]
            rdone, _lvl = self.machine.read(pid2, b.addr, sense_done)
            q.unblock(rdone)
            if trace is not None:
                trace.sync(
                    q.clock, pid2, "barrier", b.barrier_id,
                    q.clock - q.block_start,
                )
                trace.syncop(rdone, pid2, "depart", "barrier", b.barrier_id)
            if self.metrics is not None:
                self.metrics.sync_wait.labels("barrier").observe(
                    q.clock - q.block_start
                )
            heapq.heappush(self._heap, (q.clock, pid2))
        if sense_done > p.clock:
            p.acct.sync += sense_done - p.clock
            p.clock = sense_done
        if trace is not None:
            trace.syncop(p.clock, p.pid, "depart", "barrier", b.barrier_id)
        b.arrived.clear()
        b.generation += 1

    # ------------------------------------------------------------------
    def _check_finished(self) -> None:
        stuck = [p.pid for p in self.procs if not p.done]
        if stuck:
            raise SimulationError(
                f"simulation ended with blocked processors {stuck}; "
                "lock/barrier deadlock in the workload?"
            )

    def _collect(self) -> SimulationResult:
        elapsed = max((p.clock for p in self.procs), default=0)
        if self.metrics is not None:
            self.metrics.finish(self.events_processed, elapsed)
            if self.machine.metrics is not None:
                self.machine.metrics.finish(self.machine)
        return SimulationResult.build(self.machine, self.procs, elapsed)
