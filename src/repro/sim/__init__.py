"""Program-driven simulation kernel."""

from repro.sim.events import (
    EV_READ,
    EV_WRITE,
    EV_COMPUTE,
    EV_LOCK,
    EV_UNLOCK,
    EV_BARRIER,
    read,
    write,
    compute,
    lock,
    unlock,
    barrier,
)
from repro.sim.simulator import Simulation
from repro.sim.results import SimulationResult

__all__ = [
    "EV_READ",
    "EV_WRITE",
    "EV_COMPUTE",
    "EV_LOCK",
    "EV_UNLOCK",
    "EV_BARRIER",
    "read",
    "write",
    "compute",
    "lock",
    "unlock",
    "barrier",
    "Simulation",
    "SimulationResult",
]
