"""Closed-form models from the paper's analysis sections."""

from repro.analytic.replication import (
    replication_threshold,
    paper_thresholds,
    max_replication_degree,
)
from repro.analytic.memorypressure import (
    total_am_bytes,
    am_bytes_per_node,
    pressure_for_fill,
)

__all__ = [
    "replication_threshold",
    "paper_thresholds",
    "max_replication_degree",
    "total_am_bytes",
    "am_bytes_per_node",
    "pressure_for_fill",
]
