"""Memory-pressure arithmetic (paper section 2).

``MP = working_set / total_attraction_memory``; the OS can set it by
choosing how many physical pages back the application.  These helpers
invert the relation for machine sizing and express the paper's "a single
copy of the working set entirely fills k of the 16 attraction memories"
methodology.
"""

from __future__ import annotations

import math
from fractions import Fraction


def total_am_bytes(working_set_bytes: int, pressure: Fraction | float) -> int:
    """Total attraction memory needed for a working set at a pressure."""
    if working_set_bytes <= 0:
        raise ValueError("working set must be positive")
    p = float(pressure)
    if not 0 < p <= 1:
        raise ValueError("pressure must be in (0, 1]")
    return int(math.ceil(working_set_bytes / p))


def am_bytes_per_node(
    working_set_bytes: int, pressure: Fraction | float, n_nodes: int
) -> int:
    """Per-node attraction memory under an even split."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return total_am_bytes(working_set_bytes, pressure) // n_nodes


def pressure_for_fill(filled_nodes: int, n_nodes: int) -> Fraction:
    """The paper's methodology: the pressure at which one copy of the
    working set entirely fills ``filled_nodes`` of ``n_nodes`` AMs."""
    if not 1 <= filled_nodes <= n_nodes:
        raise ValueError("filled_nodes must be in [1, n_nodes]")
    return Fraction(filled_nodes, n_nodes)
