"""Replication-space thresholds (paper section 4.2).

"It is interesting to note that for single processor nodes with 4-way
associative attraction memories, above 76.5% MP (49/64) there is no longer
space to replicate a cache line over all the 16 nodes, while 8-way
associativity moves this threshold to 88.2% MP (113/128).  With
four-processor clusters, the corresponding levels are 81.25% MP (13/16)
and 90.6% MP (29/32)."

Derivation: consider the machine-wide ways available to one set index:
``W = n_nodes * assoc`` (every node's AM has the same geometry, so a line
maps to the same set index everywhere).  At memory pressure MP, unique
(owner) lines fill ``MP * W`` of those ways on average.  Replicating one
line into *all* nodes requires its owner way plus ``n_nodes - 1`` sharer
ways, i.e. ``n_nodes - 1`` free ways.  The threshold is therefore::

    MP* = (W - (n_nodes - 1)) / W

which reproduces all four of the paper's numbers exactly.
"""

from __future__ import annotations

from fractions import Fraction


def replication_threshold(n_nodes: int, assoc: int) -> Fraction:
    """Memory pressure above which a line cannot be replicated in every
    node of the machine."""
    if n_nodes < 1 or assoc < 1:
        raise ValueError("n_nodes and assoc must be >= 1")
    ways = n_nodes * assoc
    return Fraction(ways - (n_nodes - 1), ways)


def max_replication_degree(n_nodes: int, assoc: int, pressure: Fraction) -> int:
    """Largest number of copies of one line that fit at ``pressure``.

    Counts the owner copy; capped at ``n_nodes`` (one copy per node).
    """
    ways = n_nodes * assoc
    free = ways - int(pressure * ways)
    return max(1, min(n_nodes, free + 1))


def paper_thresholds() -> dict[str, Fraction]:
    """The four configurations quoted in section 4.2."""
    return {
        "16 nodes, 4-way": replication_threshold(16, 4),   # 49/64 = 76.5%
        "16 nodes, 8-way": replication_threshold(16, 8),   # 113/128 = 88.3%
        "4 nodes, 4-way": replication_threshold(4, 4),     # 13/16 = 81.25%
        "4 nodes, 8-way": replication_threshold(4, 8),     # 29/32 = 90.6%
    }
