"""Certifying protocol-table compiler.

The declarative E/O/S/I table in :mod:`repro.coma.protocol` is the
simulator's source of truth, but resolving it per access — a dict lookup
keyed by ``(state, event_name)`` returning a dataclass row — is
interpreter overhead on the hottest path in the system.  This module
*compiles* the table the way MemPool flattens its interconnect model:

* **states** are already small ints (I/S/O/E = 0..3);
* **events** are interned to small ints (:data:`EVENT_IDS`);
* **bus actions** are interned to small ints (:data:`ACTION_IDS`);
* the full table — including the sharer-dependent ``inject`` rows
  (``next_state_sharers``) — is flattened into one precomputed
  ``(state × event × sharers) -> next_state`` byte array plus a
  ``(state × event) -> action`` byte array.

A hot-path lookup is then two integer multiplies and an ``array``
index — no hashing, no tuple allocation, no attribute walk.

The compiler is *certifying*: :mod:`repro.analysis.certify` re-derives
every compiled entry from the source table (rules C101–C103) and replays
the PR 1 model checker's reachability graph against compiled dispatch
(C104), so a miscompiled artifact cannot silently drive a simulation.
:func:`decompile` inverts the compiled arrays back into
:class:`~repro.coma.protocol.Transition` rows for the round-trip
property test.

:func:`build_dispatch` packages everything a machine needs at build
time: the compiled protocol, the timing constants flattened from the
:class:`~repro.common.config.TimingConfig` property chain into plain
ints, and the interned victim-selection policy.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import ProtocolError
from repro.common.hotpath import hotpath
from repro.coma.protocol import EVENTS, STATES, TRANSITIONS, Transition, validate_table
from repro.coma.states import EXCLUSIVE, INVALID, SHARED, state_name
from repro.mem import soa

N_STATES = len(STATES)
N_EVENTS = len(EVENTS)

# The SoA storage layer cannot import the protocol package (it would
# close an import cycle through repro.coma.__init__), so it duplicates
# the two state codes it relies on.  Tie them together here, where both
# sides are loaded: a drift in either module fails at first compile.
assert soa.INVALID == INVALID and soa._SHARED == SHARED, (
    "repro.mem.soa state encoding diverged from repro.coma.states"
)

#: Event names interned to small ints, in table order.
EVENT_IDS: dict[str, int] = {name: i for i, name in enumerate(EVENTS)}
EV_LOCAL_READ = EVENT_IDS["local_read"]
EV_LOCAL_WRITE = EVENT_IDS["local_write"]
EV_REMOTE_READ = EVENT_IDS["remote_read"]
EV_REMOTE_WRITE = EVENT_IDS["remote_write"]
EV_EVICT = EVENT_IDS["evict"]
EV_INJECT = EVENT_IDS["inject"]

#: Bus actions interned to small ints ("" = no bus traffic).
ACTIONS: tuple[str, ...] = ("", "read", "read_excl", "upgrade", "replace")
ACTION_IDS: dict[str, int] = {name: i for i, name in enumerate(ACTIONS)}
ACT_NONE = ACTION_IDS[""]
ACT_READ = ACTION_IDS["read"]
ACT_READ_EXCL = ACTION_IDS["read_excl"]
ACT_UPGRADE = ACTION_IDS["upgrade"]
ACT_REPLACE = ACTION_IDS["replace"]

#: Compiled encoding of "transition not allowed / no copy".
NO_NEXT = -1

#: Interned victim-selection policies (see ``compile_victim_policy``).
#: The codes are owned by the storage layer: ``LineArray.victim_way``
#: dispatches on them, so they are re-exported rather than redefined.
VICTIM_LRU = soa.VICTIM_LRU
VICTIM_SHARED_FIRST = soa.VICTIM_SHARED_FIRST
VICTIM_NONINCLUSIVE = soa.VICTIM_NONINCLUSIVE


class CompiledProtocol:
    """The E/O/S/I table flattened into precomputed dispatch arrays.

    ``next_state[(state*N_EVENTS + event)*2 + sharers]`` is the resulting
    state (:data:`NO_NEXT` when the transition is not allowed), where
    ``sharers`` is 1 when other nodes still hold Shared copies after the
    event; ``action[state*N_EVENTS + event]`` is the interned bus action.
    """

    __slots__ = ("next_state", "action", "source")

    # Interned ids mirrored as class attributes so dispatch sites holding
    # only the compiled object need no module import.
    EV_LOCAL_READ = EV_LOCAL_READ
    EV_LOCAL_WRITE = EV_LOCAL_WRITE
    EV_REMOTE_READ = EV_REMOTE_READ
    EV_REMOTE_WRITE = EV_REMOTE_WRITE
    EV_EVICT = EV_EVICT
    EV_INJECT = EV_INJECT
    ACT_NONE = ACT_NONE
    ACT_READ = ACT_READ
    ACT_READ_EXCL = ACT_READ_EXCL
    ACT_UPGRADE = ACT_UPGRADE
    ACT_REPLACE = ACT_REPLACE

    def __init__(
        self,
        next_state: array,
        action: array,
        source: tuple[Transition, ...],
    ) -> None:
        self.next_state = next_state
        self.action = action
        self.source = source

    # -- hot lookups ----------------------------------------------------

    @hotpath
    def resolved_next(self, state: int, event: int, sharers_exist: bool) -> int:
        """Next state for ``(state, event)`` given surviving sharers;
        :data:`NO_NEXT` when the transition is not allowed."""
        idx = (state * N_EVENTS + event) * 2
        if sharers_exist:
            idx += 1
        return self.next_state[idx]

    @hotpath
    def action_of(self, state: int, event: int) -> int:
        """Interned bus action for ``(state, event)``."""
        return self.action[state * N_EVENTS + event]

    @hotpath
    def allowed(self, state: int, event: int) -> bool:
        """Whether the table allows ``event`` in ``state``."""
        return self.next_state[(state * N_EVENTS + event) * 2] != NO_NEXT

    # -- introspection (cold; certification and tests) ------------------

    def entry(self, state: int, event: int) -> tuple[int, int, int]:
        """``(next_alone, next_sharers, action)`` for one cell."""
        base = (state * N_EVENTS + event) * 2
        return (
            self.next_state[base],
            self.next_state[base + 1],
            self.action[state * N_EVENTS + event],
        )

    def inject_pair(self, state: int) -> tuple[int, int]:
        """``(next_without_sharers, next_with_sharers)`` for ``inject``."""
        base = (state * N_EVENTS + EV_INJECT) * 2
        return self.next_state[base], self.next_state[base + 1]


def compile_protocol(
    transitions: Sequence[Transition] = TRANSITIONS,
) -> CompiledProtocol:
    """Flatten ``transitions`` into a :class:`CompiledProtocol`.

    The source table is validated for totality first
    (:func:`~repro.coma.protocol.validate_table`), so a malformed table
    fails loudly at compile time, never at dispatch time.
    """
    validate_table(transitions)
    next_state = array("b", [NO_NEXT]) * (N_STATES * N_EVENTS * 2)
    action = array("b", [ACT_NONE]) * (N_STATES * N_EVENTS)
    for t in transitions:
        ev = EVENT_IDS[t.event]
        act = ACTION_IDS.get(t.bus_action)
        if act is None:
            raise ProtocolError(
                f"({state_name(t.state)}, {t.event}): unknown bus action "
                f"{t.bus_action!r} — cannot intern"
            )
        base = (t.state * N_EVENTS + ev) * 2
        alone = NO_NEXT if t.next_state is None else t.next_state
        shared = t.next_state_sharers if t.next_state_sharers is not None else t.next_state
        next_state[base] = alone
        next_state[base + 1] = NO_NEXT if shared is None else shared
        action[t.state * N_EVENTS + ev] = act
    return CompiledProtocol(next_state, action, tuple(transitions))


def decompile(compiled: CompiledProtocol) -> tuple[Transition, ...]:
    """Invert the compiled arrays back into table rows.

    Rows come out in canonical (state-major, event order) with empty
    ``notes``; ``next_state_sharers`` is reconstructed only where the
    sharer-dependent slot differs from the plain one — exactly the
    normal form the source table uses.  ``decompile(compile_protocol(T))``
    therefore round-trips every semantic field of ``T``.
    """
    rows = []
    for state in STATES:
        for ev, event in enumerate(EVENTS):
            alone, shared, act = compiled.entry(state, ev)
            rows.append(Transition(
                state=state,
                event=event,
                next_state=None if alone == NO_NEXT else alone,
                bus_action=ACTIONS[act],
                next_state_sharers=(
                    None if shared == alone or shared == NO_NEXT else shared
                ),
            ))
    return tuple(rows)


# ----------------------------------------------------------------------
# timing and policy interning
# ----------------------------------------------------------------------

class CompiledTiming:
    """Timing constants flattened to plain ints at machine build time.

    The :class:`~repro.common.config.TimingConfig` properties
    (``nc_busy_ns`` and friends) recompute a division per access; the
    compiled form resolves the whole attribute chain once so hot paths
    read bare ints.
    """

    __slots__ = (
        "l1_hit", "slc_hit", "slc_occ", "nc", "nc_busy",
        "dram_lat", "dram_busy", "bus_phase", "bus_busy", "remote_overhead",
    )

    def __init__(self, timing) -> None:
        self.l1_hit = timing.l1_hit_ns
        self.slc_hit = timing.slc_hit_ns
        self.slc_occ = timing.slc_occupancy_ns
        self.nc = timing.nc_ns
        self.nc_busy = timing.nc_busy_ns
        self.dram_lat = timing.dram_latency_ns
        self.dram_busy = timing.dram_busy_ns
        self.bus_phase = timing.bus_phase_ns
        self.bus_busy = timing.bus_busy_ns
        self.remote_overhead = timing.remote_overhead_ns


def compile_victim_policy(config) -> int:
    """Intern the AM victim-selection policy to a small int."""
    if config.am_victim_policy == "lru":
        return VICTIM_LRU
    return VICTIM_SHARED_FIRST if config.inclusive else VICTIM_NONINCLUSIVE


@dataclass(frozen=True)
class MachineDispatch:
    """Everything a machine binds at build time to run compiled.

    The ``st_*`` / ``act_*`` / ``inject_*`` fields are the protocol
    resolutions the executable machine dispatches through — derived from
    the compiled arrays here, and re-derived from the source table by the
    certification pass so a stale or hand-patched dispatch cannot hide.
    """

    protocol: CompiledProtocol
    timing: CompiledTiming
    victim_mode: int
    #: Supplier-side degradation after serving a remote read (E -> O).
    st_degrade_remote_read: int
    #: Interned ``local_write`` action per current state (len 4 tuple).
    act_local_write: tuple[int, ...]
    #: State taken when an upgrade completes (S/O + local_write).
    st_upgrade: int
    #: State taken when a read-exclusive miss completes (I + local_write).
    st_write_miss: int
    #: State a replica fill installs (I + local_read).
    st_read_fill: int
    #: ``(without_sharers, with_sharers)`` inject resolutions.
    inject_from_invalid: tuple[int, int]
    inject_from_shared: tuple[int, int]


def build_dispatch(
    config, transitions: Sequence[Transition] = TRANSITIONS
) -> MachineDispatch:
    """Compile the protocol, timing and policies for one machine."""
    validate_table(transitions, timing=config.timing)
    proto = compile_protocol(transitions)
    return MachineDispatch(
        protocol=proto,
        timing=CompiledTiming(config.timing),
        victim_mode=compile_victim_policy(config),
        st_degrade_remote_read=proto.resolved_next(
            EXCLUSIVE, EV_REMOTE_READ, False
        ),
        act_local_write=tuple(
            proto.action_of(s, EV_LOCAL_WRITE) for s in STATES
        ),
        st_upgrade=proto.resolved_next(SHARED, EV_LOCAL_WRITE, False),
        st_write_miss=proto.resolved_next(INVALID, EV_LOCAL_WRITE, False),
        st_read_fill=proto.resolved_next(INVALID, EV_LOCAL_READ, True),
        inject_from_invalid=proto.inject_pair(INVALID),
        inject_from_shared=proto.inject_pair(SHARED),
    )


def transitions_equal(a: Iterable[Transition], b: Iterable[Transition]) -> bool:
    """Semantic equality of two tables (ignores ``notes`` and row order)."""
    def norm(rows):
        return {
            (t.state, t.event): (
                t.next_state,
                t.bus_action,
                t.next_state_sharers
                if t.next_state_sharers != t.next_state else None,
            )
            for t in rows
        }
    return norm(a) == norm(b)
