"""Static analysis and formal verification of the simulator.

This package is the repo's correctness gate (``coma-sim verify`` /
``coma-sim lint``, both run in CI):

* :mod:`repro.analysis.model` — the E/O/S/I table lifted to a
  machine-wide transition system for small configurations;
* :mod:`repro.analysis.invariants` — the rule catalogue: static table
  rules (T…), machine-wide state invariants (I…), cross-check rules (C…);
* :mod:`repro.analysis.modelcheck` — exhaustive reachability check with
  minimal counterexample traces;
* :mod:`repro.analysis.crosscheck` — drives the executable
  :class:`~repro.coma.machine.ComaMachine` against the table;
* :mod:`repro.analysis.liveness` — deadlock-freedom and
  no-replacement-livelock proofs over the same transition system (L…);
* :mod:`repro.analysis.sanitize` — the runtime coherence sanitizer: a
  trace sink checking happens-before races (R…), golden shadow-memory
  value integrity (V…) and relocation ping-pong (L003) on live runs;
* :mod:`repro.analysis.lint` — the determinism/hygiene AST linter
  (DET/MUT/FLT/EXC rules) over ``src/repro``;
* :mod:`repro.analysis.report` — shared finding vocabulary.

See ``docs/VERIFICATION.md`` for the full catalogue and suppression
syntax.
"""

from repro.analysis.crosscheck import crosscheck
from repro.analysis.invariants import ALL_RULES, check_line_state, check_table
from repro.analysis.lint import RULES as LINT_RULES
from repro.analysis.lint import lint_file, lint_source, lint_tree
from repro.analysis.liveness import check_liveness, format_liveness_report
from repro.analysis.model import ProtocolModel, Step
from repro.analysis.modelcheck import check_protocol, format_report
from repro.analysis.report import AnalysisReport, Finding, format_findings
from repro.analysis.sanitize import (
    CoherenceSanitizer,
    build_provenance,
    sanitizer_for,
)

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "CoherenceSanitizer",
    "Finding",
    "LINT_RULES",
    "ProtocolModel",
    "Step",
    "build_provenance",
    "check_line_state",
    "check_liveness",
    "check_protocol",
    "check_table",
    "crosscheck",
    "format_findings",
    "format_liveness_report",
    "format_report",
    "lint_file",
    "lint_source",
    "lint_tree",
    "sanitizer_for",
]
