"""Static analysis and formal verification of the simulator.

This package is the repo's correctness gate (``coma-sim verify`` /
``coma-sim lint``, both run in CI):

* :mod:`repro.analysis.model` — the E/O/S/I table lifted to a
  machine-wide transition system for small configurations;
* :mod:`repro.analysis.invariants` — the rule catalogue: static table
  rules (T…), machine-wide state invariants (I…), cross-check rules (C…);
* :mod:`repro.analysis.modelcheck` — exhaustive reachability check with
  minimal counterexample traces;
* :mod:`repro.analysis.crosscheck` — drives the executable
  :class:`~repro.coma.machine.ComaMachine` against the table;
* :mod:`repro.analysis.liveness` — deadlock-freedom and
  no-replacement-livelock proofs over the same transition system (L…);
* :mod:`repro.analysis.sanitize` — the runtime coherence sanitizer: a
  trace sink checking happens-before races (R…), golden shadow-memory
  value integrity (V…) and relocation ping-pong (L003) on live runs;
* :mod:`repro.analysis.lint` — the determinism/hygiene AST linter
  (DET/MUT/FLT/EXC rules) over ``src/repro``;
* :mod:`repro.analysis.certify` — certification of the compiled
  dispatch against the source table (C101–C104);
* :mod:`repro.analysis.bounds` — static per-path latency envelopes
  derived from the compiled dispatch, certified against observed span
  trees (B101–B103, ``coma-sim bounds``);
* :mod:`repro.analysis.coverage` — reachable table cells vs cells the
  workloads exercise: dead cells, gaps and directed micro-workloads
  (``coma-sim coverage``);
* :mod:`repro.analysis.report` — shared finding vocabulary and the
  consolidated rule registry (``coma-sim lint --explain``).

See ``docs/VERIFICATION.md`` for the full catalogue and suppression
syntax.
"""

from repro.analysis.bounds import (
    BOUNDS_RULES,
    BoundsCertifier,
    bound_table,
    certify_bounds,
    enumerate_paths,
    envelope_for,
    format_bounds,
)
from repro.analysis.certify import CERTIFY_RULES
from repro.analysis.coverage import (
    MICRO_RECIPES,
    CoverageAnalysis,
    CoverageMap,
    format_coverage,
    reachable_cells,
    run_micro,
    table_cells,
)
from repro.analysis.crosscheck import crosscheck
from repro.analysis.invariants import ALL_RULES, check_line_state, check_table
from repro.analysis.lint import RULES as LINT_RULES
from repro.analysis.lint import lint_file, lint_source, lint_tree
from repro.analysis.liveness import check_liveness, format_liveness_report
from repro.analysis.model import ProtocolModel, Step
from repro.analysis.modelcheck import check_protocol, format_report
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    explain_rule,
    format_findings,
    rule_registry,
)
from repro.analysis.sanitize import (
    CoherenceSanitizer,
    build_provenance,
    sanitizer_for,
)

__all__ = [
    "ALL_RULES",
    "BOUNDS_RULES",
    "CERTIFY_RULES",
    "AnalysisReport",
    "BoundsCertifier",
    "CoherenceSanitizer",
    "CoverageAnalysis",
    "CoverageMap",
    "Finding",
    "LINT_RULES",
    "MICRO_RECIPES",
    "ProtocolModel",
    "Step",
    "bound_table",
    "build_provenance",
    "certify_bounds",
    "check_line_state",
    "check_liveness",
    "check_protocol",
    "check_table",
    "crosscheck",
    "enumerate_paths",
    "envelope_for",
    "explain_rule",
    "format_bounds",
    "format_coverage",
    "format_findings",
    "format_liveness_report",
    "format_report",
    "lint_file",
    "lint_source",
    "lint_tree",
    "reachable_cells",
    "rule_registry",
    "run_micro",
    "table_cells",
    "sanitizer_for",
]
