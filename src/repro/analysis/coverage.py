"""Protocol table coverage: reachable cells vs cells workloads exercise.

The model checker (:mod:`repro.analysis.model`) proves which
(state, event, sharers) table cells are *reachable* in the abstract
machine; the trace stream shows which cells a concrete workload actually
*exercises*.  Intersecting the two classifies every allowed cell of
:data:`repro.coma.protocol.TRANSITIONS` into one of three buckets:

* **covered** — reachable and observed in at least one trace;
* **gap** — reachable in the model but never exercised by any supplied
  workload (a candidate for a directed micro-workload, see
  :data:`MICRO_RECIPES`);
* **dead** — present in the table but unreachable even in the abstract
  model (a candidate for deletion from the spec).

The unit of coverage is a *cell*: ``(state, event, tag)`` where ``tag``
distinguishes the sharer-dependent ``inject`` outcomes (``alone`` vs
``sharers``) and is ``-`` for every sharer-independent row.  Rows whose
``next_state`` is None (disallowed transitions) are outside the universe:
they cannot fire by construction and :func:`validate_table` already
checks totality.

Mapping the event stream back to table cells needs care because the
machine reports *effects* (state transitions) while the table is keyed by
*causes* at the moment the event hit the old state:

* A ``fill``/``read_exclusive``/``upgrade`` transition names the actor
  cell directly — and arrives *before* the access event for the same
  miss, so the access handler must not re-attribute the access against
  the already-updated mirror (the ``_pending`` mark).
* A supplier that degrades E→O emits a ``remote_read`` transition; a
  supplier that is *already* Owner serves the read silently (O is a
  fixpoint of ``remote_read``), so that cell is recovered at the
  subsequent remote access event from the mirror (the ``_degraded``
  mark suppresses double counting in the E→O case).
* Hits emit no transition at all: the actor cell is read off the mirror.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.analysis.model import ProtocolModel, Step
from repro.coma.protocol import TRANSITIONS, Transition
from repro.coma.states import SHARED, state_name
from repro.obs.events import (
    EV_ACCESS,
    EV_REPLACEMENT,
    EV_TRANSITION,
    MemAccess,
    Replacement,
)
from repro.obs.events import Transition as TransitionEvent
from repro.obs.sink import TraceSink

#: One coverage cell: (state letter, event, sharer tag).  ``tag`` is
#: "alone"/"sharers" for the sharer-dependent inject rows, "-" otherwise.
Cell = tuple[str, str, str]

#: Sharer tag for sharer-independent cells.
NO_TAG = "-"

#: Replacement outcomes that displace the copy out of ``src`` (the others
#: either keep the line inside the node — ``to_slc`` — or describe a
#: failed relocation that parks/drops without a donor state change we can
#: attribute beyond the transition events already emitted).
_EVICTING_OUTCOMES = frozenset({"to_sharer", "to_invalid", "to_shared", "cascade"})


def cell_key(cell: Cell) -> str:
    """Stable string form, e.g. ``"O:remote_read"`` / ``"I:inject:alone"``."""
    state, event, tag = cell
    return f"{state}:{event}" if tag == NO_TAG else f"{state}:{event}:{tag}"


def parse_cell(key: str) -> Cell:
    parts = key.split(":")
    if len(parts) == 2:
        return (parts[0], parts[1], NO_TAG)
    if len(parts) == 3:
        return (parts[0], parts[1], parts[2])
    raise ValueError(f"malformed cell key {key!r}")


def _sort_key(cell: Cell) -> tuple[int, str, str]:
    order = {"E": 0, "O": 1, "S": 2, "I": 3}
    return (order.get(cell[0], 9), cell[1], cell[2])


# ---------------------------------------------------------------------------
# The universe: every allowed cell of the table.
# ---------------------------------------------------------------------------

def table_cells(transitions: Sequence[Transition] = TRANSITIONS) -> set[Cell]:
    """All allowed cells, with sharer-dependent rows split in two."""
    cells: set[Cell] = set()
    for t in transitions:
        if t.next_state is None:
            continue
        state = state_name(t.state)
        if t.next_state_sharers is not None and t.next_state_sharers != t.next_state:
            cells.add((state, t.event, "alone"))
            cells.add((state, t.event, "sharers"))
        else:
            cells.add((state, t.event, NO_TAG))
    return cells


# ---------------------------------------------------------------------------
# The reachable set: BFS over the abstract model, recording the cells each
# step fires.  Mirrors ProtocolModel.apply exactly (broadcast first, actor
# next, receiver inject resolved against the surviving sharer set).
# ---------------------------------------------------------------------------

def _step_cells(
    model: ProtocolModel, gs: tuple[tuple[int, ...], ...], step: Step
) -> set[Cell]:
    cells: set[Cell] = set()
    ls = list(gs[step.line])
    actor = step.node
    row = model.table[(ls[actor], step.event)]
    cells.add((state_name(ls[actor]), step.event, NO_TAG))

    remote: Optional[str] = None
    if row.bus_action == "read":
        remote = "remote_read"
    elif row.bus_action in ("read_excl", "upgrade"):
        remote = "remote_write"
    if remote is not None:
        for node, state in enumerate(ls):
            if node == actor:
                continue
            rrow = model.table.get((state, remote))
            if rrow is not None and rrow.next_state is not None:
                cells.add((state_name(state), remote, NO_TAG))
                ls[node] = rrow.next_state
    assert row.next_state is not None  # step came from model.steps()
    ls[actor] = row.next_state

    if step.receiver is not None:
        rcv_state = ls[step.receiver]
        rcv_row = model.table[(rcv_state, "inject")]
        tag = NO_TAG
        if (
            rcv_row.next_state_sharers is not None
            and rcv_row.next_state_sharers != rcv_row.next_state
        ):
            sharers_exist = any(
                s == SHARED
                for n, s in enumerate(ls)
                if n not in (actor, step.receiver)
            )
            tag = "sharers" if sharers_exist else "alone"
        cells.add((state_name(rcv_state), "inject", tag))
    return cells


def reachable_cells(
    transitions: Sequence[Transition] = TRANSITIONS,
    n_nodes: int = 3,
) -> set[Cell]:
    """Every cell fired along some path from the initial global state.

    ``n_nodes=3`` suffices to distinguish alone/sharers inject outcomes
    (actor, receiver, plus one potential surviving sharer) and matches
    the model checker's default configuration.
    """
    model = ProtocolModel(transitions, n_nodes=n_nodes, n_lines=1)
    init = model.initial_state()
    seen = {init}
    frontier = [init]
    cells: set[Cell] = set()
    while frontier:
        gs = frontier.pop()
        for step in model.steps(gs):
            cells |= _step_cells(model, gs, step)
            nxt = model.apply(gs, step)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return cells


# ---------------------------------------------------------------------------
# The exercised set: a TraceSink that maps the concrete event stream back
# to table cells.
# ---------------------------------------------------------------------------

class CoverageMap(TraceSink):
    """Record which table cells a run exercises.

    Maintains a per-line mirror of each node's protocol state (fed by
    transition events) so that hit accesses — which emit no transition —
    can be attributed to the correct ``(state, local_*)`` cell.
    """

    def __init__(self) -> None:
        self.exercised: set[Cell] = set()
        #: line -> {node: state letter}; absent node means Invalid.
        self._mirror: dict[int, dict[int, str]] = {}
        self._node_of: list[int] = []
        #: lines whose actor cell was already recorded by the transition
        #: event of the in-flight miss (fill/upgrade/read_exclusive) —
        #: the matching access event must not re-attribute against the
        #: post-transition mirror.
        self._pending: set[int] = set()
        #: lines whose supplier degraded E->O for the in-flight read —
        #: the access handler must not also record the (already updated)
        #: owner state as a second supplier cell.
        self._degraded: set[int] = set()

    # -- wiring ---------------------------------------------------------

    def bind(self, config: object) -> None:
        """Learn the processor->node mapping (needed to read the mirror
        at access events, which carry a processor id, not a node id)."""
        n = int(getattr(config, "n_processors"))
        node_of: Callable[[int], int] = getattr(config, "node_of_proc")
        self._node_of = [node_of(p) for p in range(n)]

    def attach_to(self, sim, every: Optional[int] = None) -> None:  # type: ignore[no-untyped-def]
        self.bind(sim.machine.config)
        super().attach_to(sim, every)

    # -- event handlers -------------------------------------------------

    def emit(self, ev: object) -> None:
        kind = getattr(ev, "kind", None)
        if kind == EV_ACCESS:
            assert isinstance(ev, MemAccess)
            self._access(ev)
        elif kind == EV_TRANSITION:
            assert isinstance(ev, TransitionEvent)
            self._transition(ev)
        elif kind == EV_REPLACEMENT:
            assert isinstance(ev, Replacement)
            self._replacement(ev)

    def _transition(self, ev: TransitionEvent) -> None:
        cause = ev.cause
        if cause == "fill":
            self.exercised.add(("I", "local_read", NO_TAG))
            self._pending.add(ev.line)
        elif cause == "read_exclusive":
            self.exercised.add(("I", "local_write", NO_TAG))
            self._pending.add(ev.line)
        elif cause == "upgrade":
            self.exercised.add((ev.before, "local_write", NO_TAG))
            self._pending.add(ev.line)
        elif cause == "invalidate":
            self.exercised.add((ev.before, "remote_write", NO_TAG))
        elif cause == "remote_read":
            self.exercised.add((ev.before, "remote_read", NO_TAG))
            self._degraded.add(ev.line)
        elif cause == "drop":
            self.exercised.add(("S", "evict", NO_TAG))
        elif cause == "inject":
            tag = "alone" if ev.after == "E" else "sharers"
            self.exercised.add((ev.before, "inject", tag))
        # "materialize" is first-touch page creation, not a table cell.

        mirror = self._mirror.setdefault(ev.line, {})
        if ev.after == "I":
            mirror.pop(ev.node, None)
        else:
            mirror[ev.node] = ev.after

    def _access(self, ev: MemAccess) -> None:
        line = ev.line
        event = "local_read" if ev.op == "r" else "local_write"
        mirror = self._mirror.get(line)
        if ev.level == "remote":
            if ev.op == "r" and line not in self._degraded and mirror:
                # The supplier served the read without a state change:
                # it was already Owner (or the snoop found it Exclusive
                # and the transition event was filtered).  Attribute the
                # silent supply to the owning node's cell.
                node = self._node_of[ev.proc] if ev.proc < len(self._node_of) else -1
                for n, s in mirror.items():
                    if n != node and s in ("E", "O"):
                        self.exercised.add((s, "remote_read", NO_TAG))
                        break
            if line not in self._pending:
                # Uncached fallback paths complete without a fill.
                self.exercised.add(("I", event, NO_TAG))
        elif line not in self._pending:
            node = self._node_of[ev.proc] if ev.proc < len(self._node_of) else -1
            state = (mirror or {}).get(node)
            if state is not None:
                self.exercised.add((state, event, NO_TAG))
        self._pending.discard(line)
        self._degraded.discard(line)

    def _replacement(self, ev: Replacement) -> None:
        if ev.outcome not in _EVICTING_OUTCOMES:
            return
        mirror = self._mirror.get(ev.line)
        if not mirror:
            return
        state = mirror.pop(ev.src, None)
        if state in ("E", "O"):
            self.exercised.add((state, "evict", NO_TAG))


# ---------------------------------------------------------------------------
# Analysis: classify the universe against reachable + exercised sets.
# ---------------------------------------------------------------------------

class CoverageAnalysis:
    """Aggregate one or more runs' exercised sets into a coverage report."""

    def __init__(
        self,
        transitions: Sequence[Transition] = TRANSITIONS,
        n_nodes: int = 3,
    ) -> None:
        self.n_nodes = n_nodes
        self.universe = table_cells(transitions)
        self.reachable = reachable_cells(transitions, n_nodes=n_nodes) & self.universe
        self.runs: dict[str, set[Cell]] = {}

    def add_run(self, label: str, exercised: Iterable[Cell]) -> None:
        self.runs[label] = set(exercised) & self.universe

    # -- classification -------------------------------------------------

    @property
    def exercised(self) -> set[Cell]:
        out: set[Cell] = set()
        for cells in self.runs.values():
            out |= cells
        return out

    def dead_cells(self) -> list[Cell]:
        """In the table, unreachable even abstractly — deletion candidates."""
        return sorted(self.universe - self.reachable, key=_sort_key)

    def gap_cells(self) -> list[Cell]:
        """Reachable in the model, never exercised by any added run."""
        return sorted(self.reachable - self.exercised, key=_sort_key)

    def covered_cells(self) -> list[Cell]:
        return sorted(self.reachable & self.exercised, key=_sort_key)

    def pct(self, label: Optional[str] = None) -> float:
        ex = self.runs.get(label, set()) if label is not None else self.exercised
        if not self.reachable:
            return 100.0
        return 100.0 * len(ex & self.reachable) / len(self.reachable)

    # -- reporting ------------------------------------------------------

    def report(self) -> dict[str, Any]:
        gaps = self.gap_cells()
        return {
            "n_nodes": self.n_nodes,
            "universe": sorted(cell_key(c) for c in self.universe),
            "reachable": sorted(cell_key(c) for c in self.reachable),
            "covered": [cell_key(c) for c in self.covered_cells()],
            "dead": [cell_key(c) for c in self.dead_cells()],
            "gaps": [
                {
                    "cell": cell_key(c),
                    "micro_workload": _recipe_json(MICRO_RECIPES.get(c)),
                }
                for c in gaps
            ],
            "per_run_pct": {
                label: round(self.pct(label), 2) for label in sorted(self.runs)
            },
            "total_pct": round(self.pct(), 2),
        }


def _recipe_json(
    recipe: Optional[tuple["MicroStep", ...]],
) -> Optional[list[dict[str, Any]]]:
    if recipe is None:
        return None
    return [{"op": op, "proc": proc, "line": line} for op, proc, line in recipe]


def format_coverage(report: Mapping[str, Any]) -> str:
    """Render a coverage report dict as an aligned text table."""
    lines = [
        "Protocol table coverage "
        f"({len(report['reachable'])} reachable cells of "
        f"{len(report['universe'])} allowed, model n_nodes="
        f"{report['n_nodes']})",
        "",
        f"{'cell':<24} {'status':<10} note",
        f"{'-' * 24} {'-' * 10} {'-' * 34}",
    ]
    covered = set(report["covered"])
    dead = set(report["dead"])
    gap_micro = {g["cell"]: g["micro_workload"] for g in report["gaps"]}
    for key in report["universe"]:
        if key in dead:
            status, note = "DEAD", "unreachable in the abstract model"
        elif key in covered:
            status, note = "covered", ""
        elif key in gap_micro:
            status = "GAP"
            note = (
                "directed micro-workload available"
                if gap_micro[key] is not None
                else "no known driving sequence"
            )
        else:
            status, note = "?", ""
        lines.append(f"{key:<24} {status:<10} {note}".rstrip())
    lines.append("")
    for label, pct in sorted(report["per_run_pct"].items()):
        lines.append(f"  {label:<28} {pct:6.2f} % of reachable cells")
    lines.append(f"  {'TOTAL':<28} {report['total_pct']:6.2f} % of reachable cells")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Directed micro-workloads: minimal access sequences that drive one cell.
# ---------------------------------------------------------------------------

#: One scripted access: (op, processor, line index).  Addresses are
#: ``line * line_size`` on the micro machine below.
MicroStep = tuple[str, int, int]

#: Minimal driving sequences on :func:`micro_machine` (4 nodes, one
#: processor per node, one-way attraction memories of 2 sets so line
#: indices 0 and 2 conflict and force relocations).  ``None`` marks a
#: cell with no known driving sequence under the machine's accept
#: policy: a relocation prefers a surviving sharer (``to_sharer``), so
#: an Invalid receiver is only chosen when no sharer exists — which is
#: exactly the ``alone`` outcome.
MICRO_RECIPES: dict[Cell, Optional[tuple[MicroStep, ...]]] = {
    ("E", "local_read", NO_TAG): (("w", 0, 0), ("r", 0, 0)),
    ("E", "local_write", NO_TAG): (("w", 0, 0), ("w", 0, 0)),
    ("E", "remote_read", NO_TAG): (("w", 0, 0), ("r", 1, 0)),
    ("E", "remote_write", NO_TAG): (("w", 0, 0), ("w", 1, 0)),
    ("E", "evict", NO_TAG): (("w", 0, 0), ("w", 0, 2)),
    ("O", "local_read", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("r", 0, 0)),
    ("O", "local_write", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 0, 0)),
    ("O", "remote_read", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("r", 2, 0)),
    ("O", "remote_write", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 2, 0)),
    ("O", "evict", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 0, 2)),
    ("S", "local_read", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("r", 1, 0)),
    ("S", "local_write", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 1, 0)),
    ("S", "remote_write", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 2, 0)),
    ("S", "evict", NO_TAG): (("w", 0, 0), ("r", 1, 0), ("w", 1, 2)),
    ("S", "inject", "alone"): (("w", 0, 0), ("r", 1, 0), ("w", 0, 2)),
    ("S", "inject", "sharers"): (
        ("w", 0, 0), ("r", 1, 0), ("r", 2, 0), ("w", 0, 2),
    ),
    ("I", "local_read", NO_TAG): (("w", 0, 0), ("r", 1, 0)),
    ("I", "local_write", NO_TAG): (("w", 0, 0), ("w", 1, 0)),
    ("I", "inject", "alone"): (("w", 0, 0), ("w", 0, 2)),
    # The accept policy always prefers a surviving sharer, so an Invalid
    # receiver never coexists with sharers on the concrete machine.
    ("I", "inject", "sharers"): None,
    # (S, remote_read) is structurally dead on the concrete machine: the
    # supplier lookup targets the owner, so a Shared copy never observes
    # the snoop.  Reachable abstractly — a permanent, documented gap.
    ("S", "remote_read", NO_TAG): None,
}


def micro_machine():  # type: ignore[no-untyped-def]
    """A 4-node machine with exactly-controlled conflict geometry: one
    processor per node, one-way AMs of 2 sets (line indices with equal
    parity conflict), single-line SLC/L1, one line per page so each line
    is homed at its first toucher."""
    from repro.coma.machine import ComaMachine
    from repro.common.config import MachineConfig, TimingConfig
    from repro.mem.address import AddressSpace

    line = 64
    cfg = MachineConfig(
        n_processors=4,
        procs_per_node=1,
        line_size=line,
        page_size=line,
        am_assoc=1,
        memory_pressure=Fraction(1, 2),
        am_bytes_per_node=2 * line,
        slc_bytes=line,
        l1_bytes=line,
        timing=TimingConfig(),
    )
    space = AddressSpace(page_size=line)
    space.alloc(1 << 16, "micro")
    return ComaMachine(cfg, space)


def run_micro(
    steps: Sequence[MicroStep], machine=None  # type: ignore[no-untyped-def]
) -> CoverageMap:
    """Execute a scripted sequence and return the exercised-cell map."""
    m = machine if machine is not None else micro_machine()
    cov = CoverageMap()
    cov.bind(m.config)
    m.set_trace(cov)
    t = 0
    for op, proc, line_ix in steps:
        addr = line_ix * m.config.line_size
        if op == "r":
            m.read(proc, addr, t)
        else:
            m.write_stalling(proc, addr, t)
        t += 10_000
    return cov


__all__ = [
    "Cell",
    "CoverageAnalysis",
    "CoverageMap",
    "MICRO_RECIPES",
    "MicroStep",
    "cell_key",
    "format_coverage",
    "micro_machine",
    "parse_cell",
    "reachable_cells",
    "run_micro",
    "table_cells",
]
