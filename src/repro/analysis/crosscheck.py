"""Cross-validation of the executable machine against the protocol table.

The model checker proves the *table* sound; this pass proves the
*simulator implements the table*.  Two sub-passes:

* :func:`crosscheck_sequences` — exhaustively drives a real
  :class:`~repro.coma.machine.ComaMachine` through every read/write
  sequence up to a bounded depth on one line (one processor per node,
  roomy attraction memories so no eviction interferes) and compares the
  per-node attraction-memory states after every operation against the
  abstract model's prediction.  Any divergence is a ``C001`` finding
  carrying the offending operation sequence.

* :func:`crosscheck_relocations` — scripted single-set scenarios that
  force the evict/inject paths the sequence pass cannot reach (accept to
  an invalid way, sharer takeover with and without surviving sharers,
  relocation of an Owner whose sharers all dropped silently) and check
  the receiving node's state against the table's resolved ``inject``
  row.  Divergences are ``C002`` findings.

Both run in well under a second and are part of ``coma-sim verify``.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.analysis.model import ProtocolModel, Step, format_line_state
from repro.analysis.report import AnalysisReport, Finding
from repro.coma.machine import ComaMachine
from repro.coma.states import EXCLUSIVE, INVALID, OWNER, SHARED
from repro.coma import protocol
from repro.common.config import MachineConfig, TimingConfig
from repro.mem.address import AddressSpace

LINE_SIZE = 64


def _machine(
    nodes: int,
    am_sets: int = 8,
    am_assoc: int = 4,
    page_lines: int = 1,
) -> ComaMachine:
    """A one-processor-per-node machine with exactly controlled geometry."""
    cfg = MachineConfig(
        n_processors=nodes,
        procs_per_node=1,
        line_size=LINE_SIZE,
        page_size=page_lines * LINE_SIZE,
        am_assoc=am_assoc,
        memory_pressure=Fraction(1, 2),
        am_bytes_per_node=am_sets * am_assoc * LINE_SIZE,
        slc_bytes=4 * LINE_SIZE,
        l1_bytes=2 * LINE_SIZE,
        inclusive=True,
        timing=TimingConfig(),
    )
    space = AddressSpace(page_size=cfg.page_size)
    space.alloc(1 << 20, "crosscheck")
    return ComaMachine(cfg, space)


def _am_states(m: ComaMachine, line: int) -> tuple[int, ...]:
    """Per-node attraction-memory state of ``line`` (I when absent)."""
    out = []
    for node in m.nodes:
        e = node.am.lookup(line)
        out.append(e.state if e is not None else INVALID)
    return tuple(out)


# ----------------------------------------------------------------------
# pass A: exhaustive read/write sequences
# ----------------------------------------------------------------------

def crosscheck_sequences(nodes: int = 3, depth: int = 3) -> AnalysisReport:
    """Compare machine vs. model for every op sequence up to ``depth``.

    Ops are ``(kind, node)`` with one processor per node; the first op
    materializes the line Exclusive at its node (first-touch paging),
    matching the model's initial state, so the model is seeded from the
    first op and stepped for each subsequent one.
    """
    report = AnalysisReport()
    model = ProtocolModel(n_nodes=nodes)
    ops = [(kind, n) for kind in "rw" for n in range(nodes)]
    checked = 0
    for length in range(1, depth + 1):
        for seq in itertools.product(ops, repeat=length):
            finding = _run_sequence(model, nodes, seq)
            checked += 1
            if finding is not None:
                report.findings.append(finding)
                report.stats["sequences"] = checked
                return report  # first divergence is the clearest one
    report.stats["sequences"] = checked
    return report


def _run_sequence(model, nodes, seq):
    m = _machine(nodes)
    first_kind, first_node = seq[0]
    line_states = (
        (EXCLUSIVE,) + (INVALID,) * (nodes - 1)
        if first_node == 0
        else tuple(
            EXCLUSIVE if n == first_node else INVALID for n in range(nodes)
        )
    )
    t = 0
    for i, (kind, node) in enumerate(seq):
        if kind == "r":
            t, _ = m.read(node, 0, t)
        else:
            t = m.write(node, 0, t)
        if i > 0:
            event = "local_read" if kind == "r" else "local_write"
            (line_states,) = model.apply(
                (line_states,), Step(0, node, event)
            )
        actual = _am_states(m, 0)
        if actual != line_states:
            ops_text = " ".join(f"{k}@n{n}" for k, n in seq[: i + 1])
            return Finding(
                rule="C001",
                message="machine diverges from the protocol table",
                path="crosscheck",
                detail=(
                    f"sequence: {ops_text}\n"
                    f"table predicts: {format_line_state(line_states)}\n"
                    f"machine holds:  {format_line_state(actual)}"
                ),
            )
        m.check_consistency()
    return None


# ----------------------------------------------------------------------
# pass B: scripted relocation scenarios
# ----------------------------------------------------------------------

def crosscheck_relocations() -> AnalysisReport:
    """Force each evict/inject path and check the table's resolved state."""
    report = AnalysisReport()
    scenarios = (
        _relocate_to_invalid_way,
        _takeover_by_last_sharer,
        _takeover_with_surviving_sharer,
        _relocate_owner_without_sharers,
    )
    for scenario in scenarios:
        finding = scenario()
        report.stats["scenarios"] = report.stats.get("scenarios", 0) + 1
        if finding is not None:
            report.findings.append(finding)
    return report


def _c002(name: str, want: int, got: int, node: int) -> Finding:
    return Finding(
        rule="C002",
        message=f"relocation scenario {name!r} diverges from the table",
        path="crosscheck",
        detail=(
            f"receiving node {node}: table resolves inject to "
            f"{protocol.state_name(want)}, machine installed "
            f"{protocol.state_name(got)}"
        ),
    )


def _relocate_to_invalid_way():
    """E evicted into another node's invalid way: I + inject, no sharers."""
    m = _machine(2, am_sets=1, am_assoc=1)
    m.write(0, 0, 0)                   # node 0 owns line 0 (E)
    m.write(0, LINE_SIZE, 1000)        # single way: line 0 relocates to node 1
    want = protocol.resolved_next(INVALID, "inject", sharers_exist=False)
    got = _am_states(m, 0)[1]
    m.check_consistency()
    return None if got == want else _c002("invalid-way", want, got, 1)


def _takeover_by_last_sharer():
    """Owner evicts while one sharer exists: S + inject, taker now alone."""
    m = _machine(2, am_sets=1, am_assoc=1)
    m.write(0, 0, 0)                   # node 0: E
    m.read(1, 0, 1000)                 # node 1: S, node 0: O
    m.write(0, LINE_SIZE, 2000)        # node 0 evicts -> sharer takeover
    want = protocol.resolved_next(SHARED, "inject", sharers_exist=False)
    got = _am_states(m, 0)[1]
    m.check_consistency()
    return None if got == want else _c002("takeover-last", want, got, 1)


def _takeover_with_surviving_sharer():
    """Takeover while another sharer survives: S + inject with sharers."""
    m = _machine(3, am_sets=1, am_assoc=1)
    m.write(0, 0, 0)                   # node 0: E
    m.read(1, 0, 1000)                 # node 1: S
    m.read(2, 0, 2000)                 # node 2: S, node 0: O
    m.write(0, LINE_SIZE, 3000)        # node 0 evicts -> node 1 takes over
    want = protocol.resolved_next(SHARED, "inject", sharers_exist=True)
    states = _am_states(m, 0)
    m.check_consistency()
    if states[1] != want:
        return _c002("takeover-shared", want, states[1], 1)
    if states[2] != SHARED:
        return _c002("takeover-shared", SHARED, states[2], 2)
    return None


def _relocate_owner_without_sharers():
    """An Owner whose sharers all dropped silently relocates: the replace
    probe is snooped machine-wide, so the receiver installs Exclusive —
    the sharer-dependent I + inject row with an empty sharer set."""
    m = _machine(3, am_sets=1, am_assoc=2)
    m.write(0, 0, 0)                       # node 0: E(l0)
    m.read(1, 0, 1000)                     # node 1: S(l0), node 0: O(l0)
    m.read(1, LINE_SIZE, 2000)             # node 1 way 2: E(l1)
    m.read(1, 2 * LINE_SIZE, 3000)         # node 1 full: S(l0) dropped silently
    assert _am_states(m, 0)[0] == OWNER and not m.lines.get(0).sharers
    m.write(0, 3 * LINE_SIZE, 4000)        # node 0 way 2: E(l3)
    m.write(0, 4 * LINE_SIZE, 5000)        # node 0 full: l0 (LRU owner) evicts
    want = protocol.resolved_next(INVALID, "inject", sharers_exist=False)
    got = _am_states(m, 0)[2]              # receiver: node 2 (empty ways)
    m.check_consistency()
    return None if got == want else _c002("owner-no-sharers", want, got, 2)


def crosscheck(nodes: int = 3, depth: int = 3) -> AnalysisReport:
    """Run both cross-check passes."""
    report = crosscheck_sequences(nodes=nodes, depth=depth)
    report.extend(crosscheck_relocations())
    return report
