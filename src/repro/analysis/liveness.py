"""Liveness verification for the E/O/S/I protocol (L-rules).

The reachability checker (:mod:`repro.analysis.modelcheck`) proves
*safety*: no reachable state violates the single-owner/no-lost-copy
invariants.  A protocol can satisfy all of those and still be useless —
it can wedge (no step enabled anywhere) or churn forever (the only thing
it can ever do is relocate owner lines from node to node without any
processor making progress).  This module proves two liveness properties
over the same lifted transition system:

* **L001 — deadlock freedom.**  Every reachable global state has at
  least one enabled step.  The BFS parent map makes the first
  counterexample's event trace minimal.
* **L002 — no replacement livelock.**  Under weak fairness, the system
  must always be able to leave the *relocation-only* region: states
  whose every enabled step is an eviction.  A cycle inside that region
  is an execution where the machine shuffles owner lines between nodes
  forever while no load or store can ever fire.

With the shipped table both properties hold vacuously strong: every
state enables a local read, so the relocation-only region is empty.
The value of the pass is the same as the safety checker's — a table
edit that breaks liveness is caught with a minimal trace, and the
mutation tests in ``tests/test_liveness.py`` pin the rule IDs.

(L003, relocation ping-pong at runtime, is a trace-driven watchdog in
:mod:`repro.analysis.sanitize` — it needs real capacity pressure, which
the abstract capacity-free model cannot express.)
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.model import GlobalState, ProtocolModel, Step
from repro.analysis.modelcheck import MAX_STATES, format_trace, trace_to
from repro.analysis.report import AnalysisReport, Finding
from repro.coma.protocol import TRANSITIONS, Transition


def check_liveness(
    transitions: Sequence[Transition] = TRANSITIONS,
    n_nodes: int = 3,
    n_lines: int = 1,
    max_states: int = MAX_STATES,
) -> AnalysisReport:
    """Prove deadlock freedom (L001) and no replacement livelock (L002).

    Explores every reachable global state breadth-first, so the first
    deadlock found has a minimal event trace; livelock counterexamples
    report the shortest path into the relocation-only region plus the
    cycle that traps the machine there.
    """
    report = AnalysisReport()
    model = ProtocolModel(transitions, n_nodes=n_nodes, n_lines=n_lines)
    init = model.initial_state()

    parent: dict[GlobalState, Optional[tuple[GlobalState, Step]]] = {init: None}
    queue = deque([init])
    order: list[GlobalState] = []          # BFS discovery order
    enabled: dict[GlobalState, list[Step]] = {}
    n_transitions = 0
    truncated = False

    while queue and not truncated:
        state = queue.popleft()
        order.append(state)
        steps = model.steps(state)
        enabled[state] = steps
        for step in steps:
            n_transitions += 1
            succ = model.apply(state, step)
            if succ not in parent:
                if len(parent) >= max_states:
                    truncated = True
                    break
                parent[succ] = (state, step)
                queue.append(succ)

    if truncated:
        report.findings.append(Finding(
            rule="L001",
            message=f"state-space exceeded {max_states} states before the "
            "liveness check finished — cannot prove deadlock freedom",
            path="liveness-check",
        ))

    # -- L001: deadlock freedom ----------------------------------------
    deadlocks = [s for s in order if not enabled[s]]
    if deadlocks:
        first = deadlocks[0]               # BFS order => minimal trace
        stuck = model.stuck_relocations(first)
        why = (
            "the only enabled actions are owner evictions with no willing "
            "receiver" if stuck else "no load, store, eviction or inject "
            "row applies anywhere"
        )
        report.findings.append(Finding(
            rule="L001",
            message=f"reachable deadlock: no step is enabled ({why})",
            path="liveness-check",
            detail=format_trace(trace_to(first, parent)),
        ))

    # -- L002: no replacement livelock ---------------------------------
    reloc_only = {
        s for s in order
        if enabled[s] and all(st.event == "evict" for st in enabled[s])
    }
    cycle = _find_cycle(model, reloc_only, enabled, order)
    if cycle is not None:
        entry, loop_steps = cycle
        detail = [format_trace(trace_to(entry, parent)),
                  "relocation-only cycle from there:"]
        cur = entry
        for step in loop_steps:
            cur = model.apply(cur, step)
            detail.append(f"  loop: {step.describe():40s} -> "
                          f"{_fmt(cur)}")
        report.findings.append(Finding(
            rule="L002",
            message="replacement livelock: a reachable cycle of states "
            "whose every enabled step is an eviction — under weak fairness "
            "the machine can relocate owner lines forever while no "
            "processor access is ever possible",
            path="liveness-check",
            detail="\n".join(detail),
        ))

    report.stats["states"] = len(parent)
    report.stats["transitions"] = n_transitions
    report.stats["deadlock_states"] = len(deadlocks)
    report.stats["relocation_only_states"] = len(reloc_only)
    return report


def _fmt(state: GlobalState) -> str:
    from repro.analysis.model import format_global_state

    return format_global_state(state)


def _find_cycle(
    model: ProtocolModel,
    reloc_only: set[GlobalState],
    enabled: dict[GlobalState, list[Step]],
    order: list[GlobalState],
) -> Optional[tuple[GlobalState, list[Step]]]:
    """First cycle inside the relocation-only region, if any.

    DFS restricted to relocation-only states, seeded in BFS discovery
    order so the reported entry state is as shallow as possible.  The
    region is tiny (empty for the shipped table; at most ``4^(nodes
    * lines)`` states for a mutated one), so plain recursion is fine.
    Returns ``(entry_state, steps_around_the_cycle)``.
    """
    visited: set[GlobalState] = set()
    for seed in order:
        if seed not in reloc_only or seed in visited:
            continue
        found = _dfs(model, seed, reloc_only, enabled, visited, {}, [])
        if found is not None:
            return found
    return None


def _dfs(
    model: ProtocolModel,
    state: GlobalState,
    reloc_only: set[GlobalState],
    enabled: dict[GlobalState, list[Step]],
    visited: set[GlobalState],
    on_path: dict[GlobalState, int],
    edges: list[Step],
) -> Optional[tuple[GlobalState, list[Step]]]:
    on_path[state] = len(edges)
    for step in enabled[state]:
        succ = model.apply(state, step)
        if succ not in reloc_only:
            continue
        if succ in on_path:                # back edge: cycle found
            return succ, edges[on_path[succ]:] + [step]
        if succ in visited:
            continue
        edges.append(step)
        found = _dfs(model, succ, reloc_only, enabled, visited,
                     on_path, edges)
        if found is not None:
            return found
        edges.pop()
    del on_path[state]
    visited.add(state)
    return None


def format_liveness_report(report: AnalysisReport) -> str:
    head = (
        f"explored {report.stats.get('states', 0)} states / "
        f"{report.stats.get('transitions', 0)} transitions, "
        f"{report.stats.get('relocation_only_states', 0)} relocation-only"
    )
    if report.ok:
        return f"liveness OK: {head}, deadlock-free, no replacement livelock"
    from repro.analysis.report import format_findings

    return f"liveness BROKEN ({head}):\n{format_findings(report.findings)}"
