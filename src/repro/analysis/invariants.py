"""Invariant and rule catalogue for protocol verification.

Two families, each with stable IDs used by tests, CI and suppression:

* **T-rules** (``T001``–``T007``) are *static* checks over the
  declarative table itself — principles any bus-based COMA invalidation
  protocol must satisfy row-by-row (a hit issues no bus transaction, a
  store must end Exclusive, an owner only leaves by relocation, …).
* **I-rules** (``I001``–``I004``) are *machine-wide state* invariants the
  model checker evaluates on every reachable global state: they are the
  load-bearing "exactly one owner, sharers never outlive it" property
  from :mod:`repro.coma.states` that every figure in the paper rests on.

The executable cross-check (:mod:`repro.analysis.crosscheck`) reports
**C-rules** (``C001``/``C002``) when the simulator's behaviour diverges
from the table.  The liveness checker (:mod:`repro.analysis.liveness`)
and the runtime coherence sanitizer (:mod:`repro.analysis.sanitize`)
report **L-rules** (deadlock/livelock/ping-pong) and **R/V-rules**
(races, stale values, lost copies); their catalogues live here so every
stable rule ID has one home.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.report import Finding
from repro.coma.protocol import EVENTS, STATES, Transition
from repro.coma.states import EXCLUSIVE, INVALID, OWNER, SHARED, state_name

TABLE_RULES = {
    "T001": "table must be total: every (state, event) pair exactly once",
    "T002": "a load must leave a readable copy; a hit changes nothing and "
            "is silent; a read miss issues a bus read",
    "T003": "a store must end Exclusive: silent from E, upgrade from S/O, "
            "read-exclusive from I",
    "T004": "remote events never touch uninvolved nodes, are snoop-side "
            "(no bus action); a remote read preserves the copy (E degrades "
            "to O), a remote write erases it",
    "T005": "eviction removes the copy: nothing to evict from I, Shared "
            "drops silently, an owner leaves only by relocation (replace)",
    "T006": "only I and S accept an inject; the receiver takes ownership — "
            "Exclusive when it now holds the only copy, Owner when sharers "
            "survive (the sharer-dependent next state must be explicit)",
    "T007": "a disallowed transition issues no bus transaction",
}

STATE_RULES = {
    "I001": "exactly one owner (E or O) per materialized line",
    "I002": "a Shared copy never outlives the owner",
    "I003": "an Exclusive copy is the only copy in the machine",
    "I004": "no lost last copy: an owner eviction must have a willing "
            "receiver (relocation can never drop the datum)",
}

CROSSCHECK_RULES = {
    "C001": "executable machine state diverges from the table under a "
            "read/write sequence",
    "C002": "executable relocation (evict/inject) diverges from the table",
}

#: Liveness rules: L001/L002 are proved over the lifted transition system
#: by :mod:`repro.analysis.liveness`; L003 is a runtime watchdog in the
#: coherence sanitizer (:mod:`repro.analysis.sanitize`).
LIVENESS_RULES = {
    "L001": "deadlock freedom: every reachable global state enables at "
            "least one step",
    "L002": "no replacement livelock: no reachable cycle of states whose "
            "every enabled step is an eviction (under weak fairness the "
            "machine must always be able to serve an access)",
    "L003": "no relocation ping-pong: a line must not be relocated again "
            "and again out of the node that just accepted it with no "
            "intervening processor access",
}

#: Dynamic sanitizer rules, checked against a live event stream by
#: :class:`repro.analysis.sanitize.CoherenceSanitizer`.
SANITIZER_RULES = {
    "R001": "no write/write data race: two stores to the same address by "
            "different processors must be ordered by happens-before",
    "R002": "no read/write data race: a load and a store to the same "
            "address by different processors must be ordered by "
            "happens-before",
    "R003": "declared-private addresses are touched by exactly one "
            "processor (workload partitioning matches its declaration)",
    "V001": "no stale read: a load is served by a copy at the golden "
            "shadow memory's latest committed version",
    "V002": "no stale relocation: a relocated owner copy carries the "
            "latest committed version",
    "V003": "no lost copy: every hit, store and relocation is backed by a "
            "copy the protocol actually installed",
}

ALL_RULES = {**TABLE_RULES, **STATE_RULES, **CROSSCHECK_RULES,
             **LIVENESS_RULES, **SANITIZER_RULES}


def _row_finding(rule: str, t: Transition, why: str) -> Finding:
    loc = f"({state_name(t.state)}, {t.event})"
    return Finding(
        rule=rule,
        message=f"row {loc}: {why}",
        path="protocol-table",
        detail=f"offending row: {t!r}\nrule: {ALL_RULES[rule]}",
    )


# ----------------------------------------------------------------------
# static table rules
# ----------------------------------------------------------------------

def check_table(transitions: Iterable[Transition]) -> list[Finding]:
    """Run every T-rule over a transition table; returns all findings."""
    rows = list(transitions)
    findings: list[Finding] = []

    # T001 — totality.
    seen: dict[tuple[int, str], Transition] = {}
    for t in rows:
        key = (t.state, t.event)
        if key in seen:
            findings.append(_row_finding("T001", t, "duplicate row"))
        seen[key] = t
    for s in STATES:
        for e in EVENTS:
            if (s, e) not in seen:
                findings.append(
                    Finding(
                        rule="T001",
                        message=f"missing row ({state_name(s)}, {e})",
                        path="protocol-table",
                    )
                )
    if any(f.rule == "T001" for f in findings):
        return findings  # row-wise rules assume a total table

    def row(s: int, e: str) -> Transition:
        return seen[(s, e)]

    # T002 — local_read.
    t = row(INVALID, "local_read")
    if t.next_state not in (SHARED, OWNER, EXCLUSIVE):
        findings.append(_row_finding("T002", t, "a load must leave a readable copy"))
    if t.bus_action != "read":
        findings.append(_row_finding("T002", t, "a read miss must issue a bus read"))
    for s in (SHARED, OWNER, EXCLUSIVE):
        t = row(s, "local_read")
        if t.next_state != s:
            findings.append(_row_finding("T002", t, "a local hit never changes the state"))
        if t.bus_action:
            findings.append(_row_finding("T002", t, "a local hit is silent on the bus"))

    # T003 — local_write.
    expected_bus = {INVALID: "read_excl", SHARED: "upgrade",
                    OWNER: "upgrade", EXCLUSIVE: ""}
    for s in STATES:
        t = row(s, "local_write")
        if t.next_state != EXCLUSIVE:
            findings.append(_row_finding(
                "T003", t, "after a store every other copy is erased, so the "
                "writer must end Exclusive"))
        if t.bus_action != expected_bus[s]:
            findings.append(_row_finding(
                "T003", t, f"store from {state_name(s)} must use bus action "
                f"{expected_bus[s] or 'none (silent)'!r}"))

    # T004 — remote events.
    for e in ("remote_read", "remote_write"):
        t = row(INVALID, e)
        if t.next_state is not None:
            findings.append(_row_finding(
                "T004", t, "a node without a copy is not involved in remote events"))
        for s in (SHARED, OWNER, EXCLUSIVE):
            t = row(s, e)
            if t.bus_action:
                findings.append(_row_finding(
                    "T004", t, "snooping a remote event issues no bus action"))
            if e == "remote_read":
                want = OWNER if s == EXCLUSIVE else s
                if t.next_state != want:
                    findings.append(_row_finding(
                        "T004", t, "a remote read preserves the copy "
                        "(Exclusive degrades to Owner: a replica now exists)"))
            else:
                if t.next_state != INVALID:
                    findings.append(_row_finding(
                        "T004", t, "a remote write erases every other copy"))

    # T005 — evict.
    t = row(INVALID, "evict")
    if t.next_state is not None:
        findings.append(_row_finding("T005", t, "nothing to evict from Invalid"))
    t = row(SHARED, "evict")
    if t.next_state != INVALID or t.bus_action:
        findings.append(_row_finding(
            "T005", t, "a Shared copy is dropped silently (an owner exists "
            "elsewhere)"))
    for s in (OWNER, EXCLUSIVE):
        t = row(s, "evict")
        if t.next_state != INVALID or t.bus_action != "replace":
            findings.append(_row_finding(
                "T005", t, "an owner may only leave by relocation: next state "
                "Invalid with a replace transaction"))

    # T006 — inject.
    for s in (OWNER, EXCLUSIVE):
        t = row(s, "inject")
        if t.next_state is not None:
            findings.append(_row_finding(
                "T006", t, "an owner cannot hold a second copy"))
    for s in (INVALID, SHARED):
        t = row(s, "inject")
        if t.next_state != EXCLUSIVE or t.next_state_sharers != OWNER:
            findings.append(_row_finding(
                "T006", t, "an accepted inject takes ownership: Exclusive "
                "when no sharer survives, Owner otherwise "
                "(next_state=E, next_state_sharers=O)"))
        if t.bus_action != "replace":
            findings.append(_row_finding(
                "T006", t, "accepting a relocation is part of the replace "
                "transaction"))
    for t in rows:
        if t.event != "inject" and t.next_state_sharers is not None:
            findings.append(_row_finding(
                "T006", t, "only inject rows are sharer-dependent"))

    # T007 — disabled rows are silent.
    for t in rows:
        if t.next_state is None and t.bus_action:
            findings.append(_row_finding(
                "T007", t, "a disallowed transition issues no bus transaction"))

    return findings


# ----------------------------------------------------------------------
# machine-wide state invariants
# ----------------------------------------------------------------------

def check_line_state(states: tuple[int, ...]) -> Optional[tuple[str, str]]:
    """Evaluate I001–I003 on one line's per-node states.

    Returns ``(rule_id, message)`` for the first violated invariant, or
    None.  (I004 is transition-based and checked by the model checker.)
    """
    owners = [n for n, s in enumerate(states) if s in (OWNER, EXCLUSIVE)]
    sharers = [n for n, s in enumerate(states) if s == SHARED]
    if len(owners) > 1:
        return "I001", (
            f"{len(owners)} owner copies (nodes {owners}) — the datum has "
            "forked; every materialized line must have exactly one owner"
        )
    if not owners:
        if sharers:
            return "I002", (
                f"Shared copies at nodes {sharers} with no owner anywhere — "
                "the authoritative copy was lost while replicas survive"
            )
        return "I001", (
            "no copy of the line anywhere — the machine lost its only copy "
            "(COMA has no backing memory to refetch from)"
        )
    if states[owners[0]] == EXCLUSIVE and sharers:
        return "I003", (
            f"node {owners[0]} is Exclusive while nodes {sharers} hold "
            "Shared copies — E must mean the only copy in the machine"
        )
    return None
