"""Coherence sanitizer: dynamic race, value and liveness checking (R/V/L rules).

A :class:`CoherenceSanitizer` is a :class:`repro.obs.sink.TraceSink` —
attach it to any simulation (``machine.set_trace(...)``, or tee it next
to other sinks) and it checks the live event stream against three
property families, reporting findings in the shared
:class:`repro.analysis.report.Finding` vocabulary:

* **R-rules — data races.**  A FastTrack-style vector-clock detector.
  Synchronization events (lock acquire/release, barrier arrive/depart —
  the ``syncop`` events the simulator emits) advance per-processor
  vector clocks; two accesses to the same byte address conflict when at
  least one is a store and neither happens-before the other.  Accesses
  to the ``sync`` segment (the lock/barrier words themselves) are
  exempt.  Workloads may additionally *declare* sharing patterns
  (:meth:`repro.workloads.base.Workload.declared_sharing`); an address
  in a segment declared private that is touched by two different
  processors is flagged even when the accesses are ordered.
* **V-rules — value integrity.**  A golden shadow memory
  (:class:`repro.mem.shadow.ShadowMemory`) tracks the last committed
  store per line; a per-node copy table, advanced by protocol
  transition and replacement events, tracks which nodes hold the line
  and at which version.  Reads served by a copy older than the golden
  version are stale (V001); relocations that move a stale copy
  propagate corruption (V002); hits, writes or relocations on copies
  the protocol never installed are lost-copy desyncs (V003).
* **L003 — relocation ping-pong.**  A runtime watchdog complementing
  the model-level liveness proof (:mod:`repro.analysis.liveness`): a
  line bouncing *back and forth between the same two nodes*, with no
  intervening processor access, is being shuffled by capacity pressure
  without serving anyone.  (A line merely wandering node to node is
  normal hot-potato migration at high memory pressure and is not
  flagged — only the two-node oscillation is a livelock symptom.)

Every finding carries the last ``window`` events (flight-recorder
style) in ``Finding.detail`` so the defect is diagnosable without
re-running.  Findings dedupe per (rule, location); rule IDs can be
suppressed with ``allow=...``.  ``coma-sim sanitize`` is the CLI front
end; the ``sanitizer`` pytest fixture attaches one to unit-test
machines.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Iterable, Optional

from repro.analysis.report import AnalysisReport, Finding
from repro.mem.shadow import ShadowMemory
from repro.obs.events import format_event
from repro.obs.sink import TraceSink
from repro.workloads.base import SHARING_PRIVATE, SHARING_SYNC

#: Default number of trailing events attached to each finding.
DEFAULT_WINDOW = 32
#: Consecutive bounce-backs of one line between the same two nodes,
#: with no intervening access, before the ping-pong watchdog fires.
DEFAULT_PINGPONG_THRESHOLD = 24
#: Total findings kept before the sanitizer stops recording new ones.
DEFAULT_MAX_FINDINGS = 100

#: Replacement outcomes that move the copy to another node.
_MOVING_OUTCOMES = frozenset({"to_sharer", "to_invalid", "to_shared", "cascade"})
#: Access levels served by a copy the local node must hold.
_LOCAL_LEVELS = frozenset({"l1", "slc", "am"})


class CoherenceSanitizer(TraceSink):
    """Checks a live event stream for races, stale values and ping-pong.

    Parameters
    ----------
    node_of:
        ``proc -> node`` mapping (default: identity, fine for synthetic
        streams and one-processor-per-node machines).
    segments:
        ``(name, base, end)`` triples describing the address space, used
        to attribute addresses to segments (end exclusive).
    sharing:
        segment name -> ``SHARING_*`` declaration.  The segment named
        ``"sync"`` is always treated as :data:`SHARING_SYNC`.
    allow:
        rule IDs to suppress (matching findings are counted, not kept).
    window:
        trailing events attached to each finding's detail.
    pingpong_threshold:
        chained relocations before L003 fires.
    max_findings:
        recording stops (counting continues) past this many findings.
    provenance:
        optional dict stamped into the report (see :func:`build_provenance`).
    """

    def __init__(
        self,
        *,
        node_of=None,
        segments: Iterable[tuple[str, int, int]] = (),
        sharing: Optional[dict[str, str]] = None,
        allow: Iterable[str] = (),
        window: int = DEFAULT_WINDOW,
        pingpong_threshold: int = DEFAULT_PINGPONG_THRESHOLD,
        max_findings: int = DEFAULT_MAX_FINDINGS,
        provenance: Optional[dict] = None,
    ) -> None:
        self._node_of = node_of if node_of is not None else (lambda p: p)
        segs = sorted(segments, key=lambda s: s[1])
        self._seg_bases = [s[1] for s in segs]
        self._segs = segs
        self.sharing = dict(sharing or {})
        self.allow = frozenset(allow)
        self.pingpong_threshold = pingpong_threshold
        self.max_findings = max_findings
        self.provenance = provenance
        self._window: deque[str] = deque(maxlen=max(1, window))

        # -- R-rules: vector clocks ------------------------------------
        self._vc: dict[int, dict[int, int]] = {}
        self._lock_vc: dict[int, dict[int, int]] = {}
        self._barrier_pending: dict[int, dict[int, int]] = {}
        self._barrier_episode: dict[int, dict[int, int]] = {}
        self._barrier_departing: dict[int, bool] = {}
        #: addr -> (proc, clock, t) of the last store
        self._last_write: dict[int, tuple[int, int, int]] = {}
        #: addr -> {proc: (clock, t)} reads since the last store
        self._reads: dict[int, dict[int, tuple[int, int]]] = {}
        #: addr -> first proc to touch a private-declared address
        self._private_owner: dict[int, int] = {}

        # -- V-rules: golden memory + copy table -----------------------
        self.golden = ShadowMemory()
        #: line -> {node: installed version}
        self._copies: dict[int, dict[int, int]] = {}
        #: version carried by the replacement event preceding an inject
        self._pending_reloc: Optional[tuple[int, int]] = None

        # -- L003: ping-pong watchdog ----------------------------------
        #: line -> (bounce count, last hop's src, last hop's dst)
        self._pingpong: dict[int, tuple[int, int, int]] = {}

        self.findings: list[Finding] = []
        self._seen_keys: set[tuple] = set()
        self.stats: dict[str, int] = {
            "events": 0, "accesses": 0, "syncops": 0,
            "transitions": 0, "replacements": 0, "suppressed": 0,
        }

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def emit(self, ev) -> None:
        self.stats["events"] += 1
        self._window.append(format_event(ev))
        kind = ev.kind
        if kind == "access":
            self.stats["accesses"] += 1
            self._on_access(ev)
        elif kind == "transition":
            self.stats["transitions"] += 1
            self._on_transition(ev)
        elif kind == "replacement":
            self.stats["replacements"] += 1
            self._on_replacement(ev)
        elif kind == "syncop":
            self.stats["syncops"] += 1
            self._on_syncop(ev)
        # bus / sync-stall events only contribute to the window

    # ------------------------------------------------------------------
    # R-rules: happens-before race detection
    # ------------------------------------------------------------------

    def _proc_vc(self, proc: int) -> dict[int, int]:
        vc = self._vc.get(proc)
        if vc is None:
            vc = {proc: 1}
            self._vc[proc] = vc
        return vc

    @staticmethod
    def _join(into: dict[int, int], other: Optional[dict[int, int]]) -> None:
        if not other:
            return
        for p, c in other.items():
            if into.get(p, 0) < c:
                into[p] = c

    def _on_syncop(self, ev) -> None:
        vc = self._proc_vc(ev.proc)
        if ev.primitive == "lock":
            if ev.op == "acquire":
                self._join(vc, self._lock_vc.get(ev.obj))
            elif ev.op == "release":
                self._lock_vc[ev.obj] = dict(vc)
                vc[ev.proc] += 1
        elif ev.primitive == "barrier":
            if ev.op == "arrive":
                if self._barrier_departing.get(ev.obj):
                    # first arrival of a new episode
                    self._barrier_pending[ev.obj] = {}
                    self._barrier_departing[ev.obj] = False
                pending = self._barrier_pending.setdefault(ev.obj, {})
                self._join(pending, vc)
            elif ev.op == "depart":
                if not self._barrier_departing.get(ev.obj):
                    # first departure: the episode's join is complete
                    self._barrier_episode[ev.obj] = dict(
                        self._barrier_pending.get(ev.obj, {})
                    )
                    self._barrier_departing[ev.obj] = True
                self._join(vc, self._barrier_episode.get(ev.obj))
                vc[ev.proc] += 1

    def _segment_of(self, addr: int) -> Optional[tuple[str, int, int]]:
        i = bisect.bisect_right(self._seg_bases, addr) - 1
        if i >= 0 and addr < self._segs[i][2]:
            return self._segs[i]
        return None

    def _race_check(self, ev) -> None:
        addr = ev.addr
        if addr < 0:
            return  # pre-addr trace; race detection needs byte addresses
        seg = self._segment_of(addr)
        seg_name = seg[0] if seg else None
        pattern = self.sharing.get(seg_name) if seg_name else None
        if seg_name == "sync" or pattern == SHARING_SYNC:
            return
        u = ev.proc
        vc = self._proc_vc(u)
        where = f"addr {addr:#x}" + (f" ({seg_name})" if seg_name else "")

        if pattern == SHARING_PRIVATE:
            owner = self._private_owner.setdefault(addr, u)
            if owner != u:
                self._report(
                    "R003", ("R003", addr),
                    f"{where}: declared private but touched by P{owner} "
                    f"and P{u} ({ev.op} at t={ev.t}) — partitioning bug "
                    "in the workload",
                    where,
                )

        lw = self._last_write.get(addr)
        if lw is not None:
            w, c, tw = lw
            if w != u and vc.get(w, 0) < c:
                rule = "R001" if ev.op != "r" else "R002"
                what = ("write/write" if ev.op != "r" else "write/read")
                self._report(
                    rule, (rule, addr),
                    f"{where}: {what} race — P{w} stored at t={tw} and "
                    f"P{u} {_opname(ev.op)} at t={ev.t} with no "
                    "happens-before ordering (missing lock or barrier)",
                    where,
                )
        if ev.op == "r":
            self._reads.setdefault(addr, {})[u] = (vc[u], ev.t)
        else:
            reads = self._reads.get(addr)
            if reads:
                for r, (c, tr) in reads.items():
                    if r != u and vc.get(r, 0) < c:
                        self._report(
                            "R002", ("R002", addr),
                            f"{where}: read/write race — P{r} loaded at "
                            f"t={tr} and P{u} {_opname(ev.op)} at t={ev.t} "
                            "with no happens-before ordering",
                            where,
                        )
                        break
            self._reads[addr] = {}
            self._last_write[addr] = (u, vc[u], ev.t)

    # ------------------------------------------------------------------
    # V-rules: golden shadow memory
    # ------------------------------------------------------------------

    def _on_access(self, ev) -> None:
        self._race_check(ev)
        line = ev.line
        node = self._node_of(ev.proc)
        self._pingpong.pop(line, None)  # a demand access ends any chain
        copies = self._copies.setdefault(line, {})
        where = f"line {line:#x}"
        if ev.op == "r" or ev.op == "rmw":
            v = copies.get(node)
            if v is None:
                if ev.op == "r" and ev.level in _LOCAL_LEVELS:
                    self._report(
                        "V003", ("V003", line),
                        f"{where}: P{ev.proc} read hit at {ev.level} on "
                        f"node {node} but the protocol never installed a "
                        "copy there — copy tracking lost the line",
                        where,
                    )
            elif v < self.golden.version(line):
                gv, gw, gt = self.golden.last(line)
                self._report(
                    "V001", ("V001", line),
                    f"{where}: stale read — P{ev.proc} read version {v} "
                    f"on node {node} but P{gw} committed version {gv} at "
                    f"t={gt} (a missed invalidation left the copy behind)",
                    where,
                )
        if ev.op != "r":
            version = self.golden.commit(line, ev.proc, ev.t)
            if node not in copies and ev.level in _LOCAL_LEVELS:
                self._report(
                    "V003", ("V003", line),
                    f"{where}: P{ev.proc} store completed at {ev.level} on "
                    f"node {node} with no copy installed there",
                    where,
                )
            copies[node] = version

    def _on_transition(self, ev) -> None:
        line, node = ev.line, ev.node
        copies = self._copies.setdefault(line, {})
        where = f"line {line:#x}"
        if ev.after == "I":
            # invalidate / drop: the node's copy is gone.
            copies.pop(node, None)
            return
        if ev.cause == "inject":
            if ev.before == "S":
                # ownership moved onto an existing replica
                if node not in copies:
                    self._report(
                        "V003", ("V003", line),
                        f"{where}: inject onto node {node} claims a Shared "
                        "replica that copy tracking never saw",
                        where,
                    )
                    copies[node] = self.golden.version(line)
                return
            # fresh copy carries the relocated data's version
            if (self._pending_reloc is not None
                    and self._pending_reloc[0] == line):
                copies[node] = self._pending_reloc[1]
                self._pending_reloc = None
            else:
                copies[node] = self.golden.version(line)
            return
        if ev.cause in ("materialize", "fill", "read_exclusive"):
            copies[node] = self.golden.version(line)
            return
        # state-only changes (remote_read E->O, upgrade S/O->E): the copy
        # and its version are retained.
        if node not in copies:
            copies[node] = self.golden.version(line)

    def _on_replacement(self, ev) -> None:
        line = ev.line
        where = f"line {line:#x}"
        if ev.outcome == "uncached":
            return
        copies = self._copies.setdefault(line, {})
        if ev.outcome in ("overflow_park", "to_slc"):
            if ev.src not in copies:
                self._report(
                    "V003", ("V003", line),
                    f"{where}: {ev.outcome} at node {ev.src} but copy "
                    "tracking shows no copy there",
                    where,
                )
            return
        if ev.outcome not in _MOVING_OUTCOMES:
            return
        v = copies.pop(ev.src, None)
        if v is None:
            self._report(
                "V003", ("V003", line),
                f"{where}: relocation {ev.outcome} out of node {ev.src} "
                "but copy tracking shows no copy there — the line was "
                "already lost",
                where,
            )
        elif v < self.golden.version(line):
            gv, gw, gt = self.golden.last(line)
            self._report(
                "V002", ("V002", line),
                f"{where}: stale relocation — node {ev.src} relocated "
                f"version {v} to node {ev.dst} but P{gw} committed "
                f"version {gv} at t={gt}; the stale value now spreads",
                where,
            )
        self._pending_reloc = (line, v if v is not None
                               else self.golden.version(line))
        self._watch_pingpong(ev, where)

    # ------------------------------------------------------------------
    # L003: relocation ping-pong watchdog
    # ------------------------------------------------------------------

    def _watch_pingpong(self, ev, where: str) -> None:
        line = ev.line
        prev = self._pingpong.get(line)
        # A bounce is a hop that exactly reverses the previous one:
        # ...A -> B, then B -> A.  A line moving on to a *third* node is
        # ordinary hot-potato migration under pressure and resets the
        # count.
        if prev is not None and prev[2] == ev.src and prev[1] == ev.dst:
            count = prev[0] + 1
        else:
            count = 1
        self._pingpong[line] = (count, ev.src, ev.dst)
        if count >= self.pingpong_threshold:
            self._report(
                "L003", ("L003", line),
                f"{where}: relocation ping-pong — bounced between node "
                f"{ev.dst} and node {ev.src} {count} times in a row "
                f"(last hop at t={ev.t}) with no processor access in "
                "between; the copies are shuttling without serving anyone",
                where,
            )

    # ------------------------------------------------------------------
    # findings plumbing
    # ------------------------------------------------------------------

    def _report(self, rule: str, key: tuple, message: str, where: str) -> None:
        if key in self._seen_keys:
            return
        self._seen_keys.add(key)
        if rule in self.allow:
            self.stats["suppressed"] += 1
            return
        if len(self.findings) >= self.max_findings:
            self.stats["findings_dropped"] = (
                self.stats.get("findings_dropped", 0) + 1
            )
            return
        detail = "last events before the finding:\n" + "\n".join(
            "  " + line for line in self._window
        )
        self.findings.append(
            Finding(rule=rule, message=message, path=where, detail=detail)
        )

    def finish(self) -> AnalysisReport:
        """Close out the run and return the aggregate report."""
        report = AnalysisReport(findings=list(self.findings),
                                stats=dict(self.stats))
        report.stats["lines_tracked"] = len(self._copies)
        report.stats["addrs_tracked"] = len(self._last_write)
        return report


def _opname(op: str) -> str:
    return {"r": "loaded", "w": "stored", "rmw": "read-modify-wrote"}.get(op, op)


# ----------------------------------------------------------------------
# wiring helpers
# ----------------------------------------------------------------------

def sanitizer_for(sim, spec=None, **kwargs) -> CoherenceSanitizer:
    """Build a sanitizer configured for a :class:`Simulation`.

    Pulls the processor-to-node mapping and segment map off the machine
    and the sharing declarations off the workload (when the runner
    attached one).  Attach the result with ``sim.machine.set_trace(...)``
    (or tee it) *before* ``sim.run()`` — copy tracking must see the
    stream from the first materialization.
    """
    machine = sim.machine
    config = machine.config
    segments = [(s.name, s.base, s.end) for s in machine.space.segments]
    sharing = {}
    wl = getattr(sim, "workload", None)
    if wl is not None:
        sharing.update(wl.declared_sharing())
    sharing.setdefault("sync", SHARING_SYNC)
    if spec is not None and "provenance" not in kwargs:
        kwargs["provenance"] = build_provenance(spec)
    return CoherenceSanitizer(
        node_of=config.node_of_proc,
        segments=segments,
        sharing=sharing,
        **kwargs,
    )


def build_provenance(spec) -> dict:
    """Provenance stamp for sanitizer reports (PR-2 manifest vocabulary)."""
    from dataclasses import asdict

    from repro import __version__
    from repro.experiments.runner import CACHE_VERSION
    from repro.obs.manifest import git_revision

    return {
        "spec": asdict(spec),
        "seed": spec.seed,
        "cache_version": CACHE_VERSION,
        "repro": __version__,
        "git_rev": git_revision() or "unknown",
    }
