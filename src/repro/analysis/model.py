"""Abstract global-state semantics of the E/O/S/I protocol.

The declarative table in :mod:`repro.coma.protocol` describes one node's
copy of a line.  This module lifts it to a *machine-wide* transition
system over small configurations so the model checker can enumerate every
reachable global state: a global state assigns one of I/S/O/E to each
(line, node) pair, and a step is a locally-triggered event — a load, a
store or an eviction at one node — together with the bus side effects the
table prescribes for every other node.

The lifting rules mirror the simulator exactly:

* a ``local_read``/``local_write`` whose table row carries a bus action
  makes every other node snoop the matching remote event (``read`` →
  ``remote_read``; ``read_excl``/``upgrade`` → ``remote_write``);
* an eviction whose row carries ``replace`` is the accept-based
  relocation: some *receiver* node applies its ``inject`` row, resolved
  against the surviving sharer set (:meth:`Transition.resolved`).  All
  possible receivers are explored nondeterministically;
* evictions of Shared copies are silent local drops.

Lines do not interact (the abstract model has no capacity), so multiple
lines compose as an interleaved product — useful for checking that the
invariants are genuinely per-line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.coma.protocol import EVENTS, STATES, TRANSITIONS, Transition
from repro.coma.states import EXCLUSIVE, INVALID, SHARED, state_name

#: Events a node can trigger on its own; the remaining events in
#: :data:`repro.coma.protocol.EVENTS` only ever occur as side effects.
LOCAL_EVENTS = ("local_read", "local_write", "evict")

#: Per-line global state: one protocol state per node.
LineState = tuple[int, ...]
#: Full global state: one LineState per modeled line.
GlobalState = tuple[LineState, ...]


@dataclass(frozen=True)
class Step:
    """One atomic global transition: ``event`` triggered at ``node`` for
    ``line``, relocating into ``receiver`` when the event is an owner
    eviction."""

    line: int
    node: int
    event: str
    receiver: Optional[int] = None

    def describe(self) -> str:
        s = f"node {self.node} {self.event}"
        if self.receiver is not None:
            s += f" -> inject@node {self.receiver}"
        if self.line:
            s += f" [line {self.line}]"
        return s


def format_line_state(states: LineState) -> str:
    return " ".join(state_name(s) for s in states)


def format_global_state(gs: GlobalState) -> str:
    return " | ".join(format_line_state(ls) for ls in gs)


class ProtocolModel:
    """The table lifted to a finite transition system."""

    def __init__(
        self,
        transitions: Sequence[Transition] | Mapping[tuple[int, str], Transition] = TRANSITIONS,
        n_nodes: int = 3,
        n_lines: int = 1,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("the protocol is only meaningful with >= 2 nodes")
        if n_lines < 1:
            raise ValueError("need at least one line")
        if isinstance(transitions, Mapping):
            self.table = dict(transitions)
        else:
            self.table = {(t.state, t.event): t for t in transitions}
        self.n_nodes = n_nodes
        self.n_lines = n_lines

    # ------------------------------------------------------------------
    def initial_state(self) -> GlobalState:
        """Every line freshly materialized at node 0 in Exclusive state —
        exactly what first-touch page allocation produces.  All other
        owner placements are reachable from here by relocation, so one
        symmetric start suffices."""
        ls = (EXCLUSIVE,) + (INVALID,) * (self.n_nodes - 1)
        return (ls,) * self.n_lines

    def _row(self, state: int, event: str) -> Optional[Transition]:
        return self.table.get((state, event))

    # ------------------------------------------------------------------
    def steps(self, gs: GlobalState) -> list[Step]:
        """All steps enabled in ``gs`` (excluding stuck relocations)."""
        out: list[Step] = []
        for line, ls in enumerate(gs):
            for node, state in enumerate(ls):
                for event in LOCAL_EVENTS:
                    row = self._row(state, event)
                    if row is None or row.next_state is None:
                        continue
                    if event == "evict" and row.bus_action == "replace":
                        for rcv in self.receivers(ls, node):
                            out.append(Step(line, node, event, rcv))
                    else:
                        out.append(Step(line, node, event))
        return out

    def stuck_relocations(self, gs: GlobalState) -> list[Step]:
        """Owner evictions that are enabled but have no willing receiver:
        applying one would drop the machine's last copy of the line."""
        out: list[Step] = []
        for line, ls in enumerate(gs):
            for node, state in enumerate(ls):
                row = self._row(state, "evict")
                if row is None or row.next_state is None:
                    continue
                if row.bus_action == "replace" and not self.receivers(ls, node):
                    out.append(Step(line, node, "evict"))
        return out

    def receivers(self, ls: LineState, evictor: int) -> list[int]:
        """Nodes whose ``inject`` row can accept a relocated line."""
        out = []
        for node, state in enumerate(ls):
            if node == evictor:
                continue
            row = self._row(state, "inject")
            if row is not None and row.next_state is not None:
                out.append(node)
        return out

    # ------------------------------------------------------------------
    def apply(self, gs: GlobalState, step: Step) -> GlobalState:
        """The global state after ``step``."""
        ls = list(gs[step.line])
        actor = step.node
        row = self._row(ls[actor], step.event)
        if row is None or row.next_state is None:
            raise ValueError(f"step not enabled: {step.describe()}")

        # Bus side effects: every other node snoops the matching remote
        # event.  (``replace`` is handled below via the receiver.)
        if row.bus_action == "read":
            self._broadcast(ls, actor, "remote_read")
        elif row.bus_action in ("read_excl", "upgrade"):
            self._broadcast(ls, actor, "remote_write")

        ls[actor] = row.next_state

        if step.receiver is not None:
            rcv_row = self._row(ls[step.receiver], "inject")
            if rcv_row is None or rcv_row.next_state is None:
                raise ValueError(f"receiver cannot accept: {step.describe()}")
            sharers_exist = any(
                s == SHARED
                for n, s in enumerate(ls)
                if n not in (actor, step.receiver)
            )
            ls[step.receiver] = rcv_row.resolved(sharers_exist)

        new = list(gs)
        new[step.line] = tuple(ls)
        return tuple(new)

    def _broadcast(self, ls: list[int], actor: int, remote_event: str) -> None:
        for node in range(self.n_nodes):
            if node == actor:
                continue
            row = self._row(ls[node], remote_event)
            if row is not None and row.next_state is not None:
                ls[node] = row.next_state


def table_from(
    transitions: Iterable[Transition],
) -> dict[tuple[int, str], Transition]:
    """Index a transition sequence by (state, event), last row winning —
    handy for building mutated tables in tests."""
    return {(t.state, t.event): t for t in transitions}


def all_pairs() -> list[tuple[int, str]]:
    """Every (state, event) pair the table must cover."""
    return [(s, e) for s in STATES for e in EVENTS]
