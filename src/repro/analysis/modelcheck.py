"""Exhaustive model checker for the E/O/S/I protocol table.

Breadth-first enumeration of every reachable global state of
:class:`repro.analysis.model.ProtocolModel` for a small configuration
(2–4 nodes, 1–2 lines), evaluating the machine-wide invariants of
:mod:`repro.analysis.invariants` on every state and the no-lost-copy
rule on every relocation.  BFS order makes the first violation's event
trace *minimal*: the shortest interleaving that corrupts the protocol.

The state space is tiny (≤ 4^(nodes·lines) states), so exhaustive search
is instant — the value is that *all* interleavings are covered, where the
test suite can only spot-check a handful.

Typical use::

    from repro.analysis.modelcheck import check_protocol, format_report

    report = check_protocol(n_nodes=3)
    assert report.ok, format_report(report)
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.invariants import check_line_state, check_table
from repro.analysis.model import (
    GlobalState,
    ProtocolModel,
    Step,
    format_global_state,
)
from repro.analysis.report import AnalysisReport, Finding
from repro.coma.protocol import TRANSITIONS, Transition

#: Hard backstop; real configurations explore far fewer states.
MAX_STATES = 1_000_000


def check_protocol(
    transitions: Sequence[Transition] = TRANSITIONS,
    n_nodes: int = 3,
    n_lines: int = 1,
    max_states: int = MAX_STATES,
    static: bool = True,
) -> AnalysisReport:
    """Run the static table rules and the exhaustive reachability check.

    Returns an :class:`AnalysisReport`; ``report.stats`` carries the
    explored state/transition counts, and a reachable invariant violation
    carries its minimal counterexample trace in ``Finding.detail``.
    """
    report = AnalysisReport()
    if static:
        report.findings.extend(check_table(transitions))

    model = ProtocolModel(transitions, n_nodes=n_nodes, n_lines=n_lines)
    init = model.initial_state()

    # parent[state] = (previous state, step that reached it); FIFO order
    # makes discovery depths — and therefore counterexamples — minimal.
    parent: dict[GlobalState, Optional[tuple[GlobalState, Step]]] = {init: None}
    queue = deque([init])
    n_transitions = 0
    violation: Optional[Finding] = None
    truncated = False

    while queue and violation is None and not truncated:
        state = queue.popleft()
        violation = _check_state(model, state, parent)
        if violation is not None:
            break
        for step in model.steps(state):
            n_transitions += 1
            succ = model.apply(state, step)
            if succ not in parent:
                if len(parent) >= max_states:
                    truncated = True
                    break
                parent[succ] = (state, step)
                queue.append(succ)

    if truncated:
        report.findings.append(Finding(
            rule="I001",
            message=f"state-space exceeded {max_states} states — the table "
            "very likely leaks copies",
            path="model-check",
        ))
    if violation is not None:
        report.findings.append(violation)
    report.stats["states"] = len(parent)
    report.stats["transitions"] = n_transitions
    return report


def _check_state(
    model: ProtocolModel,
    state: GlobalState,
    parent: dict[GlobalState, Optional[tuple[GlobalState, Step]]],
) -> Optional[Finding]:
    """First invariant violation in ``state``, with its trace attached."""
    for line, ls in enumerate(state):
        hit = check_line_state(ls)
        if hit is not None:
            rule, message = hit
            if line:
                message = f"line {line}: {message}"
            return Finding(
                rule=rule,
                message=message,
                path="model-check",
                detail=format_trace(trace_to(state, parent)),
            )
    for step in model.stuck_relocations(state):
        trace = trace_to(state, parent) + [(step, None)]
        return Finding(
            rule="I004",
            message=f"{step.describe()}: the owner must evict but no node "
            "can accept the relocation — the last copy would be dropped",
            path="model-check",
            detail=format_trace(trace),
        )
    return None


def trace_to(
    state: GlobalState,
    parent: dict[GlobalState, Optional[tuple[GlobalState, Step]]],
) -> list[tuple[Optional[Step], Optional[GlobalState]]]:
    """Reconstruct the (step, resulting state) path from the initial
    state to ``state``; the first entry has step None (the initial state)."""
    path: list[tuple[Optional[Step], Optional[GlobalState]]] = []
    cur: Optional[GlobalState] = state
    while cur is not None:
        link = parent[cur]
        if link is None:
            path.append((None, cur))
            cur = None
        else:
            prev, step = link
            path.append((step, cur))
            cur = prev
    path.reverse()
    return path


def format_trace(
    trace: list[tuple[Optional[Step], Optional[GlobalState]]],
) -> str:
    """Render a counterexample as numbered events with per-node states."""
    lines = ["counterexample trace (states are per-node, nodes left to right):"]
    for i, (step, state) in enumerate(trace):
        states = format_global_state(state) if state is not None else "(would lose the line)"
        if step is None:
            lines.append(f"  init: {states}")
        else:
            lines.append(f"  step {i}: {step.describe():40s} -> {states}")
    return "\n".join(lines)


def format_report(report: AnalysisReport) -> str:
    from repro.analysis.report import format_findings

    head = (
        f"explored {report.stats.get('states', 0)} states / "
        f"{report.stats.get('transitions', 0)} transitions"
    )
    if report.ok:
        return f"protocol OK: {head}, no invariant violations"
    return f"protocol BROKEN ({head}):\n{format_findings(report.findings)}"
