"""Static latency bounds derived from the compiled dispatch.

The span trees of :mod:`repro.obs.spans` decompose every access into
phase children whose durations sum to the access latency by
construction.  This module derives, *without simulating*, the set of
phase sequences each machine flavour can emit and a closed-form
min/max duration expression for every phase — straight from the
compiled protocol table (:mod:`repro.analysis.compile`) and the named
timing parameters of :class:`repro.common.config.TimingConfig`.

Two kinds of envelope exist, and conflating them would make the
analysis unsound:

* **exact** segments — a fixed number of wire/array cycles follows the
  checkpoint that opens them (a bus transfer after an explicit
  arbitration cut, a directory lookup, the fixed remote overhead).
  These carry a finite max and any excursion is a timing-model bug.
* **min-only** segments — the cut embeds a queueing wait (NC ports,
  DRAM banks, bus arbitration).  Contention can stretch them without
  bound, so only the lower bound is static; the upper bound is
  ``None`` (rendered "unbounded(contention)").

:class:`BoundsCertifier` is a :class:`~repro.obs.sink.TraceSink` that
replays observed span trees against the enumerated path set:

==== ==============================================================
B101 a span phase exceeds its static maximum (exact segment)
B102 a span phase is shorter than its static minimum
B103 the phase sequence is not in the enumerated path set
==== ==============================================================

Each violation carries a minimal witness: the offending span tree plus
the closest statically enumerated path.  ``coma-sim bounds <wl>
--check`` runs a workload under the certifier and exits non-zero on
any violation; ``coma-sim bounds`` alone prints the symbolic bound
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.compile import ACTIONS, EVENT_IDS, NO_NEXT, compile_protocol
from repro.analysis.report import Finding
from repro.coma.protocol import TRANSITIONS, Transition
from repro.coma.states import state_name
from repro.common.config import TimingConfig
from repro.obs.events import EV_SPAN, SpanEvent
from repro.obs.sink import TraceSink
from repro.obs.spans import SpanTreeAssembler, format_span_tree

#: Rule catalogue (merged into the registry in repro.analysis.report).
BOUNDS_RULES: dict[str, str] = {
    "B101": "observed span phase exceeds its static maximum — an exact "
            "segment (bus transfer after an arbitration cut, directory "
            "lookup, fixed remote overhead) took longer than the timing "
            "table allows",
    "B102": "observed span phase is shorter than its static minimum — "
            "the access skipped latency the timing table says is "
            "unavoidable on that path",
    "B103": "observed phase sequence is not in the statically enumerated "
            "path set for its (op, level) class",
}

#: Machine flavours the analyzer knows how to enumerate.
FLAVOURS: tuple[str, ...] = ("coma", "hcoma", "numa")

#: Canonical timing parameter names the expressions range over.
PARAMS: tuple[str, ...] = (
    "l1_hit", "slc_hit", "nc", "dram_lat", "bus_phase", "remote_overhead",
)


# ----------------------------------------------------------------------
# symbolic linear expressions over timing parameters
# ----------------------------------------------------------------------


class Expr:
    """A linear combination of timing parameters plus a constant.

    Immutable by convention; arithmetic returns new objects.  Rendering
    is canonical (parameters in :data:`PARAMS` order) so expressions are
    directly comparable as strings in tests and reports.
    """

    __slots__ = ("const", "terms")

    def __init__(self, const: int = 0,
                 terms: Optional[Mapping[str, int]] = None) -> None:
        self.const = const
        self.terms: dict[str, int] = {
            k: v for k, v in (terms or {}).items() if v
        }

    @classmethod
    def of(cls, *params: str, const: int = 0) -> "Expr":
        """``Expr.of("nc", "nc", "dram_lat")`` -> ``2*nc + dram_lat``."""
        terms: dict[str, int] = {}
        for p in params:
            if p not in PARAMS:
                raise ValueError(f"unknown timing parameter {p!r}")
            terms[p] = terms.get(p, 0) + 1
        return cls(const, terms)

    def __add__(self, other: "Expr") -> "Expr":
        terms = dict(self.terms)
        for k, v in other.terms.items():
            terms[k] = terms.get(k, 0) + v
        return Expr(self.const + other.const, terms)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Expr) and self.const == other.const
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash((self.const, tuple(sorted(self.terms.items()))))

    def __repr__(self) -> str:
        return f"Expr({self.render()!r})"

    @property
    def is_zero(self) -> bool:
        return self.const == 0 and not self.terms

    def render(self) -> str:
        parts: list[str] = []
        for p in PARAMS:
            c = self.terms.get(p, 0)
            if c == 1:
                parts.append(p)
            elif c:
                parts.append(f"{c}*{p}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)

    def evaluate(self, params: Mapping[str, int]) -> int:
        total = self.const
        for p, c in self.terms.items():
            total += c * params[p]
        return total


ZERO: Expr = Expr()


def timing_params(timing: Any = None) -> dict[str, int]:
    """The named parameter values, from a :class:`TimingConfig` or a
    compiled :class:`~repro.analysis.compile.CompiledTiming` (or the
    defaults when ``timing`` is None)."""
    if timing is None:
        timing = TimingConfig()
    if hasattr(timing, "l1_hit_ns"):  # TimingConfig
        return {
            "l1_hit": timing.l1_hit_ns,
            "slc_hit": timing.slc_hit_ns,
            "nc": timing.nc_ns,
            "dram_lat": timing.dram_latency_ns,
            "bus_phase": timing.bus_phase_ns,
            "remote_overhead": timing.remote_overhead_ns,
        }
    return {  # CompiledTiming
        "l1_hit": timing.l1_hit,
        "slc_hit": timing.slc_hit,
        "nc": timing.nc,
        "dram_lat": timing.dram_lat,
        "bus_phase": timing.bus_phase,
        "remote_overhead": timing.remote_overhead,
    }


# ----------------------------------------------------------------------
# path templates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One phase of a statically enumerated path.

    ``max_`` is ``None`` when the segment embeds a queueing wait:
    contention can stretch it without bound, so only the minimum is a
    static fact.
    """

    name: str
    min_: Expr
    max_: Optional[Expr]
    note: str = ""


def _exact(name: str, expr: Expr, note: str = "") -> Segment:
    return Segment(name, expr, expr, note)


def _atleast(name: str, expr: Expr, note: str = "") -> Segment:
    return Segment(name, expr, None, note)


def _wait(name: str, note: str = "") -> Segment:
    return Segment(name, ZERO, None, note)


@dataclass(frozen=True)
class PathTemplate:
    """One root-to-leaf phase path through a machine flavour's dispatch,
    keyed by the (op, level, state, sharers) cell it serves."""

    op: str
    level: str
    state: str    # initial protocol state of the accessing node, or "-"
    sharers: str  # "-", "alone" or "sharers"
    segments: tuple[Segment, ...]
    note: str = ""

    @property
    def min_(self) -> Expr:
        total = ZERO
        for seg in self.segments:
            total = total + seg.min_
        return total

    @property
    def max_(self) -> Optional[Expr]:
        total = ZERO
        for seg in self.segments:
            if seg.max_ is None:
                return None
            total = total + seg.max_
        return total

    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.segments)


def _hit_paths(op: str, state: str) -> list[PathTemplate]:
    """Silent local hits: the level is a cache-residency fact, not a
    protocol fact, so every silent state offers all three."""
    slc_tail = (
        [_wait("slc_wait", "SLC port queue"),
         _exact("slc", Expr.of("slc_hit"))]
        if op == "r" else
        # Writes fold the SLC port wait into the tail cut.
        [_atleast("slc", Expr.of("slc_hit"), "SLC port queue + array")]
    )
    am = _atleast("am", Expr.of("nc", "nc", "dram_lat"),
                  "NC out + AM DRAM + NC back, each behind a queue")
    return [
        PathTemplate(op, "l1", state, "-",
                     (_exact("l1", Expr.of("l1_hit")),)),
        PathTemplate(op, "slc", state, "-", tuple(slc_tail)),
        PathTemplate(op, "am", state, "-", (am,)),
    ]


def _remote_core(flavour: str) -> list[list[Segment]]:
    """The request/response interconnect crossings of a remote fetch, up
    to data arrival at the local controller (one variant per route)."""
    nc = Expr.of("nc")
    bus = Expr.of("bus_phase")
    ram = Expr.of("nc", "dram_lat")
    if flavour in ("coma", "numa"):
        return [[
            _atleast("nc_out", nc),
            _wait("bus_arb"),
            _exact("bus_req", bus),
            _atleast("remote_am", ram, "owner NC + AM DRAM"),
            _wait("bus_arb"),
            _exact("bus_reply", bus),
            _atleast("nc_ret", nc),
        ]]
    # hcoma: snooped within the group, or forwarded over the top bus.
    in_group = [
        _atleast("nc_out", nc),
        _wait("bus_arb"),
        _exact("gbus_req", bus),
        _atleast("remote_am", ram, "owner NC + AM DRAM"),
        _wait("bus_arb"),
        _exact("gbus_reply", bus),
        _atleast("nc_ret", nc),
    ]
    cross_group = [
        _atleast("nc_out", nc),
        _wait("bus_arb"),
        _exact("gbus_req", bus),
        _exact("dir_lookup", nc, "local group directory"),
        _wait("bus_arb"),
        _exact("tbus_req", bus),
        _exact("dir_lookup", nc, "owner group directory"),
        _wait("bus_arb"),
        _exact("gbus_req", bus, "descend into the owner group"),
        _atleast("remote_am", ram, "owner NC + AM DRAM"),
        _atleast("gbus_reply", Expr.of("bus_phase"),
                 "owner group reply; arbitration folded into the cut"),
        _wait("bus_arb"),
        _exact("tbus_reply", bus),
        _atleast("gbus_reply", Expr.of("nc", "bus_phase"),
                 "descent into the local group + its directory"),
        _atleast("nc_ret", nc),
    ]
    return [in_group, cross_group]


def _upgrade_prefix() -> list[Segment]:
    return [
        _atleast("nc_out", Expr.of("nc")),
        _atleast("upgrade_bus", Expr.of("bus_phase"),
                 "erase broadcast; arbitration (and, hierarchical, the "
                 "top-bus crossing) folded into the cut"),
    ]


def enumerate_paths(
    flavour: str,
    transitions: Sequence[Transition] = TRANSITIONS,
) -> tuple[PathTemplate, ...]:
    """Every root-to-leaf phase path ``flavour`` can emit, per
    (op, level, state, sharers) cell, derived from the compiled table.

    The protocol table decides *which* paths exist (a silent
    ``local_write`` stays local; an ``upgrade`` action prepends the
    erase broadcast; ``read``/``read_excl`` cross the interconnect);
    the flavour decides what the interconnect crossing looks like.
    """
    if flavour not in FLAVOURS:
        raise ValueError(f"unknown machine flavour {flavour!r}; "
                         f"expected one of {FLAVOURS}")
    compiled = compile_protocol(tuple(transitions))
    ev_read = EVENT_IDS["local_read"]
    ev_write = EVENT_IDS["local_write"]
    dram = Expr.of("dram_lat")
    overhead = Expr.of("remote_overhead")
    # COMA allocates after the data lands (a DRAM write behind a queue);
    # NUMA's home already did, so its fill is a fixed-latency tail.
    fill = (_exact("fill_dram", dram) if flavour == "numa"
            else _atleast("fill_dram", dram, "local AM allocate"))
    tail = _exact("remote", overhead, "fixed remote overhead")
    out: list[PathTemplate] = []
    for op, event in (("r", ev_read), ("w", ev_write), ("rmw", ev_write)):
        for state_id in range(4):
            nxt, _, action_id = compiled.entry(state_id, event)
            if nxt == NO_NEXT:
                continue
            state = state_name(state_id)
            action = ACTIONS[action_id]
            if action == "":
                out.extend(_hit_paths(op, state))
            elif action == "read":
                for core in _remote_core(flavour):
                    out.append(PathTemplate(
                        op, "remote", state, "-",
                        tuple(core + [fill, tail]), "cached read miss"))
                    out.append(PathTemplate(
                        op, "remote", state, "-",
                        tuple(core + [tail]),
                        "uncached read: no local copy retained"))
            elif action == "upgrade":
                prefix = _upgrade_prefix()
                out.append(PathTemplate(
                    op, "slc", state, "-",
                    tuple(prefix
                          + [_atleast("slc", Expr.of("slc_hit"))]),
                    "upgrade, then the local SLC write"))
                out.append(PathTemplate(
                    op, "am", state, "-",
                    tuple(prefix
                          + [_atleast("am", Expr.of("nc", "nc", "dram_lat"))]),
                    "upgrade, then the local AM write"))
            elif action == "read_excl":
                for core in _remote_core(flavour):
                    out.append(PathTemplate(
                        op, "remote", state, "-",
                        tuple(core + [fill, tail]), "write miss"))
    if flavour == "numa":
        # The MSI directory can demand an invalidation round before a
        # write that then still misses (or hits) locally — the upgrade
        # prefix composes with every write tail.
        for core in _remote_core(flavour):
            out.append(PathTemplate(
                "w", "remote", "S", "-",
                tuple(_upgrade_prefix() + core + [fill, tail]),
                "invalidate round, then the miss"))
            out.append(PathTemplate(
                "rmw", "remote", "S", "-",
                tuple(_upgrade_prefix() + core + [fill, tail]),
                "invalidate round, then the miss"))
        for op in ("w", "rmw"):
            out.append(PathTemplate(
                op, "am", "S", "-",
                tuple(_upgrade_prefix()
                      + [_atleast("am", Expr.of("nc", "nc", "dram_lat"))]),
                "invalidate round, then home memory"))
    return tuple(out)


# ----------------------------------------------------------------------
# the evaluated bound table
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BoundRow:
    """One evaluated cell of the bound table."""

    op: str
    level: str
    state: str
    sharers: str
    path: tuple[str, ...]
    min_expr: str
    max_expr: Optional[str]
    min_ns: int
    max_ns: Optional[int]
    note: str = ""

    def to_record(self) -> dict[str, Any]:
        return {
            "op": self.op, "level": self.level, "state": self.state,
            "sharers": self.sharers, "path": list(self.path),
            "min_expr": self.min_expr, "max_expr": self.max_expr,
            "min_ns": self.min_ns, "max_ns": self.max_ns,
            "note": self.note,
        }


def bound_table(
    flavour: str,
    timing: Any = None,
    transitions: Sequence[Transition] = TRANSITIONS,
) -> list[BoundRow]:
    """The per-cell bound table: every enumerated path with its total
    min/max expression evaluated against ``timing``."""
    params = timing_params(timing)
    rows: list[BoundRow] = []
    for tpl in enumerate_paths(flavour, transitions):
        mn, mx = tpl.min_, tpl.max_
        rows.append(BoundRow(
            op=tpl.op, level=tpl.level, state=tpl.state,
            sharers=tpl.sharers, path=tpl.names(),
            min_expr=mn.render(),
            max_expr=None if mx is None else mx.render(),
            min_ns=mn.evaluate(params),
            max_ns=None if mx is None else mx.evaluate(params),
            note=tpl.note,
        ))
    return rows


def format_bounds(rows: Sequence[BoundRow], flavour: str = "") -> str:
    head = "static latency bounds"
    if flavour:
        head += f" ({flavour})"
    out = [
        head,
        f"{'op':>4} {'state':>5} {'level':>7} {'min ns':>8} {'max ns':>10}"
        "  min expression",
        "-" * 78,
    ]
    for r in rows:
        mx = "unbounded" if r.max_ns is None else str(r.max_ns)
        out.append(
            f"{r.op:>4} {r.state:>5} {r.level:>7} {r.min_ns:>8} {mx:>10}"
            f"  {r.min_expr}"
        )
        out.append(f"{'':>38}path: {' -> '.join(r.path) or '(none)'}"
                   + (f"  [{r.note}]" if r.note else ""))
    out.append("max 'unbounded': the path crosses a queued resource — "
               "contention has no static ceiling; per-phase exact "
               "segments are still certified (B101).")
    return "\n".join(out)


# ----------------------------------------------------------------------
# the runtime certifier
# ----------------------------------------------------------------------


#: One evaluated segment: (name, min_ns, max_ns-or-None).
EvalSeg = tuple[str, int, Optional[int]]


class Envelope:
    """The enumerated path set evaluated against one timing table,
    grouped by the (op, level) class span roots carry."""

    def __init__(self, flavour: str, params: Mapping[str, int],
                 templates: Sequence[PathTemplate]) -> None:
        self.flavour = flavour
        self.params = dict(params)
        self.by_class: dict[tuple[str, str], list[list[EvalSeg]]] = {}
        seen: set[tuple[str, str, tuple[EvalSeg, ...]]] = set()
        for tpl in templates:
            path: list[EvalSeg] = [
                (s.name, s.min_.evaluate(params),
                 None if s.max_ is None else s.max_.evaluate(params))
                for s in tpl.segments
            ]
            key = (tpl.op, tpl.level, tuple(path))
            if key in seen:
                continue
            seen.add(key)
            self.by_class.setdefault((tpl.op, tpl.level), []).append(path)

    @staticmethod
    def match(path: Sequence[EvalSeg],
              names: Sequence[str]) -> Optional[list[EvalSeg]]:
        """Align observed phase names against ``path``.

        A segment whose static minimum is zero may be absent (the
        builder drops zero-duration phases); every other segment must
        appear, in order.  Returns the matched segment per observed
        phase, or None when the sequence cannot come from this path.
        """
        out: list[EvalSeg] = []
        i = 0
        for name in names:
            while i < len(path) and path[i][0] != name and path[i][1] == 0:
                i += 1
            if i >= len(path) or path[i][0] != name:
                return None
            out.append(path[i])
            i += 1
        for seg in path[i:]:
            if seg[1] != 0:
                return None
        return out


def envelope_for(
    flavour: str,
    timing: Any = None,
    transitions: Sequence[Transition] = TRANSITIONS,
) -> Envelope:
    """Build the evaluated envelope for one flavour + timing table."""
    return Envelope(flavour, timing_params(timing),
                    enumerate_paths(flavour, transitions))


class BoundsCertifier(TraceSink):
    """Check every observed span tree against its static envelope.

    Attach to a simulation (``sim.attach``) or a machine
    (``machine.set_trace``); call :meth:`finalize` after the run, then
    read :attr:`findings` / :meth:`counts` / :meth:`ok`.
    """

    wants_spans = True

    def __init__(self, envelope: Envelope,
                 max_witnesses: int = 25) -> None:
        self.envelope = envelope
        self.max_witnesses = max_witnesses
        self.findings: list[Finding] = []
        self.checked = 0
        self._counts: dict[str, int] = {r: 0 for r in BOUNDS_RULES}
        self._trees = SpanTreeAssembler(self._check_tree)

    # -- event intake ---------------------------------------------------

    def emit(self, ev: Any) -> None:
        if ev.kind == EV_SPAN:
            self._trees.add(ev)

    def finalize(self) -> None:
        """Flush the trailing span tree (call once, after the run)."""
        self._trees.flush()

    # -- results --------------------------------------------------------

    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def ok(self) -> bool:
        return not any(self._counts.values())

    def report(self) -> dict[str, Any]:
        """JSON-ready summary (same finding shape as the linter)."""
        return {
            "flavour": self.envelope.flavour,
            "params": dict(self.envelope.params),
            "spans_checked": self.checked,
            "violations": self.counts(),
            "findings": [
                {"rule": f.rule, "message": f.message, "line": f.line,
                 "detail": f.detail}
                for f in self.findings
            ],
        }

    # -- checking -------------------------------------------------------

    def _record(self, rule: str, message: str, line: int,
                detail: str) -> None:
        self._counts[rule] += 1
        if len(self.findings) < self.max_witnesses:
            self.findings.append(
                Finding(rule=rule, message=message, line=line, detail=detail)
            )

    def _check_tree(self, root: SpanEvent,
                    children: list[SpanEvent]) -> None:
        self.checked += 1
        cls = (root.op, root.level)
        paths = self.envelope.by_class.get(cls)
        who = (f"P{root.proc} {root.op} line {root.line:#x} -> "
               f"{root.level} (+{root.dur_ns} ns, trace {root.trace_id})")
        witness = format_span_tree([root] + children)
        if paths is None:
            self._record(
                "B103",
                f"{who}: no enumerated path for class "
                f"({root.op}, {root.level})",
                root.line, witness)
            return
        names = [c.name for c in children]
        best: Optional[tuple[list[EvalSeg],
                             list[tuple[str, SpanEvent, EvalSeg]]]] = None
        for path in paths:
            matched = Envelope.match(path, names)
            if matched is None:
                continue
            viols: list[tuple[str, SpanEvent, EvalSeg]] = []
            for child, seg in zip(children, matched):
                _, lo, hi = seg
                if hi is not None and child.dur_ns > hi:
                    viols.append(("B101", child, seg))
                elif child.dur_ns < lo:
                    viols.append(("B102", child, seg))
            if not viols:
                return  # within the envelope of at least one path
            if best is None or len(viols) < len(best[1]):
                best = (path, viols)
        if best is None:
            candidates = "; ".join(
                " -> ".join(s[0] for s in p) or "(empty)" for p in paths
            )
            self._record(
                "B103",
                f"{who}: phase sequence {' -> '.join(names) or '(empty)'} "
                f"not in the enumerated path set",
                root.line,
                f"{witness}\nenumerated paths for ({root.op}, "
                f"{root.level}): {candidates}")
            return
        path, viols = best
        env = " -> ".join(
            f"{n}[{lo},{'∞' if hi is None else hi}]" for n, lo, hi in path
        )
        for rule, child, (name, lo, hi) in viols:
            if rule == "B101":
                msg = (f"{who}: phase {name} took {child.dur_ns} ns, "
                       f"static max {hi} ns")
            else:
                msg = (f"{who}: phase {name} took {child.dur_ns} ns, "
                       f"static min {lo} ns")
            self._record(rule, msg, root.line,
                         f"{witness}\nclosest static path: {env}")


def certify_bounds(sim: Any, flavour: str,
                   max_witnesses: int = 25) -> BoundsCertifier:
    """Convenience: attach a certifier built from ``sim``'s own timing
    config, run the simulation, and return the finalized certifier."""
    timing = sim.machine.config.timing
    cert = BoundsCertifier(envelope_for(flavour, timing),
                           max_witnesses=max_witnesses)
    sim.attach(cert)
    sim.run()
    cert.finalize()
    return cert
