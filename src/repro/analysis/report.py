"""Shared finding/report vocabulary for the static-analysis passes.

Every pass — the protocol model checker, the static table rules, the
machine cross-check and the determinism linter — reports
:class:`Finding` objects carrying a stable rule ID, a location and a
fix-it message, so the CLI and CI render them uniformly and tests can
assert on exact IDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Finding:
    """One defect reported by an analysis pass."""

    rule: str           #: stable rule ID, e.g. "DET001" or "I001"
    message: str        #: what is wrong and how to fix it
    path: str = ""      #: file (linter) or logical location (checker)
    line: int = 0       #: 1-based source line; 0 when not file-based
    detail: str = ""    #: multi-line context, e.g. a counterexample trace

    def location(self) -> str:
        if self.path and self.line:
            return f"{self.path}:{self.line}"
        return self.path or "<protocol>"


@dataclass
class AnalysisReport:
    """Aggregate outcome of one or more passes."""

    findings: list[Finding] = field(default_factory=list)
    #: Pass-specific statistics, e.g. states explored, files linted.
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value


def rule_registry() -> dict[str, str]:
    """Every stable rule ID the analysis passes can emit, with its doc.

    Collected from the passes' own documentation dicts (imported lazily —
    those modules import this one for :class:`Finding`).  Raises
    ``ValueError`` on a duplicate ID so two passes can never silently
    claim the same rule.
    """
    from repro.analysis.bounds import BOUNDS_RULES
    from repro.analysis.certify import CERTIFY_RULES
    from repro.analysis.invariants import ALL_RULES
    from repro.analysis.lint import RULES as LINT_RULES

    registry: dict[str, str] = {}
    for source in (ALL_RULES, LINT_RULES, CERTIFY_RULES, BOUNDS_RULES):
        for rule, doc in source.items():
            if rule in registry:
                raise ValueError(f"duplicate rule ID {rule!r}")
            registry[rule] = doc
    return registry


def explain_rule(rule: str) -> Optional[str]:
    """The documentation string for ``rule``, or None if unknown."""
    return rule_registry().get(rule)


def format_findings(findings: list[Finding]) -> str:
    """Render findings one per line, with indented detail blocks."""
    out = []
    for f in findings:
        out.append(f"{f.location()}: {f.rule}: {f.message}")
        if f.detail:
            out.extend("    " + line for line in f.detail.splitlines())
    return "\n".join(out)
