"""Simulator-hygiene linter: a custom ``ast`` pass over ``src/repro``.

The simulator's results must be bit-reproducible (the golden tests and
the result cache depend on it), so a handful of Python constructs are
banned outright in the deterministic core — the ``sim``, ``coma``,
``bus``, ``timing``, ``obs``, ``trace`` and ``workloads`` subsystems —
and a few more are banned everywhere:

=======  ==============================================================
rule     meaning
=======  ==============================================================
DET001   wall-clock call (``time.time``, ``datetime.now``, …) in a
         deterministic module: simulated time comes from the event loop
DET002   unseeded randomness (global ``random.*`` functions, argless
         ``random.Random()`` / ``numpy.random.default_rng()``,
         ``SystemRandom``) in a deterministic module: seed through
         :func:`repro.common.rng.derive_seed`
MUT001   mutable default argument (shared across calls; use None)
FLT001   float ``==``/``!=`` against a float literal in a deterministic
         module: cycle/latency accounting must stay integral
EXC001   bare ``except:`` (swallows KeyboardInterrupt and typos alike)
SYN001   file does not parse
=======  ==============================================================

Functions decorated ``@hotpath`` (:mod:`repro.common.hotpath`) are
additionally held to the compiled-dispatch discipline anywhere in the
tree — the decorator is the claim, these rules are the check:

=======  ==============================================================
HOT001   tuple- or string-keyed dict lookup in a ``@hotpath`` function:
         interpreted table dispatch; intern the key to a small int at
         build time (int-keyed index dicts are fine)
HOT002   allocation (list/dict/set display, comprehension, ``list()``,
         ``sorted()``, ...) in a ``@hotpath`` function; tuples are
         exempt
HOT003   attribute chain of depth >= 2 (``a.b.c``) re-resolved two or
         more times in one ``@hotpath`` function — hoist the prefix
         into a local
=======  ==============================================================

Suppress a finding for one line with a trailing ``# noqa: RULE`` (or
``# lint: disable=RULE``; comma-separate several IDs; a bare ``# noqa``
suppresses everything on the line).  See ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional

from repro.analysis.report import AnalysisReport, Finding

RULES = {
    "DET001": "wall-clock call in a deterministic module",
    "DET002": "unseeded randomness in a deterministic module",
    "MUT001": "mutable default argument",
    "FLT001": "float equality in timing/latency code",
    "EXC001": "bare except",
    "SYN001": "syntax error",
    "HOT001": "tuple/string-keyed dict lookup in a @hotpath function",
    "HOT002": "allocation in a @hotpath function",
    "HOT003": "attribute chain re-resolved in a @hotpath function",
}

#: Subsystems whose results feed simulated time / coherence decisions.
#: ``obs`` is included because trace files must be deterministic: sinks
#: take timestamps as parameters, never from the wall clock.  ``trace``
#: and ``workloads`` generate the reference streams every figure is
#: computed from, so they are held to the same standard: all randomness
#: must flow through the seeded per-purpose RNGs.
RESTRICTED_SUBSYSTEMS = frozenset({
    "sim", "coma", "bus", "timing", "obs", "trace", "workloads",
})

#: Files *inside* restricted subsystems that are explicitly exempt from
#: the DET rules.  The metrics/bench exporters stamp wall-clock
#: provenance on their output — host facts, like ``obs/manifest.py``'s
#: git revision — so they live outside the deterministic core even
#: though they sit next to the (restricted) registry they export.
#: Paths are package-relative ``(subsystem, ..., filename)`` tuples.
UNRESTRICTED_FILES = frozenset({
    ("obs", "openmetrics.py"),
})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: random-module calls that use the hidden global (unseeded) generator.
_GLOBAL_RANDOM = re.compile(r"^random\.(?!Random$|SystemRandom$)\w+$")

_NUMPY_LEGACY_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "seed",
})

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
})

#: Constructor calls HOT002 treats as allocations (``tuple`` is exempt:
#: packing a fixed-arity return is cheap and has no growth cost).
_HOT_ALLOC_CALLS = frozenset({
    "list", "dict", "set", "frozenset", "bytearray", "sorted",
})

_SUPPRESS = re.compile(r"#\s*(?:noqa|lint:\s*disable=?)\s*:?\s*([A-Z0-9, ]*)")


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, restricted: bool) -> None:
        self.path = path
        self.restricted = restricted
        self.findings: list[Finding] = []
        #: local name -> fully dotted module/attribute it refers to
        self.imports: dict[str, str] = {}

    # -- import tracking ----------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.imports[local] = alias.name if alias.asname else local
            if alias.asname:
                self.imports[alias.asname] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Resolve an expression to a dotted name through the imports."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))

    # -- findings ------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule=rule, message=message, path=self.path,
                    line=getattr(node, "lineno", 0))
        )

    # -- DET001 / DET002 ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.restricted:
            name = self._dotted(node.func)
            if name is not None:
                self._check_wall_clock(node, name)
                self._check_randomness(node, name)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, name: str) -> None:
        if name in _WALL_CLOCK:
            self._report(
                "DET001", node,
                f"call to {name}() — results must be reproducible; simulated "
                "time comes from the event loop, never the host clock",
            )

    def _check_randomness(self, node: ast.Call, name: str) -> None:
        argless = not node.args and not node.keywords
        if name == "random.SystemRandom":
            self._report(
                "DET002", node,
                "SystemRandom is nondeterministic by design — use "
                "random.Random(derive_seed(...)) from repro.common.rng",
            )
        elif name == "random.Random" and argless:
            self._report(
                "DET002", node,
                "random.Random() without a seed — pass "
                "derive_seed(config.seed, ...) from repro.common.rng",
            )
        elif _GLOBAL_RANDOM.match(name):
            self._report(
                "DET002", node,
                f"{name}() uses the hidden global generator — create a "
                "random.Random(derive_seed(...)) instance instead",
            )
        elif name == "numpy.random.default_rng" and argless:
            self._report(
                "DET002", node,
                "numpy.random.default_rng() without a seed — use "
                "repro.common.rng.make_rng(root, *tags)",
            )
        elif name.startswith("numpy.random.") and \
                name.rsplit(".", 1)[1] in _NUMPY_LEGACY_RANDOM:
            self._report(
                "DET002", node,
                f"{name}() uses numpy's global legacy generator — use "
                "repro.common.rng.make_rng(root, *tags)",
            )

    # -- MUT001 --------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is None:
                continue
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                       ast.ListComp, ast.DictComp, ast.SetComp))
            if not bad and isinstance(default, ast.Call):
                name = self._dotted(default.func)
                bad = name in _MUTABLE_CALLS
            if bad:
                self._report(
                    "MUT001", default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls — default to None and create it inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_hotpath(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_hotpath(node)
        self.generic_visit(node)

    # -- HOT001 / HOT002 / HOT003 -------------------------------------
    def _is_hotpath(self, node) -> bool:
        for dec in node.decorator_list:
            name = self._dotted(dec)
            if name is not None and (
                name == "hotpath" or name.endswith(".hotpath")
            ):
                return True
        return False

    def _check_hotpath(self, node) -> None:
        if not self._is_hotpath(node):
            return
        scan = _HotScan()
        for stmt in node.body:
            scan.visit(stmt)
        for rule, target, message in scan.findings:
            self._report(rule, target, f"{message} in @hotpath {node.name}()")
        for chain, (count, first) in scan.chains.items():
            if count >= 2:
                prefix = chain.rsplit(".", 1)[0]
                self._report(
                    "HOT003", first,
                    f"attribute chain {chain} resolved {count} times in "
                    f"@hotpath {node.name}() — hoist {prefix} into a local",
                )

    # -- FLT001 --------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if self.restricted and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            for operand in (node.left, *node.comparators):
                if isinstance(operand, ast.Constant) and \
                        isinstance(operand.value, float):
                    self._report(
                        "FLT001", node,
                        "float equality on timing arithmetic — keep "
                        "cycle/latency accounting in integers (or compare "
                        "with a tolerance)",
                    )
                    break
        self.generic_visit(node)

    # -- EXC001 --------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "EXC001", node,
                "bare except swallows KeyboardInterrupt and typos alike — "
                "catch a specific exception (repro.common.errors has the "
                "hierarchy)",
            )
        self.generic_visit(node)


class _HotScan(ast.NodeVisitor):
    """Collects HOT-rule evidence inside one ``@hotpath`` function body.

    Nested function and lambda bodies are skipped — a nested def is
    judged by its own decorators, not its enclosing function's.
    """

    def __init__(self) -> None:
        self.findings: list[tuple[str, ast.AST, str]] = []
        #: pure dotted chain (depth >= 2) -> (load count, first node)
        self.chains: dict[str, tuple[int, ast.AST]] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- HOT001 --------------------------------------------------------
    @staticmethod
    def _key_kind(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Tuple):
            return "tuple"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "string"
        return None

    def visit_Subscript(self, node: ast.Subscript) -> None:
        kind = self._key_kind(node.slice)
        if kind is not None:
            self.findings.append((
                "HOT001", node,
                f"{kind}-keyed subscript — intern the key to a small int "
                "at build time",
            ))
        self.generic_visit(node)

    # -- HOT002 --------------------------------------------------------
    def _alloc(self, node: ast.AST, what: str) -> None:
        self.findings.append((
            "HOT002", node,
            f"{what} allocates per call — precompute it at build time or "
            "hoist it out of the hot path",
        ))

    def visit_List(self, node: ast.List) -> None:
        self._alloc(node, "list display")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._alloc(node, "dict display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._alloc(node, "set display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._alloc(node, "generator expression")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get" and node.args:
            kind = self._key_kind(node.args[0])
            if kind is not None:
                self.findings.append((
                    "HOT001", node,
                    f"{kind}-keyed .get() lookup — intern the key to a "
                    "small int at build time",
                ))
        elif isinstance(func, ast.Name) and func.id in _HOT_ALLOC_CALLS:
            self._alloc(node, f"{func.id}()")
        self.generic_visit(node)

    # -- HOT003 --------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Maximal pure-name chains only (a.b.c, not f().a.b).  Store and
        # augmented-assignment targets count too: ``a.b.c = x`` resolves
        # the a.b prefix exactly like a load does.
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name) and len(parts) >= 2:
            chain = ".".join([cur.id, *reversed(parts)])
            count, first = self.chains.get(chain, (0, node))
            self.chains[chain] = (count + 1, first)
            return  # pure name chain: nothing else underneath
        self.generic_visit(node)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def _suppressed(source_line: str) -> Optional[frozenset[str]]:
    """IDs suppressed on this line; empty set = suppress everything."""
    m = _SUPPRESS.search(source_line)
    if m is None:
        return None
    ids = frozenset(x.strip() for x in m.group(1).split(",") if x.strip())
    return ids


def lint_source(
    source: str, path: str = "<string>", restricted: bool = False
) -> list[Finding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="SYN001", message=str(exc.msg or "syntax error"),
                        path=path, line=exc.lineno or 0)]
    linter = _Linter(path, restricted)
    linter.visit(tree)
    lines = source.splitlines()
    kept = []
    for f in linter.findings:
        if 0 < f.line <= len(lines):
            ids = _suppressed(lines[f.line - 1])
            if ids is not None and (not ids or f.rule in ids):
                continue
        kept.append(f)
    return kept


def is_restricted(rel_parts: tuple[str, ...]) -> bool:
    """Whether a path (relative to the package root) is deterministic core.

    ``rel_parts`` may name a directory (subsystem scoping only) or a
    file — file paths are additionally checked against the
    ``UNRESTRICTED_FILES`` allowlist.
    """
    if not rel_parts or rel_parts[0] not in RESTRICTED_SUBSYSTEMS:
        return False
    return tuple(rel_parts) not in UNRESTRICTED_FILES


def lint_file(path: Path, package_root: Optional[Path] = None) -> list[Finding]:
    """Lint one file; ``package_root`` anchors the subsystem scoping
    (defaults to the installed ``repro`` package directory)."""
    root = package_root or default_root()
    try:
        rel = path.resolve().relative_to(root.resolve()).parts
    except ValueError:
        rel = ()
    return lint_source(path.read_text(), str(path), restricted=is_restricted(rel))


def lint_tree(root: Path) -> AnalysisReport:
    """Lint every ``*.py`` under ``root`` (treated as the package root)."""
    report = AnalysisReport()
    for path in sorted(root.rglob("*.py")):
        report.findings.extend(lint_file(path, package_root=root))
        report.stats["files"] = report.stats.get("files", 0) + 1
    return report


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).parent
