"""Certification pass for the compiled protocol dispatch (C101–C104).

:mod:`repro.analysis.compile` flattens the declarative E/O/S/I table into
integer dispatch arrays; the simulator then never consults the source
table on the hot path.  That speed is only trustworthy if the compiled
artifact is *provably* the same protocol, so ``coma-sim verify`` runs
this pass over every shipped machine configuration:

=======  ==============================================================
rule     meaning
=======  ==============================================================
C101     malformed compiled artifact: wrong array shape, an entry
         outside the state/action encoding, or a machine binding
         (victim policy, flattened timing) that contradicts the
         configuration it was compiled from
C102     next-state divergence: a compiled ``(state, op, sharers)``
         entry — or a dispatch binding derived from one — disagrees
         with the source table
C103     bus-action divergence: a compiled ``(state, op)`` action
         disagrees with the source table
C104     bisimulation failure: the PR 1 model checker's reachability
         graph, replayed against compiled dispatch, diverges from the
         source table's graph (finding carries the minimal event trace)
=======  ==============================================================

C101–C103 are exhaustive over the ``4 states x 6 ops x 2 sharer``
grid — every cell is re-derived from the source table and compared, so a
stale or hand-patched artifact cannot hide.  C104 goes further: it runs
the two protocols *in lockstep* over every reachable global state of a
small configuration, so even a divergence that needs a particular
interleaving to matter is caught, with the shortest such interleaving
attached as the counterexample.

Typical use::

    from repro.analysis.certify import certify_machines, format_certification

    report = certify_machines()
    assert report.ok, format_certification(report)
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.compile import (
    ACTIONS,
    EVENT_IDS,
    N_EVENTS,
    N_STATES,
    NO_NEXT,
    CompiledProtocol,
    MachineDispatch,
    compile_victim_policy,
    decompile,
)
from repro.analysis.model import GlobalState, ProtocolModel, Step
from repro.analysis.modelcheck import format_trace, trace_to
from repro.analysis.report import AnalysisReport, Finding
from repro.coma.protocol import EVENTS, STATES, TRANSITIONS, Transition
from repro.coma.states import EXCLUSIVE, INVALID, SHARED, state_name

#: Rule documentation, mirrored into :func:`repro.analysis.report.rule_registry`.
CERTIFY_RULES = {
    "C101": "malformed compiled artifact: wrong array shape, an entry "
            "outside the state/action encoding, or a machine binding "
            "(victim policy, flattened timing) that contradicts the "
            "configuration it was compiled from",
    "C102": "next-state divergence: a compiled (state, op, sharers) entry "
            "— or a dispatch binding derived from one — disagrees with "
            "the source table",
    "C103": "bus-action divergence: a compiled (state, op) action "
            "disagrees with the source table",
    "C104": "bisimulation failure: the model checker's reachability "
            "graph, replayed against compiled dispatch, diverges from "
            "the source table's graph (minimal event trace attached)",
}

#: Same backstop the model checker uses; lockstep replay explores the
#: identical (tiny) state space.
MAX_STATES = 1_000_000

#: CompiledTiming field -> TimingConfig property it must equal.
_TIMING_FIELDS = {
    "l1_hit": "l1_hit_ns",
    "slc_hit": "slc_hit_ns",
    "slc_occ": "slc_occupancy_ns",
    "nc": "nc_ns",
    "nc_busy": "nc_busy_ns",
    "dram_lat": "dram_latency_ns",
    "dram_busy": "dram_busy_ns",
    "bus_phase": "bus_phase_ns",
    "bus_busy": "bus_busy_ns",
    "remote_overhead": "remote_overhead_ns",
}


def _cell(state: int, event: str) -> str:
    return f"({state_name(state)}, {event})"


def _st(v: Optional[int]) -> str:
    return "-" if v is None or v == NO_NEXT else state_name(v)


def _source_entry(
    table: dict[tuple[int, str], Transition], state: int, event: str
) -> tuple[Optional[int], Optional[int], str]:
    """``(next_alone, next_sharers, action)`` the source table prescribes."""
    t = table[(state, event)]
    return t.resolved(False), t.resolved(True), t.bus_action


def certify_compiled(
    compiled: CompiledProtocol,
    transitions: Sequence[Transition] = TRANSITIONS,
    path: str = "compiled-protocol",
) -> AnalysisReport:
    """Exhaustively re-derive every compiled entry from ``transitions``.

    Emits C101 for shape defects and out-of-range encodings, C102/C103
    for per-cell divergences.  ``path`` labels the findings (useful when
    several machines' artifacts are certified in one run).
    """
    report = AnalysisReport()
    findings = report.findings

    n_cells = N_STATES * N_EVENTS
    if len(compiled.next_state) != n_cells * 2 or len(compiled.action) != n_cells:
        findings.append(Finding(
            rule="C101",
            message=(
                f"dispatch arrays have the wrong shape: next_state "
                f"{len(compiled.next_state)} != {n_cells * 2} or action "
                f"{len(compiled.action)} != {n_cells}"
            ),
            path=path,
        ))
        return report  # indexing below would be meaningless

    table = {(t.state, t.event): t for t in transitions}
    checked = 0
    for state in STATES:
        for event in EVENTS:
            ev = EVENT_IDS[event]
            got_alone, got_shared, got_act = compiled.entry(state, ev)
            for label, got in (("", got_alone), ("+sharers", got_shared)):
                if got != NO_NEXT and got not in STATES:
                    findings.append(Finding(
                        rule="C101",
                        message=f"{_cell(state, event)}{label}: compiled "
                        f"next-state {got} is outside the E/O/S/I encoding",
                        path=path,
                    ))
            if not 0 <= got_act < len(ACTIONS):
                findings.append(Finding(
                    rule="C101",
                    message=f"{_cell(state, event)}: compiled action id "
                    f"{got_act} is outside the interned action set",
                    path=path,
                ))
                continue
            want_alone, want_shared, want_act = _source_entry(table, state, event)
            if got_alone != (NO_NEXT if want_alone is None else want_alone):
                findings.append(Finding(
                    rule="C102",
                    message=f"{_cell(state, event)}: compiled next-state "
                    f"{_st(got_alone)} but the table says {_st(want_alone)} "
                    "(no surviving sharers)",
                    path=path,
                ))
            if got_shared != (NO_NEXT if want_shared is None else want_shared):
                findings.append(Finding(
                    rule="C102",
                    message=f"{_cell(state, event)}: compiled next-state "
                    f"{_st(got_shared)} but the table says {_st(want_shared)} "
                    "(with surviving sharers)",
                    path=path,
                ))
            if ACTIONS[got_act] != want_act:
                findings.append(Finding(
                    rule="C103",
                    message=f"{_cell(state, event)}: compiled bus action "
                    f"{ACTIONS[got_act] or '-'!s} but the table says "
                    f"{want_act or '-'!s}",
                    path=path,
                ))
            checked += 1
    report.stats["entries"] = checked
    return report


def certify_bisimulation(
    compiled: CompiledProtocol,
    transitions: Sequence[Transition] = TRANSITIONS,
    n_nodes: int = 3,
    n_lines: int = 1,
    max_states: int = MAX_STATES,
    path: str = "compiled-protocol",
) -> AnalysisReport:
    """Replay the model checker's reachability graph against compiled
    dispatch (rule C104).

    The source table and ``decompile(compiled)`` are lifted to two
    :class:`~repro.analysis.model.ProtocolModel` instances and stepped in
    lockstep over every global state reachable under the *source* model.
    At each state the enabled-step sets must coincide and every step must
    produce the same successor; the first divergence is reported with its
    minimal (BFS-order) event trace.
    """
    report = AnalysisReport()
    ref = ProtocolModel(transitions, n_nodes=n_nodes, n_lines=n_lines)
    cmp_model = ProtocolModel(
        decompile(compiled), n_nodes=n_nodes, n_lines=n_lines
    )
    init = ref.initial_state()
    parent: dict[GlobalState, Optional[tuple[GlobalState, Step]]] = {init: None}
    queue = deque([init])
    n_steps = 0

    while queue:
        state = queue.popleft()
        ref_steps = ref.steps(state)
        cmp_steps = set(cmp_model.steps(state))
        if cmp_steps != set(ref_steps):
            missing = sorted(
                set(ref_steps) - cmp_steps, key=lambda s: s.describe()
            )
            extra = sorted(
                cmp_steps - set(ref_steps), key=lambda s: s.describe()
            )
            what = []
            if missing:
                what.append(
                    "compiled dispatch disables "
                    + "; ".join(s.describe() for s in missing)
                )
            if extra:
                what.append(
                    "compiled dispatch enables "
                    + "; ".join(s.describe() for s in extra)
                )
            report.findings.append(Finding(
                rule="C104",
                message="bisimulation failed: " + " / ".join(what),
                path=path,
                detail=format_trace(trace_to(state, parent)),
            ))
            break
        diverged = False
        for step in ref_steps:
            n_steps += 1
            succ = ref.apply(state, step)
            cmp_succ = cmp_model.apply(state, step)
            if cmp_succ != succ:
                trace = trace_to(state, parent) + [(step, cmp_succ)]
                report.findings.append(Finding(
                    rule="C104",
                    message=f"bisimulation failed: after "
                    f"{step.describe()} the compiled protocol reaches a "
                    "different global state than the table (trace shows "
                    "the compiled successor)",
                    path=path,
                    detail=format_trace(trace),
                ))
                diverged = True
                break
            if succ not in parent:
                if len(parent) >= max_states:  # pragma: no cover - backstop
                    break
                parent[succ] = (state, step)
                queue.append(succ)
        if diverged:
            break
    report.stats["states"] = len(parent)
    report.stats["lockstep_steps"] = n_steps
    return report


def certify_dispatch(
    dispatch: MachineDispatch,
    config=None,
    transitions: Sequence[Transition] = TRANSITIONS,
    n_nodes: int = 3,
    path: str = "dispatch",
) -> AnalysisReport:
    """Certify one machine's full :class:`MachineDispatch`.

    Runs C101–C103 over the compiled arrays, re-derives every flattened
    machine binding (``st_*`` / ``act_local_write`` / ``inject_*``) from
    the source table, checks the interned victim policy and timing
    constants against ``config`` (when given), and — if the artifact is
    well-shaped — replays the C104 bisimulation.
    """
    report = certify_compiled(dispatch.protocol, transitions, path=path)
    table = {(t.state, t.event): t for t in transitions}
    findings = report.findings

    def want(state: int, event: str, sharers: bool) -> int:
        nxt = table[(state, event)].resolved(sharers)
        return NO_NEXT if nxt is None else nxt

    bindings = [
        ("st_degrade_remote_read", dispatch.st_degrade_remote_read,
         EXCLUSIVE, "remote_read", False),
        ("st_upgrade", dispatch.st_upgrade, SHARED, "local_write", False),
        ("st_write_miss", dispatch.st_write_miss, INVALID, "local_write", False),
        ("st_read_fill", dispatch.st_read_fill, INVALID, "local_read", True),
        ("inject_from_invalid[0]", dispatch.inject_from_invalid[0],
         INVALID, "inject", False),
        ("inject_from_invalid[1]", dispatch.inject_from_invalid[1],
         INVALID, "inject", True),
        ("inject_from_shared[0]", dispatch.inject_from_shared[0],
         SHARED, "inject", False),
        ("inject_from_shared[1]", dispatch.inject_from_shared[1],
         SHARED, "inject", True),
    ]
    for name, got, state, event, sharers in bindings:
        expected = want(state, event, sharers)
        if got != expected:
            findings.append(Finding(
                rule="C102",
                message=f"{_cell(state, event)}: dispatch binding {name} is "
                f"{_st(got)} but the table says {_st(expected)}",
                path=path,
            ))
    for state in STATES:
        got_act = dispatch.act_local_write[state]
        want_act = table[(state, "local_write")].bus_action
        if not 0 <= got_act < len(ACTIONS) or ACTIONS[got_act] != want_act:
            findings.append(Finding(
                rule="C103",
                message=f"{_cell(state, 'local_write')}: dispatch binding "
                f"act_local_write is {got_act} but the table says "
                f"{want_act or '-'!s}",
                path=path,
            ))

    if config is not None:
        mode = compile_victim_policy(config)
        if dispatch.victim_mode != mode:
            findings.append(Finding(
                rule="C101",
                message=f"interned victim policy {dispatch.victim_mode} does "
                f"not match the configuration "
                f"(am_victim_policy={config.am_victim_policy!r}, "
                f"inclusive={config.inclusive} -> {mode})",
                path=path,
            ))
        for field, prop in _TIMING_FIELDS.items():
            got = getattr(dispatch.timing, field)
            expected = getattr(config.timing, prop)
            if got != expected:
                findings.append(Finding(
                    rule="C101",
                    message=f"flattened timing constant {field}={got} "
                    f"diverged from TimingConfig.{prop}={expected}",
                    path=path,
                ))

    shape_ok = not any(f.rule == "C101" for f in findings)
    if shape_ok:
        report.extend(certify_bisimulation(
            dispatch.protocol, transitions, n_nodes=n_nodes, path=path,
        ))
    return report


def certify_machines(n_nodes: int = 3) -> AnalysisReport:
    """Certify the dispatch artifact of every shipped machine flavour.

    The protocol arrays are configuration-independent, but the victim
    policy and timing interning are not, so each flavour — the paper
    default, the non-inclusive section 4.2 extension and the state-blind
    LRU ablation — is compiled and certified separately.
    """
    from repro.analysis.compile import build_dispatch
    from repro.common.config import MachineConfig

    flavours = [
        ("coma", MachineConfig()),
        ("coma-noninclusive", MachineConfig(inclusive=False)),
        ("coma-lru", MachineConfig(am_victim_policy="lru")),
    ]
    report = AnalysisReport()
    for name, config in flavours:
        report.extend(certify_dispatch(
            build_dispatch(config), config, n_nodes=n_nodes,
            path=f"dispatch:{name}",
        ))
    report.stats["machines"] = len(flavours)
    return report


def format_certification(report: AnalysisReport) -> str:
    from repro.analysis.report import format_findings

    head = (
        f"{report.stats.get('machines', 0)} machine flavour(s), "
        f"{report.stats.get('entries', 0)} table entries re-derived, "
        f"{report.stats.get('states', 0)} bisimulation states"
    )
    if report.ok:
        return f"certification OK: {head} — compiled dispatch == source table"
    return (
        f"certification FAILED ({head}):\n"
        + format_findings(report.findings)
    )
