"""Second-level cache: private per processor, 4-way, write-back to the AM.

Sized at 1/128 of the application working set (paper section 3.1).  With
the inclusive hierarchy (paper default) every SLC line is also present in
the node's attraction memory, so evicting a clean line is silent and
evicting a dirty line costs one AM DRAM write.

Victims are reported *packed*: :meth:`SecondLevelCache.fill` returns
``(victim_line << 1) | dirty`` or :data:`NO_VICTIM`, so the per-fill
victim report costs no allocation on the hot path.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import CacheGeometry
from repro.common.hotpath import hotpath
from repro.mem.soa import LineArray, WayRef

_PRESENT = 1

#: ``fill`` return value when no line was displaced.
NO_VICTIM = -1


class SecondLevelCache:
    """Write-back second-level cache."""

    __slots__ = ("array", "index", "_nsets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.array = LineArray(geometry)
        #: The array's line -> way dict, aliased for hot membership tests.
        self.index = self.array.index
        self._nsets = geometry.num_sets

    def lookup(self, line: int) -> Optional[WayRef]:
        w = self.index.get(line)
        if w is None:
            return None
        a = self.array
        a.tick += 1
        a.lru_a[w] = a.tick
        return a.refs[w]

    @hotpath
    def probe(self, line: int) -> bool:
        """Hot-path read probe: hit test plus LRU refresh, no ref."""
        w = self.index.get(line)
        if w is None:
            return False
        a = self.array
        a.tick += 1
        a.lru_a[w] = a.tick
        return True

    def __contains__(self, line: int) -> bool:
        return line in self.index

    @hotpath
    def fill(self, line: int) -> int:
        """Bring ``line`` in; returns the displaced victim packed as
        ``(line << 1) | dirty``, or :data:`NO_VICTIM`.

        The caller handles the victim's consequences: a dirty victim is
        written back to the AM, and the AM's record of which local SLCs
        hold the victim line must be updated.

        The free-way scan, LRU victim pick (invalid-first, first-minimal
        tie-break — ``victim_way(set_idx, VICTIM_LRU)`` semantics) and
        way refill are opened in line: one call, no sub-dispatch.
        """
        idx = self.index
        if line in idx:
            return NO_VICTIM
        a = self.array
        state_a = a.state_a
        base = (line % self._nsets) * a.assoc
        end = base + a.assoc
        packed = NO_VICTIM
        w = base
        while w < end:
            if not state_a[w]:
                break
            w += 1
        else:
            lru_a = a.lru_a
            w = base
            best_lru = lru_a[base]
            k = base + 1
            while k < end:
                if lru_a[k] < best_lru:
                    w = k
                    best_lru = lru_a[k]
                k += 1
            packed = (a.line_a[w] << 1) | a.dirty_a[w]
            del idx[a.line_a[w]]
        a.line_a[w] = line
        state_a[w] = _PRESENT
        a.dirty_a[w] = 0
        a.aux_a[w] = 0
        idx[line] = w
        a.tick += 1
        a.lru_a[w] = a.tick
        return packed

    @hotpath
    def mark_dirty(self, line: int) -> None:
        w = self.index.get(line)
        assert w is not None, f"mark_dirty on absent line {line:#x}"
        a = self.array
        a.dirty_a[w] = 1
        a.tick += 1
        a.lru_a[w] = a.tick

    def invalidate(self, line: int) -> bool:
        """Back-invalidation from the AM (inclusion).  Dirty data being
        discarded is safe: the AM's copy is made authoritative by the
        caller before the line leaves the node."""
        return self.array.invalidate_line(line)

    @property
    def occupancy(self) -> int:
        return self.array.occupancy
