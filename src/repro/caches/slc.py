"""Second-level cache: private per processor, 4-way, write-back to the AM.

Sized at 1/128 of the application working set (paper section 3.1).  With
the inclusive hierarchy (paper default) every SLC line is also present in
the node's attraction memory, so evicting a clean line is silent and
evicting a dirty line costs one AM DRAM write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import CacheGeometry
from repro.mem.setassoc import Entry, SetAssocArray

_PRESENT = 1


@dataclass(frozen=True)
class SlcVictim:
    """What fell out of the SLC during a fill."""

    line: int
    dirty: bool


class SecondLevelCache:
    """Write-back second-level cache."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.array = SetAssocArray(geometry)

    def lookup(self, line: int) -> Optional[Entry]:
        e = self.array.lookup(line)
        if e is not None:
            self.array.touch(e)
        return e

    def __contains__(self, line: int) -> bool:
        return line in self.array

    def fill(self, line: int) -> Optional[SlcVictim]:
        """Bring ``line`` in; returns the displaced victim, if any.

        The caller handles the victim's consequences: a dirty victim is
        written back to the AM, and the AM's record of which local SLCs
        hold the victim line must be updated.
        """
        if line in self.array:
            return None
        set_idx = self.array.set_index(line)
        free = self.array.free_way(set_idx)
        victim_info: Optional[SlcVictim] = None
        if free is None:
            victim = self.array.find_victim(set_idx)
            victim_info = SlcVictim(line=victim.line, dirty=victim.dirty)
            free = victim
        self.array.fill(free, line, _PRESENT)
        return victim_info

    def mark_dirty(self, line: int) -> None:
        e = self.array.lookup(line)
        assert e is not None, f"mark_dirty on absent line {line:#x}"
        e.dirty = True
        self.array.touch(e)

    def invalidate(self, line: int) -> bool:
        """Back-invalidation from the AM (inclusion).  Dirty data being
        discarded is safe: the AM's copy is made authoritative by the
        caller before the line leaves the node."""
        return self.array.invalidate_line(line)

    @property
    def occupancy(self) -> int:
        return self.array.occupancy
