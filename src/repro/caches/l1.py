"""First-level cache: direct-mapped, write-through, no-write-allocate.

The paper fixes the L1 at 4 KB direct-mapped; we keep it direct-mapped and
scale the capacity with the working set (DESIGN.md section 2).  Because it
is write-through into the SLC, evictions are always silent.

With the default direct-mapped geometry the way number *is* the set
index, so probes compile down to one modulo and one tag compare on the
flat arrays — no dict, no object.  A configured associativity above 1
falls back to the generic indexed path.
"""

from __future__ import annotations

from repro.common.config import CacheGeometry
from repro.common.hotpath import hotpath
from repro.mem.soa import VICTIM_LRU, LineArray

#: L1 lines have no coherence role of their own; a single valid state.
_PRESENT = 1


class L1Cache:
    """Direct-mapped (or configurably associative) first-level cache."""

    __slots__ = ("array", "_direct", "_nsets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.array = LineArray(geometry)
        self._direct = geometry.assoc == 1
        self._nsets = geometry.num_sets

    @hotpath
    def lookup(self, line: int) -> bool:
        """Read probe; refreshes LRU on hit."""
        a = self.array
        if self._direct:
            w = line % self._nsets
            if a.line_a[w] != line or not a.state_a[w]:
                return False
        else:
            wi = a.index.get(line)
            if wi is None:
                return False
            w = wi
        a.tick += 1
        a.lru_a[w] = a.tick
        return True

    @hotpath
    def fill(self, line: int) -> None:
        """Bring ``line`` in, silently displacing the victim way."""
        a = self.array
        if self._direct:
            w = line % self._nsets
            if a.state_a[w]:
                old = a.line_a[w]
                if old == line:
                    return
                del a.index[old]
            a.line_a[w] = line
            a.state_a[w] = _PRESENT
            a.index[line] = w
            a.tick += 1
            a.lru_a[w] = a.tick
            return
        if line in a.index:
            return
        set_idx = line % self._nsets
        w = a.free_way_idx(set_idx)
        if w < 0:
            w = a.victim_way(set_idx, VICTIM_LRU)
        a.fill_way(w, line, _PRESENT)

    def write_hit(self, line: int) -> bool:
        """Write probe (write-through, no-write-allocate): update on hit,
        never allocate on miss.  Returns whether the line was present."""
        return self.lookup(line)

    @hotpath
    def invalidate(self, line: int) -> bool:
        a = self.array
        w = a.index.get(line)
        if w is None:
            return False
        a.line_a[w] = -1
        a.state_a[w] = 0
        a.dirty_a[w] = 0
        a.aux_a[w] = 0
        del a.index[line]
        return True

    @property
    def occupancy(self) -> int:
        return self.array.occupancy
