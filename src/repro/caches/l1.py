"""First-level cache: direct-mapped, write-through, no-write-allocate.

The paper fixes the L1 at 4 KB direct-mapped; we keep it direct-mapped and
scale the capacity with the working set (DESIGN.md section 2).  Because it
is write-through into the SLC, evictions are always silent.
"""

from __future__ import annotations

from repro.common.config import CacheGeometry
from repro.mem.setassoc import SetAssocArray

#: L1 lines have no coherence role of their own; a single valid state.
_PRESENT = 1


class L1Cache:
    """Direct-mapped (or configurably associative) first-level cache."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.array = SetAssocArray(geometry)

    def lookup(self, line: int) -> bool:
        """Read probe; refreshes LRU on hit."""
        e = self.array.lookup(line)
        if e is None:
            return False
        self.array.touch(e)
        return True

    def fill(self, line: int) -> None:
        """Bring ``line`` in, silently displacing the victim way."""
        if line in self.array:
            return
        set_idx = self.array.set_index(line)
        victim = self.array.free_way(set_idx) or self.array.find_victim(set_idx)
        self.array.fill(victim, line, _PRESENT)

    def write_hit(self, line: int) -> bool:
        """Write probe (write-through, no-write-allocate): update on hit,
        never allocate on miss.  Returns whether the line was present."""
        e = self.array.lookup(line)
        if e is None:
            return False
        self.array.touch(e)
        return True

    def invalidate(self, line: int) -> bool:
        return self.array.invalidate_line(line)

    @property
    def occupancy(self) -> int:
        return self.array.occupancy
