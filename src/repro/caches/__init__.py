"""Per-processor cache hierarchy below the attraction memory."""

from repro.caches.l1 import L1Cache
from repro.caches.slc import SecondLevelCache

__all__ = ["L1Cache", "SecondLevelCache"]
