"""Figures 3 and 4 machinery: global bus traffic (read/write/replacement)
for 1- and 4-processor nodes across the memory-pressure sweep.

Figure 3 covers the eight applications where clustering keeps reducing
traffic at every pressure; Figure 4 covers the six whose conflict misses
explode at 87.5 % MP (with extra bars for 8-way-associative AMs at that
pressure).  Both share this module's sweep; ``figure4`` adds the
associativity points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import FIGURE3_APPS, MP_SWEEP, stacked_bar
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec


@dataclass(frozen=True)
class TrafficPoint:
    app: str
    procs_per_node: int
    mp_label: str
    am_assoc: int
    traffic_bytes: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.traffic_bytes.values())


@dataclass
class TrafficSweep:
    points: list[TrafficPoint] = field(default_factory=list)

    def get(self, app: str, ppn: int, mp_label: str, assoc: int = 4) -> TrafficPoint:
        for p in self.points:
            if (
                p.app == app
                and p.procs_per_node == ppn
                and p.mp_label == mp_label
                and p.am_assoc == assoc
            ):
                return p
        raise KeyError((app, ppn, mp_label, assoc))

    def apps(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.app not in seen:
                seen.append(p.app)
        return seen

    def max_total(self, app: str) -> int:
        return max(p.total for p in self.points if p.app == app)


def run_traffic_sweep(
    apps: list[str],
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    assoc_points: list[tuple[int, str, int]] | None = None,
    jobs: int | None = None,
) -> TrafficSweep:
    """Sweep (app x {1,4} procs/node x 5 pressures) at 4-way associativity,
    plus any extra ``(ppn, mp_label, assoc)`` points requested."""
    mp_by_label = dict(MP_SWEEP)
    meta: list[tuple[str, int, str, int]] = []
    specs: list[RunSpec] = []
    for app in apps:
        for ppn in (1, 4):
            for label, mp in MP_SWEEP:
                specs.append(
                    RunSpec(
                        workload=app,
                        procs_per_node=ppn,
                        memory_pressure=mp,
                        scale=scale,
                        seed=seed,
                    )
                )
                meta.append((app, ppn, label, 4))
        if assoc_points:
            for ppn, label, assoc in assoc_points:
                specs.append(
                    RunSpec(
                        workload=app,
                        procs_per_node=ppn,
                        memory_pressure=mp_by_label[label],
                        am_assoc=assoc,
                        scale=scale,
                        seed=seed,
                    )
                )
                meta.append((app, ppn, label, assoc))
    results = run_specs(specs, jobs=jobs, use_cache=use_cache)
    sweep = TrafficSweep()
    for (app, ppn, label, assoc), r in zip(meta, results):
        sweep.points.append(
            TrafficPoint(app, ppn, label, assoc, dict(r.traffic_bytes))
        )
    return sweep


def run_figure3(
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    workloads: list[str] | None = None,
    jobs: int | None = None,
) -> TrafficSweep:
    return run_traffic_sweep(
        workloads or FIGURE3_APPS,
        scale=scale,
        use_cache=use_cache,
        seed=seed,
        jobs=jobs,
    )


def format_traffic(sweep: TrafficSweep, title: str) -> str:
    lines = [
        title,
        "(per app, bars normalized to that app's tallest bar;",
        " R = read, W = write, X = replacement traffic)",
    ]
    for app in sweep.apps():
        lines.append("")
        lines.append(app)
        ref = sweep.max_total(app)
        assocs = sorted({p.am_assoc for p in sweep.points if p.app == app})
        for ppn in (1, 4):
            for label, _ in MP_SWEEP:
                for assoc in assocs:
                    try:
                        p = sweep.get(app, ppn, label, assoc)
                    except KeyError:
                        continue
                    tag = f"{ppn}p {label:>3s}" + (f" {assoc}way" if assoc != 4 else "      ")
                    lines.append(
                        f"  {tag:14s} {p.total / 1024:8.1f}K |"
                        f"{stacked_bar(p.traffic_bytes, ref, 48)}"
                    )
    return "\n".join(lines)
