"""Shared definitions for the per-figure experiment modules."""

from __future__ import annotations


#: Memory pressures of the sweep (paper section 3.1), label -> value.
MP_SWEEP: list[tuple[str, float]] = [
    ("6%", 1 / 16),
    ("50%", 8 / 16),
    ("75%", 12 / 16),
    ("81%", 13 / 16),
    ("87%", 14 / 16),
]

#: The eight applications "where clustering consistently is effective"
#: (Figure 3).
FIGURE3_APPS = [
    "cholesky",
    "fft",
    "lu_noncontig",
    "ocean_contig",
    "ocean_noncontig",
    "radix",
    "water_n2",
    "water_sp",
]

#: The six applications whose conflict misses blow up at 87.5 % MP
#: (Figure 4).
FIGURE4_APPS = [
    "barnes",
    "fmm",
    "lu_contig",
    "radiosity",
    "raytrace",
    "volrend",
]


def bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """ASCII bar for report rendering; clamps to [0, 1.5] of width."""
    n = int(max(0.0, min(1.5, fraction)) * width)
    return fill * n


def stacked_bar(parts: dict[str, float], total_scale: float, width: int = 40) -> str:
    """Render a stacked bar: one glyph class per segment.

    ``parts`` values are absolute; ``total_scale`` is the value that maps
    to the full ``width``.
    """
    glyphs = {"read": "R", "write": "W", "replace": "X",
              "busy": "B", "slc": "s", "am": "A", "remote": "r"}
    out = []
    for key, value in parts.items():
        n = int(round(width * value / total_scale)) if total_scale > 0 else 0
        out.append(glyphs.get(key, "?") * n)
    return "".join(out)


def fmt_pct(x: float) -> str:
    return f"{100 * x:5.1f}%"
