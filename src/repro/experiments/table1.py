"""Table 1: applications and working sets.

The paper's Table 1 lists each application, its problem, and its working
set in MB.  We report the scaled-down working set our problem sizes
allocate (measured from the address space after allocation, exactly the
quantity the machine sizing uses) next to the paper's full-scale value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import pool_map
from repro.mem.address import AddressSpace
from repro.sync.primitives import SyncSpace
from repro.workloads.registry import get_workload, paper_workloads


@dataclass(frozen=True)
class Table1Row:
    app: str
    description: str
    paper_ws_mb: float
    our_ws_bytes: int

    @property
    def our_ws_kb(self) -> float:
        return self.our_ws_bytes / 1024


def measure_working_set(name: str, scale: float = 1.0, page_size: int = 2048) -> int:
    """Allocated (page-granular) working set of one workload, in bytes."""
    wl = get_workload(name, scale=scale)
    space = AddressSpace(page_size=page_size)
    wl.allocate(space)
    SyncSpace(space, 64, wl.n_locks, wl.n_barriers)
    return space.allocated_bytes


def _build_row(task: tuple[str, float]) -> Table1Row:
    """Measure one application's row (module-level for pool pickling)."""
    name, scale = task
    wl_cls = type(get_workload(name, scale=scale))
    return Table1Row(
        app=name,
        description=wl_cls.description,
        paper_ws_mb=wl_cls.paper_working_set_mb,
        our_ws_bytes=measure_working_set(name, scale=scale),
    )


def run_table1(scale: float = 1.0, jobs: int | None = None) -> list[Table1Row]:
    tasks = [(name, scale) for name in paper_workloads()]
    return pool_map(_build_row, tasks, jobs=jobs)


def format_table1(rows: list[Table1Row]) -> str:
    lines = [
        "Table 1: Applications and working sets",
        f"{'Application':16s} {'Description':42s} {'paper WS':>9s} {'ours':>9s}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:16s} {r.description:42s} {r.paper_ws_mb:6.1f} MB"
            f" {r.our_ws_kb:6.0f} KB"
        )
    return "\n".join(lines)
