"""Experiment harness: one module per paper table/figure plus ablations."""

from repro.experiments.runner import RunSpec, build_simulation, run_spec, clear_memory_cache

__all__ = ["RunSpec", "build_simulation", "run_spec", "clear_memory_cache"]
