"""Experiment harness: one module per paper table/figure plus ablations,
and a process-pool sweep engine (:mod:`repro.experiments.parallel`)."""

from repro.experiments.parallel import pool_map, run_specs
from repro.experiments.runner import (
    RunSpec,
    build_simulation,
    clear_memory_cache,
    run_spec,
)

__all__ = [
    "RunSpec",
    "build_simulation",
    "run_spec",
    "run_specs",
    "pool_map",
    "clear_memory_cache",
]
