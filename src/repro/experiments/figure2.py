"""Figure 2: read node miss rate at low memory pressure for 2- and 4-way
clustering, relative to 1-processor-node miss rates.

At 6.25 % memory pressure "the caches are effectively infinite, since the
entire working set fits in each attraction memory, thus no replacements
occur" — the remaining node misses are cold and coherence misses, and
clustering reduces both (intra-cluster prefetch, co-located
producer/consumer pairs).  The paper's averages: 82 % relative RNMr for
2-way clustering, 62 % for 4-way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import bar, fmt_pct
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec
from repro.workloads.registry import paper_workloads

LOW_PRESSURE = 1 / 16

CLUSTERINGS = (1, 2, 4)


@dataclass(frozen=True)
class Figure2Row:
    app: str
    rnmr_1: float
    rnmr_2: float
    rnmr_4: float

    @property
    def relative_2(self) -> float:
        return self.rnmr_2 / self.rnmr_1 if self.rnmr_1 else 1.0

    @property
    def relative_4(self) -> float:
        return self.rnmr_4 / self.rnmr_1 if self.rnmr_1 else 1.0


def run_figure2(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[Figure2Row]:
    apps = list(workloads or paper_workloads())
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=ppn,
            memory_pressure=LOW_PRESSURE,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for ppn in CLUSTERINGS
    ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    rows = []
    for app in apps:
        rnmr = {ppn: next(results).read_node_miss_rate for ppn in CLUSTERINGS}
        rows.append(Figure2Row(app, rnmr[1], rnmr[2], rnmr[4]))
    return rows


def averages(rows: list[Figure2Row]) -> tuple[float, float]:
    """Mean relative RNMr for 2-way and 4-way clustering."""
    n = max(1, len(rows))
    return (
        sum(r.relative_2 for r in rows) / n,
        sum(r.relative_4 for r in rows) / n,
    )


def format_figure2(rows: list[Figure2Row]) -> str:
    lines = [
        "Figure 2: relative read node miss rate at 6.25% memory pressure",
        "(100% = RNMr of the 1-processor-node system; shorter bar = bigger win)",
        "",
        f"{'Application':16s} {'2-way':>7s}  {'4-way':>7s}",
    ]
    for r in sorted(rows, key=lambda r: r.relative_2):
        lines.append(
            f"{r.app:16s} {fmt_pct(r.relative_2):>7s}  {fmt_pct(r.relative_4):>7s}"
            f"   2|{bar(r.relative_2, 30):30s}| 4|{bar(r.relative_4, 30):30s}|"
        )
    a2, a4 = averages(rows)
    lines.append("")
    lines.append(
        f"{'average':16s} {fmt_pct(a2):>7s}  {fmt_pct(a4):>7s}"
        f"   (paper: ~82% and ~62%)"
    )
    return "\n".join(lines)
