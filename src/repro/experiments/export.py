"""Export figure/table data as CSV or JSON for external plotting.

The text renderers in the figure modules are for terminals; these
exporters produce machine-readable data (one row per bar/point) so the
figures can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.experiments.figure2 import Figure2Row
from repro.experiments.figure3 import TrafficSweep
from repro.experiments.figure5 import Figure5Bar
from repro.experiments.table1 import Table1Row


def _csv(header: list[str], rows: Iterable[list]) -> str:
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(header)
    for row in rows:
        w.writerow(row)
    return buf.getvalue()


# ----------------------------------------------------------------------
def figure2_csv(rows: list[Figure2Row]) -> str:
    return _csv(
        ["app", "rnmr_1p", "rnmr_2p", "rnmr_4p", "relative_2p", "relative_4p"],
        (
            [r.app, r.rnmr_1, r.rnmr_2, r.rnmr_4, r.relative_2, r.relative_4]
            for r in rows
        ),
    )


def traffic_csv(sweep: TrafficSweep) -> str:
    return _csv(
        ["app", "procs_per_node", "memory_pressure", "am_assoc",
         "read_bytes", "write_bytes", "replace_bytes", "total_bytes"],
        (
            [
                p.app,
                p.procs_per_node,
                p.mp_label,
                p.am_assoc,
                p.traffic_bytes.get("read", 0),
                p.traffic_bytes.get("write", 0),
                p.traffic_bytes.get("replace", 0),
                p.total,
            ]
            for p in sweep.points
        ),
    )


def figure5_csv(bars: list[Figure5Bar]) -> str:
    return _csv(
        ["app", "configuration", "busy_ns", "slc_ns", "am_ns", "remote_ns",
         "total_ns"],
        (
            [
                b.app,
                b.label,
                b.breakdown["busy"],
                b.breakdown["slc"],
                b.breakdown["am"],
                b.breakdown["remote"],
                b.total,
            ]
            for b in bars
        ),
    )


def table1_csv(rows: list[Table1Row]) -> str:
    return _csv(
        ["app", "description", "paper_ws_mb", "our_ws_bytes"],
        ([r.app, r.description, r.paper_ws_mb, r.our_ws_bytes] for r in rows),
    )


# ----------------------------------------------------------------------
def figure2_json(rows: list[Figure2Row]) -> str:
    return json.dumps(
        [
            {
                "app": r.app,
                "rnmr": {"1p": r.rnmr_1, "2p": r.rnmr_2, "4p": r.rnmr_4},
                "relative": {"2p": r.relative_2, "4p": r.relative_4},
            }
            for r in rows
        ],
        indent=2,
    )


def traffic_json(sweep: TrafficSweep) -> str:
    return json.dumps(
        [
            {
                "app": p.app,
                "procs_per_node": p.procs_per_node,
                "memory_pressure": p.mp_label,
                "am_assoc": p.am_assoc,
                "traffic_bytes": p.traffic_bytes,
            }
            for p in sweep.points
        ],
        indent=2,
    )


def figure5_json(bars: list[Figure5Bar]) -> str:
    return json.dumps(
        [{"app": b.app, "configuration": b.label, "breakdown_ns": b.breakdown}
         for b in bars],
        indent=2,
    )
