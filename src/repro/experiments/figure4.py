"""Figure 4: traffic for the six conflict-sensitive applications, with
8-way-associative attraction memories added at 87.5 % memory pressure.

"Except for LU cont, it shows clearly that the reason for the dramatic
traffic increase at high memory pressure for these applications is
conflict misses in the attraction memory."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FIGURE4_APPS
from repro.experiments.figure3 import TrafficSweep, format_traffic, run_traffic_sweep
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec

HIGH_MP_LABEL = "87%"


def run_figure4(
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    workloads: list[str] | None = None,
    jobs: int | None = None,
) -> TrafficSweep:
    """The Figure-3 sweep plus 8-way AM bars at 87.5 % MP for both
    clustering degrees."""
    return run_traffic_sweep(
        workloads or FIGURE4_APPS,
        scale=scale,
        use_cache=use_cache,
        seed=seed,
        assoc_points=[(1, HIGH_MP_LABEL, 8), (4, HIGH_MP_LABEL, 8)],
        jobs=jobs,
    )


@dataclass(frozen=True)
class ConflictSummary:
    """Does 8-way associativity tame the 87.5 % MP traffic blow-up?"""

    app: str
    traffic_4way: int
    traffic_8way: int

    @property
    def reduction(self) -> float:
        return 1 - self.traffic_8way / self.traffic_4way if self.traffic_4way else 0.0


def conflict_summaries(sweep: TrafficSweep, ppn: int = 4) -> list[ConflictSummary]:
    out = []
    for app in sweep.apps():
        t4 = sweep.get(app, ppn, HIGH_MP_LABEL, 4).total
        t8 = sweep.get(app, ppn, HIGH_MP_LABEL, 8).total
        out.append(ConflictSummary(app, t4, t8))
    return out


def conflict_miss_fractions(
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> dict[str, float]:
    """Fraction of read node misses classified as conflict misses at
    87.5 % MP with 4-way clustering (the paper's diagnosis)."""
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=4,
            memory_pressure=14 / 16,
            scale=scale,
            seed=seed,
        )
        for app in FIGURE4_APPS
    ]
    results = run_specs(specs, jobs=jobs, use_cache=use_cache)
    return {
        app: r.miss_class_fractions["conflict"]
        for app, r in zip(FIGURE4_APPS, results)
    }


def format_figure4(sweep: TrafficSweep) -> str:
    body = format_traffic(
        sweep,
        "Figure 4: traffic for 1 and 4-processor nodes at 6/50/75/81/87% MP "
        "(+ 8-way AM at 87% MP)",
    )
    lines = [body, "", "8-way associativity at 87% MP (4-processor nodes):"]
    for s in conflict_summaries(sweep):
        lines.append(
            f"  {s.app:14s} 4-way {s.traffic_4way / 1024:8.1f}K -> "
            f"8-way {s.traffic_8way / 1024:8.1f}K  ({100 * s.reduction:+5.1f}% reduction)"
        )
    return "\n".join(lines)
