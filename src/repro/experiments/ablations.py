"""Text-level ablations from section 4.3 and the replication analysis.

* **Bandwidth** — "In the original configuration ... 5 of the
  applications show significant performance degradation for 4-way
  clustering at 50% memory pressure.  If the DRAM bandwidth is doubled
  ... three applications still show a significant performance
  degradation. ... If the DRAM bandwidth is doubled again and the node
  controller gets twice the default bandwidth, all applications except
  for the non-optimized LU show similar or better performance."
* **Bus** — "if the global bus bandwidth is halved, clustering becomes
  even more efficient since the penalty for remote accesses is
  increased."
* **Replication thresholds** — section 4.2's closed-form analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytic.replication import paper_thresholds
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec
from repro.workloads.registry import paper_workloads

#: The bandwidth tiers of section 4.3: (label, dram factor, nc factor).
BANDWIDTH_TIERS: list[tuple[str, float, float]] = [
    ("1x dram", 1.0, 1.0),
    ("2x dram", 2.0, 1.0),
    ("4x dram + 2x nc", 4.0, 2.0),
]


@dataclass(frozen=True)
class BandwidthRow:
    app: str
    tier: str
    time_1p: int
    time_4p: int

    @property
    def slowdown_4p(self) -> float:
        """Execution-time ratio of 4-way clustering vs single-processor
        nodes (>1 means clustering hurts)."""
        return self.time_4p / self.time_1p if self.time_1p else 1.0


def run_bandwidth_ablation(
    workloads: list[str] | None = None,
    memory_pressure: float = 8 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[BandwidthRow]:
    apps = list(workloads or paper_workloads())
    meta = [
        (app, label)
        for app in apps
        for label, _, _ in BANDWIDTH_TIERS
    ]
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=ppn,
            memory_pressure=memory_pressure,
            dram_bandwidth_factor=dram,
            nc_bandwidth_factor=nc,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for _, dram, nc in BANDWIDTH_TIERS
        for ppn in (1, 4)
    ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    return [
        BandwidthRow(app, label, next(results).elapsed_ns, next(results).elapsed_ns)
        for app, label in meta
    ]


@dataclass(frozen=True)
class BusRow:
    app: str
    slowdown_full_bus: float  # 4p/1p with normal bus
    slowdown_half_bus: float  # 4p/1p with halved bus bandwidth

    @property
    def clustering_gains_more(self) -> bool:
        """Halving the bus should make clustering *relatively* better."""
        return self.slowdown_half_bus <= self.slowdown_full_bus


def run_bus_ablation(
    workloads: list[str] | None = None,
    memory_pressure: float = 8 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[BusRow]:
    apps = list(workloads or ["barnes", "fft", "lu_noncontig"])
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=ppn,
            memory_pressure=memory_pressure,
            bus_bandwidth_factor=bus_factor,
            dram_bandwidth_factor=2.0,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for bus_factor in (1.0, 0.5)
        for ppn in (1, 4)
    ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    rows = []
    for app in apps:
        ratio = {}
        for bus_factor in (1.0, 0.5):
            t1, t4 = next(results).elapsed_ns, next(results).elapsed_ns
            ratio[bus_factor] = t4 / t1 if t1 else 1.0
        rows.append(BusRow(app, ratio[1.0], ratio[0.5]))
    return rows


@dataclass(frozen=True)
class InclusionRow:
    app: str
    traffic_inclusive: int
    traffic_noninclusive: int

    @property
    def reduction(self) -> float:
        if not self.traffic_inclusive:
            return 0.0
        return 1 - self.traffic_noninclusive / self.traffic_inclusive


def run_inclusion_ablation(
    workloads: list[str] | None = None,
    memory_pressure: float = 14 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[InclusionRow]:
    """Section 4.2's pointer: "A way to overcome this limitation is to
    break the inclusion in the cache hierarchy" — compare traffic with the
    inclusive (default) and non-inclusive hierarchies at 87.5 % MP."""
    apps = list(workloads or ["barnes", "radiosity", "volrend"])
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=4,
            memory_pressure=memory_pressure,
            inclusive=inclusive,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for inclusive in (True, False)
    ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    return [
        InclusionRow(
            app, next(results).total_traffic_bytes, next(results).total_traffic_bytes
        )
        for app in apps
    ]


@dataclass(frozen=True)
class PolicyRow:
    """Design-choice ablation for the accept-based replacement rules."""

    app: str
    policy: str
    traffic_bytes: int
    replacements: int
    elapsed_ns: int


#: (label, victim policy, receiver policy) combinations to compare.
REPLACEMENT_POLICIES: list[tuple[str, str, str]] = [
    ("paper (S-first, accept)", "shared_first", "accept"),
    ("LRU victim", "lru", "accept"),
    ("random receiver", "shared_first", "random"),
    ("both naive", "lru", "random"),
]


def run_replacement_policy_ablation(
    workloads: list[str] | None = None,
    memory_pressure: float = 13 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[PolicyRow]:
    """Compare the paper's replacement rules (Shared victims first,
    Invalid-before-Shared receivers) against state-blind variants at high
    memory pressure, where replacement behaviour dominates (section 2:
    "The replacement behavior is a key factor")."""
    apps = list(workloads or ["barnes", "cholesky", "radix"])
    meta = [
        (app, label)
        for app in apps
        for label, _, _ in REPLACEMENT_POLICIES
    ]
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=4,
            memory_pressure=memory_pressure,
            am_victim_policy=victim,
            replacement_receiver_policy=receiver,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for _, victim, receiver in REPLACEMENT_POLICIES
    ]
    results = run_specs(specs, jobs=jobs, use_cache=use_cache)
    return [
        PolicyRow(
            app,
            label,
            r.total_traffic_bytes,
            r.counters["replacements"],
            r.elapsed_ns,
        )
        for (app, label), r in zip(meta, results)
    ]


@dataclass(frozen=True)
class ConsistencyRow:
    """RC vs SC vs RC+coalescing (why the paper assumes release
    consistency with a write buffer)."""

    app: str
    time_rc: int
    time_sc: int
    time_rc_coalescing: int
    coalesced_writes: int

    @property
    def sc_slowdown(self) -> float:
        return self.time_sc / self.time_rc if self.time_rc else 1.0


def run_consistency_ablation(
    workloads: list[str] | None = None,
    memory_pressure: float = 8 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[ConsistencyRow]:
    apps = list(workloads or ["radix", "ocean_noncontig", "fft"])
    specs = []
    for app in apps:
        base = RunSpec(
            workload=app, memory_pressure=memory_pressure, scale=scale, seed=seed
        )
        specs += [
            base,
            base.with_(consistency="sc"),
            base.with_(write_buffer_coalescing=True),
        ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    rows = []
    for app in apps:
        rc, sc, co = next(results), next(results), next(results)
        rows.append(
            ConsistencyRow(
                app,
                rc.elapsed_ns,
                sc.elapsed_ns,
                co.elapsed_ns,
                co.counters["wb_coalesced"],
            )
        )
    return rows


@dataclass(frozen=True)
class NumaRow:
    app: str
    coma_traffic: int
    numa_traffic: int
    coma_time: int
    numa_time: int

    @property
    def traffic_ratio(self) -> float:
        """NUMA traffic / COMA traffic (>1: COMA's migration pays off)."""
        return self.numa_traffic / self.coma_traffic if self.coma_traffic else 1.0


def run_numa_comparison(
    workloads: list[str] | None = None,
    memory_pressure: float = 8 / 16,
    scale: float = 1.0,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[NumaRow]:
    """COMA vs CC-NUMA on the same workloads (section 2 context: COMA
    converts repeated remote misses into attraction-memory hits)."""
    apps = list(workloads or ["fft", "ocean_noncontig", "radix"])
    specs = [
        RunSpec(
            workload=app,
            machine=machine,
            procs_per_node=1,
            memory_pressure=memory_pressure,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for machine in ("coma", "numa")
    ]
    results = iter(run_specs(specs, jobs=jobs, use_cache=use_cache))
    rows = []
    for app in apps:
        coma, numa = next(results), next(results)
        rows.append(
            NumaRow(
                app,
                coma.total_traffic_bytes,
                numa.total_traffic_bytes,
                coma.elapsed_ns,
                numa.elapsed_ns,
            )
        )
    return rows


def format_replication_thresholds() -> str:
    lines = [
        "Replication thresholds (section 4.2): memory pressure above which a",
        "line can no longer be replicated over all nodes",
    ]
    for label, frac in paper_thresholds().items():
        lines.append(f"  {label:18s} {frac} = {100 * float(frac):5.1f}%")
    return "\n".join(lines)
