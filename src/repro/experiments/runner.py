"""Run specification, assembly and result caching.

A :class:`RunSpec` fully determines a simulation (workload, clustering
degree, memory pressure, associativity, bandwidth factors, seed...), so
results are cached — in memory for the process, and as JSON files under
``.repro_cache/`` so the benchmark harness can regenerate figures without
re-simulating unchanged points.  Set ``REPRO_CACHE_DIR`` to relocate the
disk cache or ``REPRO_NO_DISK_CACHE=1`` to disable it.

Every simulated (cache-miss) result also gets a ``<key>.manifest.json``
sidecar recording its provenance — spec, cache version, git revision,
wall time — so a figure regenerated months later can say exactly which
code produced each point (see :mod:`repro.obs.manifest`).  Cache
hits/misses are tallied in :func:`cache_stats` and summarized by
:func:`format_cache_summary` after figure/table sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, replace
from datetime import datetime, timezone
from fractions import Fraction
from pathlib import Path
from typing import Optional

from repro.obs.manifest import RunManifest, git_revision, manifest_path

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig, TimingConfig
from repro.mem.address import AddressSpace
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulation
from repro.sync.primitives import SyncSpace
from repro.workloads.registry import get_workload

#: Bump when simulator semantics change, invalidating old cached results.
CACHE_VERSION = 7

_memory_cache: dict[str, SimulationResult] = {}

#: Process-wide tally of how run_spec() satisfied each request.
_cache_stats = {"memory_hits": 0, "disk_hits": 0, "misses": 0}


def cache_stats() -> dict[str, int]:
    """A copy of the process-wide cache hit/miss tally."""
    return dict(_cache_stats)


def reset_cache_stats() -> None:
    for k in _cache_stats:
        _cache_stats[k] = 0


def format_cache_summary() -> str:
    """One-line human summary, printed after figure/table sweeps."""
    s = _cache_stats
    total = s["memory_hits"] + s["disk_hits"] + s["misses"]
    return (
        f"cache: {total} runs — {s['memory_hits']} memory hits, "
        f"{s['disk_hits']} disk hits, {s['misses']} simulated"
    )


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run."""

    workload: str
    #: "coma" (the paper's machine), "hcoma" (hierarchical DDM-style
    #: COMA), "numa" (CC-NUMA baseline) or "uma" (central-memory SMP).
    machine: str = "coma"
    #: Group count for the hierarchical machine.
    hierarchy_groups: int = 4
    procs_per_node: int = 1
    memory_pressure: float = 0.5
    am_assoc: int = 4
    scale: float = 1.0
    n_processors: int = 16
    seed: int = 1997
    page_size: int = 2048
    dram_bandwidth_factor: float = 1.0
    nc_bandwidth_factor: float = 1.0
    bus_bandwidth_factor: float = 1.0
    inclusive: bool = True
    track_miss_classes: bool = True
    am_victim_policy: str = "shared_first"
    replacement_receiver_policy: str = "accept"
    consistency: str = "rc"
    write_buffer_coalescing: bool = False

    def key(self) -> str:
        payload = json.dumps(
            {"v": CACHE_VERSION, **asdict(self)}, sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def with_(self, **kwargs) -> "RunSpec":
        return replace(self, **kwargs)


def _pressure_fraction(mp: float) -> Fraction:
    """Express a float memory pressure exactly enough (k/16-style values)."""
    return Fraction(mp).limit_denominator(4096)


def build_simulation(spec: RunSpec) -> Simulation:
    """Assemble workload + machine + simulator for ``spec`` (uncached)."""
    wl = get_workload(
        spec.workload,
        n_threads=spec.n_processors,
        scale=spec.scale,
        seed=spec.seed,
    )
    space = AddressSpace(page_size=spec.page_size)
    wl.allocate(space)
    sync = SyncSpace(space, 64, wl.n_locks, wl.n_barriers)
    working_set = space.allocated_bytes

    timing = TimingConfig(
        dram_bandwidth_factor=spec.dram_bandwidth_factor,
        nc_bandwidth_factor=spec.nc_bandwidth_factor,
        bus_bandwidth_factor=spec.bus_bandwidth_factor,
    )
    config = MachineConfig(
        n_processors=spec.n_processors,
        procs_per_node=spec.procs_per_node,
        page_size=spec.page_size,
        am_assoc=spec.am_assoc,
        memory_pressure=_pressure_fraction(spec.memory_pressure),
        inclusive=spec.inclusive,
        track_miss_classes=spec.track_miss_classes,
        am_victim_policy=spec.am_victim_policy,
        replacement_receiver_policy=spec.replacement_receiver_policy,
        consistency=spec.consistency,
        write_buffer_coalescing=spec.write_buffer_coalescing,
        seed=spec.seed,
        timing=timing,
    ).sized_for(working_set)
    if spec.machine == "coma":
        machine = ComaMachine(config, space)
    elif spec.machine == "hcoma":
        from repro.coma.hierarchy import HierarchicalComaMachine

        machine = HierarchicalComaMachine(
            config, space, n_groups=spec.hierarchy_groups
        )
    elif spec.machine == "numa":
        from repro.numa.machine import NumaMachine

        machine = NumaMachine(config, space)
    elif spec.machine == "uma":
        from repro.uma.machine import UmaMachine

        machine = UmaMachine(config, space)
    else:
        raise ValueError(f"unknown machine kind {spec.machine!r}")
    programs = [wl.thread(t) for t in range(spec.n_processors)]
    sim = Simulation(machine, programs, sync)
    # The sanitizer reads the workload's sharing declarations off the sim.
    sim.workload = wl
    return sim


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------

def _cache_dir() -> Optional[Path]:
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(root)
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return path


def clear_memory_cache() -> None:
    _memory_cache.clear()


def _write_manifest(
    cache_dir: Path, key: str, spec: RunSpec, cache: str,
    wall_time_s: Optional[float],
) -> None:
    """Write the provenance sidecar next to the cached result.

    Best-effort: a manifest failure must never fail the run itself.
    """
    from repro import __version__

    manifest = RunManifest(
        key=key,
        spec=asdict(spec),
        cache_version=CACHE_VERSION,
        repro_version=__version__,
        seed=spec.seed,
        git_rev=git_revision(),
        wall_time_s=wall_time_s,
        cache=cache,
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    try:
        manifest.write(manifest_path(cache_dir, key))
    except OSError:
        pass


def load_manifest(spec_or_key) -> Optional[RunManifest]:
    """The manifest sidecar for a spec (or raw key), if one exists."""
    key = spec_or_key.key() if isinstance(spec_or_key, RunSpec) else spec_or_key
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    path = manifest_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        return RunManifest.load(path)
    except (OSError, ValueError, TypeError, KeyError):
        return None


def run_spec(spec: RunSpec, use_cache: bool = True) -> SimulationResult:
    """Run ``spec``, consulting the memory and disk caches."""
    key = spec.key()
    if use_cache and key in _memory_cache:
        _cache_stats["memory_hits"] += 1
        return _memory_cache[key]
    cache_dir = _cache_dir() if use_cache else None
    if cache_dir is not None:
        f = cache_dir / f"{key}.json"
        if f.exists():
            try:
                result = SimulationResult.from_dict(json.loads(f.read_text()))
                _memory_cache[key] = result
                _cache_stats["disk_hits"] += 1
                if not manifest_path(cache_dir, key).exists():
                    # Entry predates manifests: backfill without wall time.
                    _write_manifest(cache_dir, key, spec, "hit", None)
                return result
            except (ValueError, TypeError, KeyError):
                f.unlink(missing_ok=True)  # stale/corrupt cache entry
    _cache_stats["misses"] += 1
    t0 = time.perf_counter()
    sim = build_simulation(spec)
    result = sim.run()
    wall = time.perf_counter() - t0
    if use_cache:
        _memory_cache[key] = result
        if cache_dir is not None:
            (cache_dir / f"{key}.json").write_text(json.dumps(result.to_dict()))
            _write_manifest(cache_dir, key, spec, "miss", wall)
    return result
