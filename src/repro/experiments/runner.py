"""Run specification, assembly and result caching.

A :class:`RunSpec` fully determines a simulation (workload, clustering
degree, memory pressure, associativity, bandwidth factors, seed...), so
results are cached — in memory for the process, and as JSON files under
``.repro_cache/`` so the benchmark harness can regenerate figures without
re-simulating unchanged points.  Set ``REPRO_CACHE_DIR`` to relocate the
disk cache or ``REPRO_NO_DISK_CACHE=1`` to disable it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from fractions import Fraction
from pathlib import Path
from typing import Optional

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig, TimingConfig
from repro.mem.address import AddressSpace
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulation
from repro.sync.primitives import SyncSpace
from repro.workloads.registry import get_workload

#: Bump when simulator semantics change, invalidating old cached results.
CACHE_VERSION = 6

_memory_cache: dict[str, SimulationResult] = {}


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run."""

    workload: str
    #: "coma" (the paper's machine), "hcoma" (hierarchical DDM-style
    #: COMA), "numa" (CC-NUMA baseline) or "uma" (central-memory SMP).
    machine: str = "coma"
    #: Group count for the hierarchical machine.
    hierarchy_groups: int = 4
    procs_per_node: int = 1
    memory_pressure: float = 0.5
    am_assoc: int = 4
    scale: float = 1.0
    n_processors: int = 16
    seed: int = 1997
    page_size: int = 2048
    dram_bandwidth_factor: float = 1.0
    nc_bandwidth_factor: float = 1.0
    bus_bandwidth_factor: float = 1.0
    inclusive: bool = True
    track_miss_classes: bool = True
    am_victim_policy: str = "shared_first"
    replacement_receiver_policy: str = "accept"
    consistency: str = "rc"
    write_buffer_coalescing: bool = False

    def key(self) -> str:
        payload = json.dumps(
            {"v": CACHE_VERSION, **asdict(self)}, sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def with_(self, **kwargs) -> "RunSpec":
        return replace(self, **kwargs)


def _pressure_fraction(mp: float) -> Fraction:
    """Express a float memory pressure exactly enough (k/16-style values)."""
    return Fraction(mp).limit_denominator(4096)


def build_simulation(spec: RunSpec) -> Simulation:
    """Assemble workload + machine + simulator for ``spec`` (uncached)."""
    wl = get_workload(
        spec.workload,
        n_threads=spec.n_processors,
        scale=spec.scale,
        seed=spec.seed,
    )
    space = AddressSpace(page_size=spec.page_size)
    wl.allocate(space)
    sync = SyncSpace(space, 64, wl.n_locks, wl.n_barriers)
    working_set = space.allocated_bytes

    timing = TimingConfig(
        dram_bandwidth_factor=spec.dram_bandwidth_factor,
        nc_bandwidth_factor=spec.nc_bandwidth_factor,
        bus_bandwidth_factor=spec.bus_bandwidth_factor,
    )
    config = MachineConfig(
        n_processors=spec.n_processors,
        procs_per_node=spec.procs_per_node,
        page_size=spec.page_size,
        am_assoc=spec.am_assoc,
        memory_pressure=_pressure_fraction(spec.memory_pressure),
        inclusive=spec.inclusive,
        track_miss_classes=spec.track_miss_classes,
        am_victim_policy=spec.am_victim_policy,
        replacement_receiver_policy=spec.replacement_receiver_policy,
        consistency=spec.consistency,
        write_buffer_coalescing=spec.write_buffer_coalescing,
        seed=spec.seed,
        timing=timing,
    ).sized_for(working_set)
    if spec.machine == "coma":
        machine = ComaMachine(config, space)
    elif spec.machine == "hcoma":
        from repro.coma.hierarchy import HierarchicalComaMachine

        machine = HierarchicalComaMachine(
            config, space, n_groups=spec.hierarchy_groups
        )
    elif spec.machine == "numa":
        from repro.numa.machine import NumaMachine

        machine = NumaMachine(config, space)
    elif spec.machine == "uma":
        from repro.uma.machine import UmaMachine

        machine = UmaMachine(config, space)
    else:
        raise ValueError(f"unknown machine kind {spec.machine!r}")
    programs = [wl.thread(t) for t in range(spec.n_processors)]
    return Simulation(machine, programs, sync)


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------

def _cache_dir() -> Optional[Path]:
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(root)
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return path


def clear_memory_cache() -> None:
    _memory_cache.clear()


def run_spec(spec: RunSpec, use_cache: bool = True) -> SimulationResult:
    """Run ``spec``, consulting the memory and disk caches."""
    key = spec.key()
    if use_cache and key in _memory_cache:
        return _memory_cache[key]
    cache_dir = _cache_dir() if use_cache else None
    if cache_dir is not None:
        f = cache_dir / f"{key}.json"
        if f.exists():
            try:
                result = SimulationResult.from_dict(json.loads(f.read_text()))
                _memory_cache[key] = result
                return result
            except (ValueError, TypeError, KeyError):
                f.unlink(missing_ok=True)  # stale/corrupt cache entry
    sim = build_simulation(spec)
    result = sim.run()
    if use_cache:
        _memory_cache[key] = result
        if cache_dir is not None:
            (cache_dir / f"{key}.json").write_text(json.dumps(result.to_dict()))
    return result
