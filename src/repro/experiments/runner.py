"""Run specification, assembly and result caching.

A :class:`RunSpec` fully determines a simulation (workload, clustering
degree, memory pressure, associativity, bandwidth factors, seed...), so
results are cached — in memory for the process, and as JSON files under
``.repro_cache/`` so the benchmark harness can regenerate figures without
re-simulating unchanged points.  Set ``REPRO_CACHE_DIR`` to relocate the
disk cache or ``REPRO_NO_DISK_CACHE=1`` to disable it.

The disk cache is safe for concurrent writers (see
:mod:`repro.experiments.parallel`): entries and their manifest sidecars
are published atomically (write-to-temp + ``os.replace``), the manifest
is written *before* the result so a result file never exists without
provenance, reads retry once on transient ``OSError`` and re-check the
disk after a miss so racing workers converge on one entry, and a reader
can never observe torn JSON.

Every simulated (cache-miss) result also gets a ``<key>.manifest.json``
sidecar recording its provenance — spec, cache version, git revision,
wall time — so a figure regenerated months later can say exactly which
code produced each point (see :mod:`repro.obs.manifest`).  Cache
hits/misses are tallied in :func:`cache_stats` and summarized by
:func:`format_cache_summary` after figure/table sweeps.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, replace
from datetime import datetime, timezone
from fractions import Fraction
from pathlib import Path
from typing import Iterator, Optional

from repro.obs.manifest import RunManifest, git_revision, manifest_path

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig, TimingConfig
from repro.mem.address import AddressSpace
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulation
from repro.sync.primitives import SyncSpace
from repro.workloads.registry import get_workload

#: Bump when simulator semantics change, invalidating old cached results.
#: v8: cache keys canonicalize memory_pressure through the same Fraction
#: the simulation consumes, so float spellings of one pressure share keys.
CACHE_VERSION = 8

_memory_cache: dict[str, SimulationResult] = {}

#: Process-wide tally of how run_spec() satisfied each request.
_cache_stats = {"memory_hits": 0, "disk_hits": 0, "misses": 0}

_STAT_KINDS = ("memory_hits", "disk_hits", "misses")


class CacheTally:
    """An isolated hit/miss tally for one sweep (or one service request).

    The module-global tally above interleaves when two in-process sweeps
    overlap (exactly what the serve layer does), so callers that need a
    truthful per-sweep summary register a tally via
    :func:`tally_cache_stats` (or ``run_specs(stats=...)``) and read it
    instead of diffing before/after snapshots of the global.
    """

    __slots__ = ("memory_hits", "disk_hits", "misses")

    def __init__(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def bump(self, kind: str, n: int = 1) -> None:
        setattr(self, kind, getattr(self, kind) + n)

    def merge(self, delta: dict) -> None:
        for kind in _STAT_KINDS:
            self.bump(kind, int(delta.get(kind, 0)))

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in _STAT_KINDS}

    @property
    def total(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses


#: Tallies the current thread/task has registered (innermost last).
#: A ContextVar keeps concurrent sweeps isolated whether they run in
#: separate threads or separate asyncio tasks.
_active_tallies: contextvars.ContextVar[tuple[CacheTally, ...]] = (
    contextvars.ContextVar("repro_cache_tallies", default=())
)


@contextlib.contextmanager
def tally_cache_stats(tally: Optional[CacheTally] = None) -> Iterator[CacheTally]:
    """Record this context's cache outcomes into an isolated tally.

    The process-wide tally keeps accumulating as before (the serial
    single-sweep path is byte-identical); the yielded tally additionally
    receives every outcome recorded by this thread/task while the
    context is open, uncontaminated by concurrent sweeps.
    """
    if tally is None:
        tally = CacheTally()
    token = _active_tallies.set(_active_tallies.get() + (tally,))
    try:
        yield tally
    finally:
        _active_tallies.reset(token)


def _bump_stat(kind: str, n: int = 1) -> None:
    _cache_stats[kind] += n
    for tally in _active_tallies.get():
        tally.bump(kind, n)


#: Optional :class:`repro.obs.metrics.ExperimentInstruments`; set by
#: ``coma-sim metrics``/``coma-sim bench`` via :func:`set_experiment_metrics`.
_metrics = None


def set_experiment_metrics(registry) -> None:
    """Route the cache tally and per-run wall times into ``registry``.

    Pass ``None`` to detach.  This is the experiment layer's half of the
    uniform observer story: the deterministic core records simulated
    quantities, while this layer records wall-clock ones into the same
    registry.
    """
    global _metrics
    if registry is None:
        _metrics = None
    else:
        from repro.obs.metrics import ExperimentInstruments

        _metrics = ExperimentInstruments(registry)


#: Optional :class:`HistoryRecorder`; installed by ``coma-sim`` commands
#: and the serve layer via :func:`set_history_recorder`.  ``None`` (the
#: default) keeps every run-path branch a single ``is not None`` test —
#: the same zero-overhead-when-detached discipline as the metrics hook.
_history = None


class HistoryRecorder:
    """Routes completed runs into a run-history archive.

    Lives on the wall-clock side of the DET fence: it stamps rows with
    the host timestamp and git revision, while the archive module itself
    (:mod:`repro.obs.history`) stays deterministic.  Recording is
    best-effort — an archive failure increments ``outcomes['errors']``
    and never fails the run.

    ``attribute=True`` additionally attaches a
    :class:`~repro.obs.spans.StallAttribution` to every cache-miss
    simulation so rows carry phase totals, latency histograms and
    witness span trees.  Attribution is observational: attaching it
    cannot change the simulated result (the test suite proves byte
    identity).
    """

    def __init__(self, archive, source: str = "run", batch: Optional[str] = None,
                 attribute: bool = True, top_spans: int = 3,
                 on_record=None) -> None:
        self.archive = archive
        self.source = source
        self.batch = batch
        self.attribute = attribute
        self.top_spans = top_spans
        #: Optional callback ``on_record(outcome)`` — the serve layer
        #: mirrors outcomes into its ``serve_history_records`` counter.
        self.on_record = on_record
        self.outcomes = {"inserted": 0, "deduped": 0, "revision": 0,
                         "skipped": 0, "errors": 0}
        self._seen: set[str] = set()
        self._git_rev = git_revision()

    def attribution(self):
        """A fresh attribution sink for one miss (None when disabled)."""
        if not self.attribute:
            return None
        from repro.obs.spans import StallAttribution

        return StallAttribution(top_spans=self.top_spans)

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    def summary(self) -> str:
        o = self.outcomes
        return (
            f"history: {self.total} recorded — {o['inserted']} inserted, "
            f"{o['deduped']} deduped, {o['revision']} revisions, "
            f"{o['skipped']} skipped, {o['errors']} errors "
            f"-> {self.archive.path}"
        )

    def record(self, spec: "RunSpec", key: str, result: SimulationResult,
               cache: str, wall_time_s: Optional[float] = None,
               attribution=None) -> str:
        """Record one completed run; returns the archive outcome."""
        if cache != "miss" and key in self._seen:
            # This process already recorded this key; re-recording a hit
            # would only re-dedup against our own row.
            self.outcomes["skipped"] += 1
            return "skipped"
        try:
            phases = histograms = top_spans = None
            if attribution is not None:
                from repro.obs.history import phase_totals

                phases = phase_totals(attribution)
                histograms = attribution.registry.snapshot()
                top_spans = [
                    [e.to_record() for e in tree]
                    for tree in attribution.slowest_spans()
                ]
            manifest = load_manifest(key)
            outcome = self.archive.record_run(
                key=key,
                spec=asdict(spec),
                result=result.to_dict(),
                recorded_at=datetime.now(timezone.utc).isoformat(
                    timespec="seconds"),
                source=self.source,
                cache=cache,
                batch=self.batch,
                cache_version=CACHE_VERSION,
                git_rev=self._git_rev,
                wall_time_s=wall_time_s,
                phases=phases,
                histograms=histograms,
                top_spans=top_spans,
                manifest=asdict(manifest) if manifest is not None else None,
            )
        except Exception:
            # Best-effort by contract: a broken archive (disk full,
            # locked beyond timeout) must never fail the simulation.
            self.outcomes["errors"] += 1
            outcome = "error"
        else:
            self.outcomes[outcome] += 1
        self._seen.add(key)
        if self.on_record is not None:
            self.on_record(outcome)
        return outcome


def set_history_recorder(recorder) -> None:
    """Install (or with ``None`` remove) the run-history recorder.

    Mirrors :func:`set_experiment_metrics`: the deterministic archive
    lives in ``repro.obs.history``; this wall-clock layer decides *when*
    rows are written and stamps their provenance.
    """
    global _history
    _history = recorder


def history_recorder():
    """The installed :class:`HistoryRecorder`, or None."""
    return _history


def cache_stats() -> dict[str, int]:
    """A copy of the process-wide cache hit/miss tally."""
    return dict(_cache_stats)


def reset_cache_stats() -> None:
    for k in _cache_stats:
        _cache_stats[k] = 0


def merge_cache_stats(delta: dict) -> None:
    """Fold another process's hit/miss tally into this one.

    The parallel sweep engine collects each worker's per-task stats delta
    and merges it here (and into any tallies registered by the calling
    context), so :func:`format_cache_summary` stays truthful when a
    sweep fans out over a process pool.
    """
    for k in _cache_stats:
        _bump_stat(k, int(delta.get(k, 0)))


def memoize_result(key: str, result: SimulationResult) -> None:
    """Seed the in-process memory cache with a result computed elsewhere
    (the parallel engine fans worker results back in through this)."""
    _memory_cache[key] = result


def format_cache_summary(stats: Optional[CacheTally] = None) -> str:
    """One-line human summary, printed after figure/table sweeps.

    With ``stats`` (a :class:`CacheTally`), summarizes that sweep alone;
    without it, the process-wide tally (the historical behavior).
    """
    s = _cache_stats if stats is None else stats.as_dict()
    total = s["memory_hits"] + s["disk_hits"] + s["misses"]
    return (
        f"cache: {total} runs — {s['memory_hits']} memory hits, "
        f"{s['disk_hits']} disk hits, {s['misses']} simulated"
    )


def _pressure_fraction(mp: float) -> Fraction:
    """Express a float memory pressure exactly enough (k/16-style values)."""
    return Fraction(mp).limit_denominator(4096)


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run."""

    workload: str
    #: "coma" (the paper's machine), "hcoma" (hierarchical DDM-style
    #: COMA), "numa" (CC-NUMA baseline) or "uma" (central-memory SMP).
    machine: str = "coma"
    #: Group count for the hierarchical machine.
    hierarchy_groups: int = 4
    procs_per_node: int = 1
    memory_pressure: float = 0.5
    am_assoc: int = 4
    scale: float = 1.0
    n_processors: int = 16
    seed: int = 1997
    page_size: int = 2048
    dram_bandwidth_factor: float = 1.0
    nc_bandwidth_factor: float = 1.0
    bus_bandwidth_factor: float = 1.0
    inclusive: bool = True
    track_miss_classes: bool = True
    am_victim_policy: str = "shared_first"
    replacement_receiver_policy: str = "accept"
    consistency: str = "rc"
    write_buffer_coalescing: bool = False

    def key(self) -> str:
        fields = asdict(self)
        # The simulation consumes _pressure_fraction(mp), not the raw
        # float: hash the same Fraction so two float spellings of one
        # k/16 pressure (0.3 vs 0.1 + 0.2) share a single cache entry.
        fields["memory_pressure"] = str(_pressure_fraction(self.memory_pressure))
        payload = json.dumps({"v": CACHE_VERSION, **fields}, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def with_(self, **kwargs) -> "RunSpec":
        return replace(self, **kwargs)


def build_simulation(spec: RunSpec) -> Simulation:
    """Assemble workload + machine + simulator for ``spec`` (uncached)."""
    wl = get_workload(
        spec.workload,
        n_threads=spec.n_processors,
        scale=spec.scale,
        seed=spec.seed,
    )
    space = AddressSpace(page_size=spec.page_size)
    wl.allocate(space)
    sync = SyncSpace(space, 64, wl.n_locks, wl.n_barriers)
    working_set = space.allocated_bytes

    timing = TimingConfig(
        dram_bandwidth_factor=spec.dram_bandwidth_factor,
        nc_bandwidth_factor=spec.nc_bandwidth_factor,
        bus_bandwidth_factor=spec.bus_bandwidth_factor,
    )
    config = MachineConfig(
        n_processors=spec.n_processors,
        procs_per_node=spec.procs_per_node,
        page_size=spec.page_size,
        am_assoc=spec.am_assoc,
        memory_pressure=_pressure_fraction(spec.memory_pressure),
        inclusive=spec.inclusive,
        track_miss_classes=spec.track_miss_classes,
        am_victim_policy=spec.am_victim_policy,
        replacement_receiver_policy=spec.replacement_receiver_policy,
        consistency=spec.consistency,
        write_buffer_coalescing=spec.write_buffer_coalescing,
        seed=spec.seed,
        timing=timing,
    ).sized_for(working_set)
    if spec.machine == "coma":
        machine = ComaMachine(config, space)
    elif spec.machine == "hcoma":
        from repro.coma.hierarchy import HierarchicalComaMachine

        machine = HierarchicalComaMachine(
            config, space, n_groups=spec.hierarchy_groups
        )
    elif spec.machine == "numa":
        from repro.numa.machine import NumaMachine

        machine = NumaMachine(config, space)
    elif spec.machine == "uma":
        from repro.uma.machine import UmaMachine

        machine = UmaMachine(config, space)
    else:
        raise ValueError(f"unknown machine kind {spec.machine!r}")
    programs = [wl.thread(t) for t in range(spec.n_processors)]
    sim = Simulation(machine, programs, sync)
    # The sanitizer reads the workload's sharing declarations off the sim.
    sim.workload = wl
    return sim


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------

#: Resolved cache directories, keyed by the env value that produced
#: them, so run_spec() doesn't re-run mkdir on every call.  The root is
#: made absolute at first use — a later ``os.chdir`` must not silently
#: move a relative cache dir mid-process — and only *successful*
#: resolutions are memoized: a transient ``mkdir`` failure warns once
#: but is retried on the next call, so one ``OSError`` never disables
#: the disk cache for the lifetime of a long-running server.
_cache_dir_memo: dict[str, Path] = {}
_cache_dir_warned: set[str] = set()


def reset_cache_dir_memo() -> None:
    """Forget resolved cache directories (tests relocate them a lot)."""
    _cache_dir_memo.clear()
    _cache_dir_warned.clear()


def _cache_dir() -> Optional[Path]:
    if os.environ.get("REPRO_NO_DISK_CACHE", ""):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    memoized = _cache_dir_memo.get(root)
    if memoized is not None:
        return memoized
    path = Path(root).absolute()
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        if root not in _cache_dir_warned:
            _cache_dir_warned.add(root)
            warnings.warn(
                f"disk cache unavailable: cannot create {path} ({exc}); "
                "this run will not be cached on disk (will retry)",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    _cache_dir_memo[root] = path
    return path


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` atomically.

    The temp file lives in the same directory (``os.replace`` must not
    cross filesystems) and is named per-pid so concurrent writers never
    collide; a reader either sees the old entry or the complete new one,
    never a torn prefix.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def _publish_text(path: Path, text: str) -> bool:
    """Atomic write with one retry on transient OSError (cache writes
    are best-effort: a failed publication must never fail the run)."""
    try:
        _atomic_write_text(path, text)
        return True
    except OSError:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(path, text)
            return True
        except OSError:
            return False


def _read_disk(cache_dir: Path, key: str) -> Optional[SimulationResult]:
    """Load a cached result, retrying once on transient OSError.

    Corrupt entries (torn writes from interrupted runs predating atomic
    publication) are deleted so the caller re-simulates.
    """
    f = cache_dir / f"{key}.json"
    for attempt in (0, 1):
        try:
            text = f.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            if attempt:
                return None
            continue
        try:
            return SimulationResult.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError):
            f.unlink(missing_ok=True)  # stale/corrupt cache entry
            return None
    return None


def clear_memory_cache() -> None:
    _memory_cache.clear()


def _write_manifest(
    cache_dir: Path, key: str, spec: RunSpec, cache: str,
    wall_time_s: Optional[float],
) -> None:
    """Write the provenance sidecar next to the cached result.

    Best-effort: a manifest failure must never fail the run itself.
    """
    from repro import __version__

    manifest = RunManifest(
        key=key,
        spec=asdict(spec),
        cache_version=CACHE_VERSION,
        repro_version=__version__,
        seed=spec.seed,
        git_rev=git_revision(),
        wall_time_s=wall_time_s,
        cache=cache,
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    path = manifest_path(cache_dir, key)
    try:
        manifest.write(path)
    except OSError:
        try:  # retry once: transient failures (ENOSPC races, NFS blips)
            manifest.write(path)
        except OSError:
            pass


def load_manifest(spec_or_key) -> Optional[RunManifest]:
    """The manifest sidecar for a spec (or raw key), if one exists."""
    key = spec_or_key.key() if isinstance(spec_or_key, RunSpec) else spec_or_key
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    path = manifest_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        return RunManifest.load(path)
    except (OSError, ValueError, TypeError, KeyError):
        return None


def _disk_hit(cache_dir: Path, key: str, spec: RunSpec,
              result: SimulationResult) -> SimulationResult:
    _memory_cache[key] = result
    _bump_stat("disk_hits")
    if _metrics is not None:
        _metrics.cache_requests.labels("disk_hit").inc()
    if not manifest_path(cache_dir, key).exists():
        # Entry predates manifests: backfill without wall time.
        _write_manifest(cache_dir, key, spec, "hit", None)
    return result


def run_spec(spec: RunSpec, use_cache: bool = True) -> SimulationResult:
    """Run ``spec``, consulting the memory and disk caches."""
    key = spec.key()
    if use_cache and key in _memory_cache:
        _bump_stat("memory_hits")
        if _metrics is not None:
            _metrics.cache_requests.labels("memory_hit").inc()
        result = _memory_cache[key]
        if _history is not None:
            _history.record(spec, key, result, "memory_hit")
        return result
    cache_dir = _cache_dir() if use_cache else None
    if cache_dir is not None:
        result = _read_disk(cache_dir, key)
        if result is None:
            # Double-checked read-after-miss: a concurrent worker racing
            # on this key may have published between the first look and
            # now (atomic os.replace makes the entry appear all at once).
            result = _read_disk(cache_dir, key)
        if result is not None:
            result = _disk_hit(cache_dir, key, spec, result)
            if _history is not None:
                _history.record(spec, key, result, "disk_hit")
            return result
    _bump_stat("misses")
    att = _history.attribution() if _history is not None else None
    t0 = time.perf_counter()
    sim = build_simulation(spec)
    if att is not None:
        sim.attach(att)
    result = sim.run()
    wall = time.perf_counter() - t0
    if _metrics is not None:
        _metrics.cache_requests.labels("miss").inc()
        _metrics.run_wall.observe(wall * 1e6)
    if use_cache:
        _memory_cache[key] = result
        if cache_dir is not None:
            # Manifest first: a result file must never exist without its
            # provenance sidecar, even under SIGKILL between the writes.
            _write_manifest(cache_dir, key, spec, "miss", wall)
            _publish_text(cache_dir / f"{key}.json", json.dumps(result.to_dict()))
    if _history is not None:
        _history.record(spec, key, result, "miss", wall_time_s=wall,
                        attribution=att)
    return result
