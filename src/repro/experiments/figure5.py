"""Figure 5: execution time breakdown (Busy / SLC stall / AM stall /
Remote stall) for 1-processor nodes at 50 % and 81.25 % MP and
4-processor nodes at 81.25 % MP, on the machine with doubled AM DRAM
bandwidth.

The paper's headline: "for many of the applications clustering removes
the performance penalty that was a result of the memory pressure increase
from 50 to 81%" — except LU-noncontig and Radix, which are dominated by
intra-node contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import stacked_bar
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec
from repro.stats.metrics import time_breakdown_figure5
from repro.workloads.registry import paper_workloads

#: The three bars per application: (procs_per_node, memory pressure).
BARS: list[tuple[str, int, float]] = [
    ("1p 50%", 1, 8 / 16),
    ("1p 81%", 1, 13 / 16),
    ("4p 81%", 4, 13 / 16),
]

#: Figure 5 uses the doubled-DRAM-bandwidth machine (section 4.3).
DRAM_FACTOR = 2.0


@dataclass(frozen=True)
class Figure5Bar:
    app: str
    label: str
    breakdown: dict[str, float]  # ns per category, averaged over processors

    @property
    def total(self) -> float:
        return sum(self.breakdown.values())


def run_figure5(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    use_cache: bool = True,
    seed: int = 1997,
    jobs: int | None = None,
) -> list[Figure5Bar]:
    apps = list(workloads or paper_workloads())
    meta = [(app, label) for app in apps for label, _, _ in BARS]
    specs = [
        RunSpec(
            workload=app,
            procs_per_node=ppn,
            memory_pressure=mp,
            dram_bandwidth_factor=DRAM_FACTOR,
            scale=scale,
            seed=seed,
        )
        for app in apps
        for _, ppn, mp in BARS
    ]
    results = run_specs(specs, jobs=jobs, use_cache=use_cache)
    return [
        Figure5Bar(app, label, time_breakdown_figure5(r))
        for (app, label), r in zip(meta, results)
    ]


def clustering_recovers(bars: list[Figure5Bar], app: str) -> bool:
    """True when 4-way clustering at 81 % MP is at least as fast as the
    1-processor-node machine at 81 % MP (the paper: all but one app)."""
    by_label = {b.label: b for b in bars if b.app == app}
    return by_label["4p 81%"].total <= by_label["1p 81%"].total


def format_figure5(bars: list[Figure5Bar]) -> str:
    apps: list[str] = []
    for b in bars:
        if b.app not in apps:
            apps.append(b.app)
    lines = [
        "Figure 5: execution time, normalized to 1-processor nodes at 50% MP",
        "(B = busy, s = SLC stall, A = AM stall, r = remote stall)",
    ]
    for app in apps:
        group = [b for b in bars if b.app == app]
        ref = next(b.total for b in group if b.label == "1p 50%")
        lines.append("")
        lines.append(app)
        for b in group:
            pct = 100 * b.total / ref if ref else 0.0
            lines.append(
                f"  {b.label:7s} {pct:6.1f}% |{stacked_bar(b.breakdown, ref, 48)}"
            )
    return "\n".join(lines)
