"""Process-pool sweep engine for the figure/table pipeline.

Every figure and table in the reproduction is a sweep of independent
:class:`~repro.experiments.runner.RunSpec` points — each (app x
clustering x memory-pressure) simulation is embarrassingly parallel.
:func:`run_specs` fans those points out to worker processes, streams
completed results back as they finish, and merges each worker's cache
hit/miss tally into the parent process so
:func:`~repro.experiments.runner.format_cache_summary` stays truthful
under parallelism.

Design notes:

* ``jobs=None``/``0``/``1`` takes the exact serial path (a plain
  ``run_spec`` loop), so goldens and determinism are untouched by
  default; ``jobs=-1`` means "one worker per CPU".
* Workers ship results back as ``SimulationResult.to_dict()`` payloads —
  the same representation the disk cache stores — so the parallel path
  returns byte-identical results to the serial one.
* Points that share a cache key are submitted once and fanned back out
  to every duplicate position (counted as memory hits, exactly what the
  serial loop would have recorded), so two workers never race to
  simulate the same key from one sweep.
* The disk cache underneath (:mod:`repro.experiments.runner`) publishes
  entries atomically and double-checks reads after a miss, so workers
  from *different* sweeps racing on one key converge on a single intact
  entry too.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.experiments import runner
from repro.experiments.runner import RunSpec
from repro.sim.results import SimulationResult

T = TypeVar("T")
R = TypeVar("R")

#: Preferred start methods: fork shares the parent's warm memory cache
#: (and imported modules) for free on POSIX; spawn is the fallback.
_START_METHODS = ("fork", "spawn")

#: Callback invoked as each point completes: (index, spec, result).
OnResult = Callable[[int, RunSpec, SimulationResult], None]


def _context() -> multiprocessing.context.BaseContext:
    available = multiprocessing.get_all_start_methods()
    for name in _START_METHODS:
        if name in available:
            return multiprocessing.get_context(name)
    return multiprocessing.get_context()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/``1`` mean serial,
    negative means one worker per CPU."""
    if jobs is None or jobs in (0, 1):
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _fmt_seconds(s: float) -> str:
    if s < 60:
        return f"{s:.1f}s"
    m, sec = divmod(int(round(s)), 60)
    if m < 60:
        return f"{m}m{sec:02d}s"
    h, m = divmod(m, 60)
    return f"{h}h{m:02d}m"


class SweepProgress:
    """Single-line live progress for a sweep, redrawn on stderr.

    Construction draws an initial ``0/N`` line, ``update`` rewrites it
    with the completion count, elapsed wall time and an ETA (mean wall
    time per completed point times the points remaining), and ``close``
    ends the line with a newline so subsequent output starts clean.

    ``close`` is idempotent, swallows stream errors, and emits its
    terminating newline whenever anything was drawn — including a sweep
    interrupted before a single point completed — so an exception or
    ``KeyboardInterrupt`` mid-sweep can never leave a partial
    ``\\r``-drawn line corrupting subsequent stderr output.
    """

    def __init__(self, total: int, label: str = "sweep", stream=None) -> None:
        self.total = total
        self.label = label
        self.stream = sys.stderr if stream is None else stream
        self.done = 0
        self._t0 = time.perf_counter()
        self._width = 0
        self._closed = False
        self._draw()

    def _draw(self) -> None:
        elapsed = time.perf_counter() - self._t0
        if self.done >= self.total:
            tail = "done"
        elif self.done:
            eta = elapsed / self.done * (self.total - self.done)
            tail = f"eta {_fmt_seconds(eta)}"
        else:
            tail = "eta --"
        line = (f"[{self.label}] {self.done}/{self.total} points "
                f"elapsed {_fmt_seconds(elapsed)} {tail}")
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            self._closed = True  # dead/closed stream: stop drawing

    def update(self, n: int = 1) -> None:
        if self._closed:
            return
        self.done += n
        self._draw()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._width:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass


def _run_one(task: tuple) -> tuple:
    """Worker body: run one spec, report the result and the stats delta.

    Runs in the pool worker process.  The task's hits/misses are
    isolated with an explicit per-call :class:`~repro.experiments.runner.
    CacheTally` rather than before/after snapshots of the process-global
    tally — snapshots interleave and double-count the moment anything
    else in the process records an outcome concurrently.  The task's
    wall time rides back too, so the parent can feed an attached metrics
    registry (workers can't share one across processes).
    """
    index, spec, use_cache = task
    t0 = time.perf_counter()
    with runner.tally_cache_stats() as tally:
        result = runner.run_spec(spec, use_cache=use_cache)
    wall_s = time.perf_counter() - t0
    return index, result.to_dict(), tally.as_dict(), wall_s


def run_specs(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    use_cache: bool = True,
    on_result: Optional[OnResult] = None,
    progress: Optional[bool] = None,
    progress_label: str = "sweep",
    stats: Optional[runner.CacheTally] = None,
) -> list[SimulationResult]:
    """Run a sweep of specs, optionally over a process pool.

    Returns results in spec order.  ``on_result(index, spec, result)``
    is invoked as each point completes (completion order under
    parallelism, spec order serially) — figure modules use it for
    progress streaming.  ``progress=True`` additionally redraws a live
    count/elapsed/ETA line on stderr as points complete; the default
    (``None``) turns it on exactly when stderr is a terminal, so
    redirected/captured runs stay clean.

    ``stats`` — an optional :class:`~repro.experiments.runner.CacheTally`
    receiving *this sweep's* hit/miss outcomes in isolation.  The
    process-wide tally read by ``format_cache_summary()`` still
    accumulates as before, but it interleaves when sweeps overlap in one
    process; a per-sweep tally stays truthful under concurrency.
    """
    specs = list(specs)
    n_jobs = resolve_jobs(jobs)
    if progress is None:
        try:
            progress = sys.stderr.isatty()
        except (AttributeError, ValueError):
            progress = False
    with runner.tally_cache_stats(stats):
        return _run_specs_tallied(
            specs, n_jobs, use_cache, on_result,
            bool(progress), progress_label,
        )


def _run_specs_tallied(
    specs: list[RunSpec],
    n_jobs: int,
    use_cache: bool,
    on_result: Optional[OnResult],
    progress: bool,
    progress_label: str,
) -> list[SimulationResult]:
    bar = SweepProgress(len(specs), progress_label) if progress and specs else None
    try:
        if n_jobs <= 1 or len(specs) <= 1:
            results = []
            for i, spec in enumerate(specs):
                r = runner.run_spec(spec, use_cache=use_cache)
                if on_result is not None:
                    on_result(i, spec, r)
                if bar is not None:
                    bar.update()
                results.append(r)
            return results

        # Submit each distinct cache key once; duplicate positions are
        # served from the fanned-in copy (a memory hit, as in the serial
        # loop).  Without the cache there is no key identity to exploit.
        keys = [s.key() for s in specs]
        first_index: dict[str, int] = {}
        duplicates: dict[int, list[int]] = {}
        tasks: list[tuple] = []
        for i, k in enumerate(keys):
            if use_cache and k in first_index:
                duplicates.setdefault(first_index[k], []).append(i)
            else:
                first_index.setdefault(k, i)
                tasks.append((i, specs[i], use_cache))

        results: list[Optional[SimulationResult]] = [None] * len(specs)
        ctx = _context()
        with ctx.Pool(processes=min(n_jobs, len(tasks))) as pool:
            for index, payload, delta, wall_s in pool.imap_unordered(
                _run_one, tasks, chunksize=1
            ):
                runner.merge_cache_stats(delta)
                if runner._metrics is not None:
                    runner._metrics.worker_wall.observe(wall_s * 1e6)
                result = SimulationResult.from_dict(payload)
                if use_cache:
                    runner.memoize_result(keys[index], result)
                for i in (index, *duplicates.get(index, ())):
                    results[i] = result
                    if i != index:
                        runner.merge_cache_stats({"memory_hits": 1})
                    if on_result is not None:
                        on_result(i, specs[i], result)
                    if bar is not None:
                        bar.update()
        return results  # type: ignore[return-value]  # every slot is filled
    finally:
        if bar is not None:
            bar.close()


def pool_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: Optional[int] = None
) -> list[R]:
    """Order-preserving map over a process pool (serial when ``jobs<=1``).

    For sweep work that isn't a RunSpec — Table 1's working-set
    measurements, for instance.  ``fn`` must be a picklable module-level
    callable and ``items`` picklable values.
    """
    items = list(items)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    ctx = _context()
    with ctx.Pool(processes=min(n_jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)
