"""Command-line interface.

Examples::

    coma-sim run fft --procs-per-node 4 --memory-pressure 0.8125
    coma-sim figure 2
    coma-sim figure 3 --jobs 4
    coma-sim figure 5 --scale 0.5
    coma-sim table 1
    coma-sim list
    coma-sim thresholds
    coma-sim trace synth_migratory --scale 0.1 --chrome trace.json
    coma-sim explain synth_migratory --scale 0.1 --line 0x80
    coma-sim sanitize fft --mp 0.875 --scale 0.1 --report findings.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import RunSpec, run_spec
from repro.stats.report import render_run_report
from repro.workloads.registry import paper_workloads, workload_names


from contextlib import contextmanager


@contextmanager
def _recording(args: argparse.Namespace, source: str):
    """Install a history recorder for the duration of a command when the
    user passed ``--record [BATCH]``; print its summary on the way out.

    Recording is strictly opt-in here, so default runs stay zero-overhead
    and byte-identical; an explicit ``--record`` wins over the
    ``REPRO_NO_HISTORY`` environment gate.
    """
    batch = getattr(args, "record", None)
    if batch is None:
        yield None
        return
    from repro.experiments.runner import HistoryRecorder, set_history_recorder
    from repro.obs.history import HistoryArchive

    archive = HistoryArchive(getattr(args, "archive", None))
    rec = HistoryRecorder(archive, source=source, batch=batch or None)
    set_history_recorder(rec)
    try:
        yield rec
    finally:
        set_history_recorder(None)
        print(rec.summary(), file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = RunSpec(
        workload=args.workload,
        machine=args.machine,
        procs_per_node=args.procs_per_node,
        memory_pressure=args.memory_pressure,
        am_assoc=args.am_assoc,
        scale=args.scale,
        seed=args.seed,
        dram_bandwidth_factor=args.dram_bandwidth,
        bus_bandwidth_factor=args.bus_bandwidth,
        inclusive=not args.non_inclusive,
    )
    with _recording(args, "run"):
        result = run_spec(spec, use_cache=not args.no_cache)
    print(render_run_report(result))
    return 0


def _trace_spec(args: argparse.Namespace) -> RunSpec:
    return RunSpec(
        workload=args.workload,
        machine=args.machine,
        procs_per_node=args.procs_per_node,
        memory_pressure=args.memory_pressure,
        scale=args.scale,
        seed=args.seed,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.experiments.runner import build_simulation
    from repro.obs import ChromeTraceSink, FlightRecorder, JsonlTraceSink, TeeSink
    from repro.obs.timeline import TimelineSampler

    sinks = []
    jsonl_path = args.jsonl
    if jsonl_path is None and args.chrome is None:
        jsonl_path = f"{args.workload}.trace.jsonl"
    js = JsonlTraceSink(jsonl_path) if jsonl_path else None
    if js is not None:
        sinks.append(js)
    ct = ChromeTraceSink(args.chrome) if args.chrome else None
    if ct is not None:
        sinks.append(ct)
    flight = FlightRecorder(capacity=args.flight, dump_path=args.flight_dump)
    sinks.append(flight)
    if args.spans:
        # Opt in per instance: span events flow to every attached sink
        # (trace files grow; goldens without --spans stay byte-identical).
        for s in sinks:
            s.wants_spans = True

    tl = TimelineSampler() if args.timeline else None
    sim = build_simulation(_trace_spec(args))
    sim.machine.set_trace(TeeSink(*sinks))
    if tl is not None:
        # Sample every 500 kernel events: dense enough for short traced
        # runs, and the run itself is already paying for event tracing.
        sim.attach(tl, every=500)
    try:
        result = sim.run()
        if tl is not None and ct is not None:
            # Counter tracks land in the same Perfetto file (before close
            # writes it) so spans and timelines render side by side.
            ct.trace_events.extend(tl.perfetto_events())
    except Exception as exc:
        dump = getattr(exc, "flight_dump", None)
        if dump:
            print(dump, file=sys.stderr)
        raise
    finally:
        for s in sinks:
            s.close()
    print(f"simulated {result.elapsed_ns} ns, {flight.total} trace events")
    if js is not None:
        print(f"jsonl: {jsonl_path} ({js.count} events)")
    if ct is not None:
        print(f"chrome trace: {args.chrome} ({ct.count} events) "
              "— open in https://ui.perfetto.dev")
    if tl is not None:
        with open(args.timeline, "w") as fh:
            _json.dump(tl.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"timeline: {args.timeline} ({len(tl.t)} samples)")
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    import json as _json

    from repro.experiments.runner import build_simulation
    from repro.obs.openmetrics import to_openmetrics
    from repro.obs.spans import (
        StallAttribution,
        format_attribution,
        format_span_tree,
    )
    from repro.obs.timeline import TimelineSampler

    from repro.analysis.bounds import BoundsCertifier, envelope_for

    spec = _trace_spec(args)
    att = StallAttribution(top_spans=args.top_spans)
    tl = TimelineSampler() if args.timeline else None
    sim = build_simulation(spec)
    cert = BoundsCertifier(envelope_for(args.machine, sim.machine.config.timing))
    sim.attach(att)
    sim.attach(cert)
    if tl is not None:
        sim.attach(tl, every=500)
    result = sim.run()
    cert.finalize()
    report = att.report(stalls=result.stalls, elapsed_ns=result.elapsed_ns)
    report["spec_key"] = spec.key()
    report["bounds"] = {
        "spans_checked": cert.checked,
        "violations": cert.counts(),
        "ok": cert.ok(),
    }
    if args.format == "json":
        out = _json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        out = format_attribution(report) + "\n"
        b = report["bounds"]
        v = b["violations"]
        out += (f"static bounds: {b['spans_checked']} span(s) checked, "
                f"B101={v.get('B101', 0)} B102={v.get('B102', 0)} "
                f"B103={v.get('B103', 0)}\n")
        trees = att.slowest_spans()
        if trees:
            out += f"{len(trees)} slowest access(es), full span trees:\n"
            out += "\n".join(format_span_tree(t) for t in trees) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out)
        print(f"attribution: {args.out} ({args.format})")
    else:
        print(out, end="")
    if args.openmetrics:
        with open(args.openmetrics, "w") as fh:
            fh.write(to_openmetrics(att.registry, exemplars=att.exemplars()))
        print(f"openmetrics: {args.openmetrics} (latency histograms "
              "with tail exemplars)")
    if tl is not None:
        with open(args.timeline, "w") as fh:
            _json.dump(tl.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"timeline: {args.timeline} ({len(tl.t)} samples)")
    errs = report["conservation_errors"]
    if errs:
        print("conservation violations:", file=sys.stderr)
        for e in errs:
            print(f"  {e}", file=sys.stderr)
        return 1
    if not report["bounds"]["ok"]:
        print("static bound violations:", file=sys.stderr)
        for f in cert.findings[:5]:
            print(f"  {f.rule}: {f.message}", file=sys.stderr)
        return 1
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.bounds import (
        BoundsCertifier,
        bound_table,
        envelope_for,
        format_bounds,
    )
    from repro.experiments.runner import build_simulation

    spec = _trace_spec(args)
    sim = build_simulation(spec)
    timing = sim.machine.config.timing
    rows = bound_table(args.machine, timing)

    cert = None
    if args.check:
        cert = BoundsCertifier(envelope_for(args.machine, timing),
                               max_witnesses=args.max_witnesses)
        sim.attach(cert)
        sim.run()
        cert.finalize()

    if args.format == "json" or args.out:
        from repro import __version__
        from repro.obs.manifest import git_revision

        payload = {
            "provenance": {
                "repro": __version__,
                "git_rev": git_revision() or "unknown",
                "tool": "coma-sim bounds",
            },
            "machine": args.machine,
            "spec_key": spec.key(),
            "bounds": [r.to_record() for r in rows],
        }
        if cert is not None:
            payload["certification"] = cert.report()
        text = _json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        text = format_bounds(rows, args.machine) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"bounds: {args.out} ({args.format})")
    else:
        print(text, end="")

    if cert is None:
        return 0
    counts = cert.counts()
    if cert.ok():
        print(f"bounds OK: {cert.checked} span(s) within the static "
              f"envelope (machine={args.machine})")
        return 0
    print(f"bounds FAILED: {sum(counts.values())} violation(s) in "
          f"{cert.checked} span(s): "
          + " ".join(f"{k}={v}" for k, v in sorted(counts.items()) if v),
          file=sys.stderr)
    for f in cert.findings:
        print(f"{f.rule}: {f.message}", file=sys.stderr)
        if f.detail:
            for line in f.detail.splitlines():
                print(f"    {line}", file=sys.stderr)
    return 1


def _cmd_coverage(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.coverage import (
        MICRO_RECIPES,
        CoverageAnalysis,
        CoverageMap,
        format_coverage,
        run_micro,
    )
    from repro.experiments.runner import RunSpec, build_simulation

    ana = CoverageAnalysis(n_nodes=args.nodes)
    for wl in args.workloads:
        for mp in args.memory_pressure:
            spec = RunSpec(workload=wl, machine=args.machine,
                           memory_pressure=mp, scale=args.scale)
            sim = build_simulation(spec)
            cov = CoverageMap()
            cov.attach_to(sim)
            sim.run()
            ana.add_run(f"{wl}@mp={mp:g}", cov.exercised)
    if args.micro:
        micro: set = set()
        for recipe in MICRO_RECIPES.values():
            if recipe is not None:
                micro |= run_micro(recipe).exercised
        ana.add_run("micro", micro)
    report = ana.report()

    if args.format == "json" or args.out:
        from repro import __version__
        from repro.obs.manifest import git_revision

        payload = {
            "provenance": {
                "repro": __version__,
                "git_rev": git_revision() or "unknown",
                "tool": "coma-sim coverage",
            },
            "machine": args.machine,
            "scale": args.scale,
            **report,
        }
        text = _json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        text = format_coverage(report) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"coverage: {args.out} ({args.format})")
    else:
        print(text, end="")

    if args.min_pct is not None and report["total_pct"] < args.min_pct:
        print(f"coverage FAILED: {report['total_pct']:.2f}% of reachable "
              f"cells < required {args.min_pct:.2f}%", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.experiments.runner import build_simulation
    from repro.obs import LineBiography, TeeSink

    bio = LineBiography()
    sim = build_simulation(_trace_spec(args))
    att = None
    if args.slowest:
        from repro.obs.spans import StallAttribution, format_span_tree

        att = StallAttribution(top_spans=args.slowest)
        sim.machine.set_trace(TeeSink(bio, att))
    else:
        sim.machine.set_trace(bio)
    sim.run()
    if att is not None:
        trees = att.slowest_spans()
        print(f"{len(trees)} slowest access(es), full span trees:")
        for tree in trees:
            print(format_span_tree(tree))
        if args.line is None:
            return 0
    if args.line is None:
        print("busiest lines:")
        for ln in bio.lines()[: args.top]:
            print(f"  {ln:#x}: {len(bio.history(ln))} event(s)")
        print("re-run with --line <LINE> for one line's full biography")
        return 0
    line = int(args.line, 0)
    print(bio.narrate(line))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    with _recording(args, "figure"):
        return _figure_body(args)


def _figure_body(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale, "jobs": args.jobs}
    if args.workloads:
        kwargs["workloads"] = args.workloads
    if args.number == 2:
        from repro.experiments.figure2 import format_figure2, run_figure2

        print(format_figure2(run_figure2(**kwargs)))
    elif args.number == 3:
        from repro.experiments.figure3 import format_traffic, run_figure3

        print(
            format_traffic(
                run_figure3(**kwargs),
                "Figure 3: traffic for 1 and 4-processor nodes at "
                "6/50/75/81/87% MP",
            )
        )
    elif args.number == 4:
        from repro.experiments.figure4 import format_figure4, run_figure4

        print(format_figure4(run_figure4(**kwargs)))
    elif args.number == 5:
        from repro.experiments.figure5 import format_figure5, run_figure5

        print(format_figure5(run_figure5(**kwargs)))
    else:
        print(f"no figure {args.number} in the paper", file=sys.stderr)
        return 2
    _print_cache_summary()
    return 0


def _print_cache_summary() -> None:
    from repro.experiments.runner import format_cache_summary

    print(format_cache_summary(), file=sys.stderr)


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number != 1:
        print("the paper has one table (Table 1)", file=sys.stderr)
        return 2
    from repro.experiments.table1 import format_table1, run_table1

    with _recording(args, "table"):
        print(format_table1(run_table1(scale=args.scale, jobs=args.jobs)))
    _print_cache_summary()
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    paper = set(paper_workloads())
    print("paper applications (Table 1):")
    for n in paper_workloads():
        print(f"  {n}")
    extra = [n for n in workload_names() if n not in paper]
    if extra:
        print("synthetic workloads:")
        for n in extra:
            print(f"  {n}")
    return 0


def _cmd_thresholds(_args: argparse.Namespace) -> int:
    from repro.experiments.ablations import format_replication_thresholds

    print(format_replication_thresholds())
    return 0


def _cmd_protocol(_args: argparse.Namespace) -> int:
    from repro.coma.protocol import format_table

    print(format_table())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.certify import certify_machines, format_certification
    from repro.analysis.crosscheck import crosscheck
    from repro.analysis.liveness import check_liveness, format_liveness_report
    from repro.analysis.modelcheck import check_protocol, format_report

    report = check_protocol(n_nodes=args.nodes, n_lines=args.lines)
    print(format_report(report))  # findings (with traces) included when broken
    ok = report.ok
    lv = check_liveness(n_nodes=args.nodes, n_lines=args.lines)
    print(format_liveness_report(lv))
    ok = ok and lv.ok
    cert = certify_machines(n_nodes=args.nodes)
    print(format_certification(cert))
    ok = ok and cert.ok
    if not args.no_crosscheck:
        xc = crosscheck(nodes=min(args.nodes, 3), depth=args.depth)
        status = "OK" if xc.ok else "DIVERGED"
        print(
            f"machine crosscheck {status}: "
            f"{xc.stats.get('sequences', 0)} op sequences, "
            f"{xc.stats.get('scenarios', 0)} relocation scenarios"
        )
        if not xc.ok:
            from repro.analysis.report import format_findings

            print(format_findings(xc.findings), file=sys.stderr)
        ok = ok and xc.ok
    return 0 if ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import format_findings
    from repro.analysis.sanitize import sanitizer_for
    from repro.experiments.runner import build_simulation

    spec = _trace_spec(args)
    sim = build_simulation(spec)
    san = sanitizer_for(
        sim,
        spec=spec,
        allow=args.allow or (),
        window=args.window,
        pingpong_threshold=args.pingpong,
    )
    sim.machine.set_trace(san)
    sim.run()
    report = san.finish()
    prov = san.provenance or {}
    print(f"# provenance: repro={prov.get('repro', '?')} "
          f"cache_version={prov.get('cache_version', '?')} "
          f"git_rev={prov.get('git_rev', '?')} seed={prov.get('seed', '?')}")
    s = report.stats
    print(f"sanitize {args.workload} ({args.machine}, "
          f"mp={args.memory_pressure}): {s['events']} events — "
          f"{s['accesses']} accesses, {s['syncops']} sync ops, "
          f"{s['transitions']} transitions, {s['replacements']} relocations")
    if args.report:
        payload = {
            "provenance": prov,
            "stats": report.stats,
            "findings": [
                {"rule": f.rule, "message": f.message, "path": f.path,
                 "detail": f.detail}
                for f in report.findings
            ],
        }
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report: {args.report}")
    if report.findings:
        print(format_findings(report.findings), file=sys.stderr)
        print(f"sanitize FAILED: {len(report.findings)} finding(s)",
              file=sys.stderr)
        return 1
    suppressed = s.get("suppressed", 0)
    tail = f" ({suppressed} suppressed)" if suppressed else ""
    print(f"sanitize OK: no races, no stale values, no ping-pong{tail}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.lint import default_root, lint_file, lint_tree
    from repro.analysis.report import AnalysisReport, format_findings

    if args.explain:
        from repro.analysis.report import rule_registry

        registry = rule_registry()
        doc = registry.get(args.explain)
        if doc is None:
            known = " ".join(sorted(registry))
            print(f"coma-sim lint: unknown rule {args.explain!r}\n"
                  f"known rules: {known}", file=sys.stderr)
            return 2
        print(f"{args.explain}: {doc}")
        return 0

    report = AnalysisReport()
    for target in args.paths or [default_root()]:
        target = Path(target)
        if target.is_dir():
            report.extend(lint_tree(target))
        elif target.is_file():
            report.findings.extend(lint_file(target))
            report.stats["files"] = report.stats.get("files", 0) + 1
        else:
            print(f"coma-sim lint: no such file or directory: {target}",
                  file=sys.stderr)
            return 2
    if args.rules:
        wanted = set(args.rules)
        report.findings = [f for f in report.findings if f.rule in wanted]
    if args.format == "json" or args.out:
        # Same shape the sanitizer report uses (provenance + stats +
        # findings), so CI consumes both with one parser; lint findings
        # additionally carry a 1-based source line.
        from repro import __version__
        from repro.obs.manifest import git_revision

        payload = {
            "provenance": {
                "repro": __version__,
                "git_rev": git_revision() or "unknown",
                "tool": "coma-sim lint",
            },
            "stats": report.stats,
            "findings": [
                {"rule": f.rule, "message": f.message, "path": f.path,
                 "line": f.line, "detail": f.detail}
                for f in report.findings
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"report: {args.out}")
        if args.format == "json":
            print(text, end="")
    if args.format != "json":
        if report.findings:
            print(format_findings(report.findings))
        n = report.stats.get("files", 0)
        print(f"{len(report.findings)} finding(s) in {n} file(s)")
    return 1 if report.findings else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.runner import RunSpec, build_simulation
    from repro.stats.profiler import SharingProfiler, format_profile

    spec = RunSpec(
        workload=args.workload,
        procs_per_node=args.procs_per_node,
        memory_pressure=args.memory_pressure,
        scale=args.scale,
    )
    prof = SharingProfiler()
    sim = build_simulation(spec)
    sim.attach(prof, every=args.every)
    sim.run()
    prof.sample(sim.machine)
    print(format_profile(prof.report()))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.experiments.runner import build_simulation, set_experiment_metrics
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.openmetrics import (
        snapshot_provenance,
        to_json,
        to_openmetrics,
        to_table,
    )

    spec = _trace_spec(args)
    registry = MetricsRegistry()
    set_experiment_metrics(registry)
    try:
        sim = build_simulation(spec)
        sim.attach(registry)
        sim.run()
    finally:
        set_experiment_metrics(None)
    if args.format == "openmetrics":
        out = to_openmetrics(registry)
    elif args.format == "json":
        prov = snapshot_provenance()
        prov["spec_key"] = spec.key()
        out = to_json(registry, provenance=prov)
    else:
        out = to_table(registry) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out)
        print(f"metrics: {args.out} ({args.format})")
    else:
        print(out, end="")
    return 0


#: Sentinel for a bare ``--compare`` (no path): gate against the archive.
_ROLLING = "@rolling"

#: Fallback baseline when the archive holds no bench rows yet.
_BASELINE_FILE = "benchmarks/BENCH_baseline.json"


def _bench_baseline(args: argparse.Namespace):
    """Resolve the ``--compare`` operand to a BENCH payload.

    A path loads that file.  Bare ``--compare`` gates against the rolling
    median of the last ``--baseline-runs`` archived bench rows, falling
    back to the committed ``benchmarks/BENCH_baseline.json`` while the
    archive is still empty.  Returns ``(payload_or_None, label)``.
    """
    from repro.bench import load_bench

    if args.compare != _ROLLING:
        return load_bench(args.compare), args.compare
    from repro.bench.compare import rolling_baseline
    from repro.obs.history import HistoryArchive

    archive = HistoryArchive(args.archive)
    old = rolling_baseline(archive, last=args.baseline_runs,
                           quick=args.quick)
    if old is not None:
        runs = old.get("rolling", {}).get("runs", "?")
        return old, f"rolling median of {runs} archived run(s)"
    from pathlib import Path

    if Path(_BASELINE_FILE).exists():
        return load_bench(_BASELINE_FILE), f"{_BASELINE_FILE} (fallback)"
    raise BenchBaselineError(
        f"no archived bench runs in {archive.path} and no "
        f"{_BASELINE_FILE} fallback; run 'coma-sim bench' once with "
        "recording enabled or pass an explicit --compare PATH"
    )


class BenchBaselineError(Exception):
    """Bare ``--compare`` had neither archive rows nor a baseline file."""


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchFileError,
        compare_benches,
        format_comparison,
        has_regression,
        load_bench,
        run_bench,
        write_bench,
    )
    from repro.obs.history import history_disabled

    try:
        old = label = None
        if args.compare is not None:
            old, label = _bench_baseline(args)
        if args.new is not None:
            # Compare two existing files; no timing run.
            if old is None:
                print("--new requires --compare OLD", file=sys.stderr)
                return 2
            new = load_bench(args.new)
        else:
            run_label = "quick suites" if args.quick else "full suites"
            print(f"bench: {run_label}, {args.repeats} repeat(s), "
                  f"jobs={args.jobs}", file=sys.stderr)
            new = run_bench(
                quick=args.quick, jobs=args.jobs, repeats=args.repeats,
                only=args.suites or None,
                echo=lambda line: print(line, file=sys.stderr),
            )
            path = write_bench(new, out=args.out, out_dir=args.out_dir)
            print(f"wrote {path}")
            record = args.record if args.record is not None \
                else not history_disabled()
            if record:
                from repro.obs.history import HistoryArchive

                outcome = HistoryArchive(args.archive).record_bench(new)
                print(f"history: bench {outcome}", file=sys.stderr)
    except (BenchFileError, BenchBaselineError, ValueError) as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    if old is None:
        return 0
    print(f"baseline: {label}", file=sys.stderr)
    rows = compare_benches(old, new, threshold_pct=args.threshold)
    print(format_comparison(rows, args.threshold))
    return 1 if has_regression(rows) else 0


def _emit(out: str, args: argparse.Namespace, what: str) -> None:
    """Print ``out`` or write it to ``--out`` (with a pointer line)."""
    if getattr(args, "out", None):
        with open(args.out, "w") as fh:
            fh.write(out if out.endswith("\n") else out + "\n")
        print(f"{what}: {args.out}")
    else:
        print(out)


def _cmd_history(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import (
        HistoryArchive,
        HistoryArchiveError,
        format_history,
        format_trend,
    )

    archive = HistoryArchive(args.archive)
    try:
        if args.action == "list":
            rows = archive.list_runs(
                workload=args.workload, key=args.key,
                batch=args.batch, limit=args.limit,
            )
            if args.format == "json":
                _emit(_json.dumps(rows, indent=2, sort_keys=True),
                      args, "history")
            else:
                print(f"history: {len(rows)} of {archive.run_count()} "
                      f"run(s) in {archive.path}")
                if rows:
                    print(format_history(rows))
            return 0
        if args.action == "show":
            if not args.key:
                print("history show: a run key (or unique prefix) is "
                      "required", file=sys.stderr)
                return 2
            row = archive.get_run(args.key, rev=args.rev)
            if row is None:
                print(f"history: no run matching key {args.key!r}",
                      file=sys.stderr)
                return 1
            _emit(_json.dumps(row, indent=2, sort_keys=True),
                  args, "history")
            return 0
        if args.action == "trend":
            report = archive.trend(
                last=args.last, threshold_pct=args.threshold,
                quick=args.quick or None,
            )
            if args.format == "json":
                _emit(_json.dumps(report, indent=2, sort_keys=True),
                      args, "trend")
            else:
                print(format_trend(report))
            flagged = any(r["status"] == "regression"
                          for r in report["suites"].values())
            return 1 if flagged else 0
        if args.action == "gc":
            stats = archive.gc(
                keep_revisions=args.keep_revisions,
                keep_benches=args.keep_benches,
                dry_run=args.dry_run,
            )
            tag = "would delete" if stats["dry_run"] else "deleted"
            print(f"history gc: {tag} {stats['runs_deleted']} run row(s), "
                  f"{stats['benches_deleted']} bench row(s)")
            return 0
    except HistoryArchiveError as exc:
        print(f"history: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse restricts choices


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.diff import (
        diff_runs,
        diff_sweeps,
        format_diff,
        format_sweep_diff,
    )
    from repro.obs.history import HistoryArchive, HistoryArchiveError

    if not args.sweep and len(args.keys) != 2:
        print("diff: expected exactly two run keys (or --sweep A B)",
              file=sys.stderr)
        return 2
    archive = HistoryArchive(args.archive)
    try:
        if args.sweep:
            batch_a, batch_b = args.sweep
            rows_a = [archive.get_run(r["key"], rev=r["rev"])
                      for r in archive.list_runs(batch=batch_a, limit=1000)]
            rows_b = [archive.get_run(r["key"], rev=r["rev"])
                      for r in archive.list_runs(batch=batch_b, limit=1000)]
            if not rows_a or not rows_b:
                missing = batch_a if not rows_a else batch_b
                print(f"diff: no archived runs in batch {missing!r}",
                      file=sys.stderr)
                return 1
            report = diff_sweeps(rows_a, rows_b, noise_pct=args.noise)
            out = (_json.dumps(report, indent=2, sort_keys=True)
                   if args.format == "json" else format_sweep_diff(report))
            _emit(out, args, "diff")
            worst = report.get("worst_regression")
            return 1 if worst and worst["elapsed"]["change_pct"] > \
                args.noise else 0
        a = archive.get_run(args.keys[0])
        b = archive.get_run(args.keys[1])
        for key, row in ((args.keys[0], a), (args.keys[1], b)):
            if row is None:
                print(f"diff: no archived run matching key {key!r}",
                      file=sys.stderr)
                return 1
        report = diff_runs(a, b, noise_pct=args.noise)
        out = (_json.dumps(report, indent=2, sort_keys=True)
               if args.format == "json" else format_diff(report))
        _emit(out, args, "diff")
        return 0
    except HistoryArchiveError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments import export as ex

    if args.artifact == "figure2":
        from repro.experiments.figure2 import run_figure2

        rows = run_figure2(scale=args.scale, jobs=args.jobs)
        out = ex.figure2_json(rows) if args.format == "json" else ex.figure2_csv(rows)
    elif args.artifact == "figure3":
        from repro.experiments.figure3 import run_figure3

        sweep = run_figure3(scale=args.scale, jobs=args.jobs)
        out = ex.traffic_json(sweep) if args.format == "json" else ex.traffic_csv(sweep)
    elif args.artifact == "figure4":
        from repro.experiments.figure4 import run_figure4

        sweep = run_figure4(scale=args.scale, jobs=args.jobs)
        out = ex.traffic_json(sweep) if args.format == "json" else ex.traffic_csv(sweep)
    elif args.artifact == "figure5":
        from repro.experiments.figure5 import run_figure5

        bars = run_figure5(scale=args.scale, jobs=args.jobs)
        out = ex.figure5_json(bars) if args.format == "json" else ex.figure5_csv(bars)
    elif args.artifact == "table1":
        from repro.experiments.table1 import run_table1

        if args.format == "json":
            print("table1 supports csv only", file=sys.stderr)
            return 2
        out = ex.table1_csv(run_table1(scale=args.scale, jobs=args.jobs))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    if args.provenance:
        out = _with_provenance(out, args.format)
    print(out, end="")
    _print_cache_summary()
    return 0


def _with_provenance(out: str, fmt: str) -> str:
    """Stamp an export with the code version that produced it.

    CSV gets a ``# provenance:`` comment line; JSON gets a top-level
    ``_provenance`` object (a comment would break parsers).
    """
    import json
    from datetime import datetime, timezone

    from repro.obs.manifest import git_revision, provenance_header

    ts = datetime.now(timezone.utc).isoformat(timespec="seconds")
    if fmt == "json":
        from repro import __version__
        from repro.experiments.runner import CACHE_VERSION

        obj = json.loads(out)
        prov = {
            "repro": __version__,
            "cache_version": CACHE_VERSION,
            "git_rev": git_revision() or "unknown",
            "timestamp": ts,
        }
        if isinstance(obj, list):
            obj = {"_provenance": prov, "data": obj}
        else:
            obj["_provenance"] = prov
        return json.dumps(obj, indent=2, sort_keys=True) + "\n"
    return provenance_header(timestamp=ts) + out


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import ServeConfig, format_listen_line, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        sweep_jobs=args.sweep_jobs,
        max_inflight=args.max_inflight,
        rate=args.rate,
        burst=args.burst,
        max_sweep_points=args.max_sweep_points,
        drain_timeout=args.drain_timeout,
        history_path=args.archive,
        record=args.record,
    )

    def ready(service) -> None:
        print(format_listen_line(service), file=sys.stderr, flush=True)

    try:
        return asyncio.run(serve_forever(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.loadtest import format_report, run_loadtest

    report = asyncio.run(run_loadtest(
        args.host, args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        seed0=args.seed0,
    ))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"loadtest: {args.out}")
    print(format_report(report))
    if not report["ok"]:
        print("loadtest: coalesced mix ran more than one simulation",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="coma-sim",
        description="Cluster-based COMA multiprocessor simulator "
        "(Landin & Karlgren, IPPS 1997 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("--machine", choices=["coma", "numa"], default="coma")
    run.add_argument("--procs-per-node", type=int, default=1, choices=[1, 2, 4, 8, 16])
    run.add_argument("--memory-pressure", type=float, default=0.5)
    run.add_argument("--am-assoc", type=int, default=4)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=1997)
    run.add_argument("--dram-bandwidth", type=float, default=1.0)
    run.add_argument("--bus-bandwidth", type=float, default=1.0)
    run.add_argument("--non-inclusive", action="store_true")
    run.add_argument("--no-cache", action="store_true")
    run.set_defaults(func=_cmd_run)

    def _jobs_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--jobs", "-j", type=int, default=1, metavar="N",
            help="worker processes for the sweep (1 = serial, the "
            "default; -1 = one per CPU)",
        )

    def _record_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--record", nargs="?", const="", default=None, metavar="BATCH",
            help="archive completed runs in the history store, optionally "
            "tagged with a batch name (see 'coma-sim history')",
        )
        sp.add_argument(
            "--archive", metavar="PATH",
            help="history archive file (default "
            "$REPRO_HISTORY_DIR/history.sqlite, .repro_history/)",
        )

    _record_flags(run)

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("number", type=int)
    fig.add_argument("--scale", type=float, default=1.0)
    fig.add_argument("--workloads", nargs="*", metavar="APP",
                     choices=workload_names(),
                     help="restrict the sweep to these applications")
    _jobs_flag(fig)
    _record_flags(fig)
    fig.set_defaults(func=_cmd_figure)

    tab = sub.add_parser("table", help="reproduce a paper table")
    tab.add_argument("number", type=int)
    tab.add_argument("--scale", type=float, default=1.0)
    _jobs_flag(tab)
    _record_flags(tab)
    tab.set_defaults(func=_cmd_table)

    ls = sub.add_parser("list", help="list available workloads")
    ls.set_defaults(func=_cmd_list)

    th = sub.add_parser("thresholds", help="print replication thresholds")
    th.set_defaults(func=_cmd_thresholds)

    pr = sub.add_parser("protocol", help="print the E/O/S/I transition table")
    pr.set_defaults(func=_cmd_protocol)

    vf = sub.add_parser(
        "verify",
        help="model-check the coherence protocol and cross-check the machine",
    )
    vf.add_argument("--nodes", type=int, default=3, choices=[2, 3, 4])
    vf.add_argument("--lines", type=int, default=1, choices=[1, 2])
    vf.add_argument("--depth", type=int, default=3,
                    help="crosscheck op-sequence depth")
    vf.add_argument("--no-crosscheck", action="store_true",
                    help="skip driving the executable machine")
    vf.set_defaults(func=_cmd_verify)

    ln = sub.add_parser(
        "lint", help="run the simulator-hygiene linter (see docs/VERIFICATION.md)"
    )
    ln.add_argument("paths", nargs="*",
                    help="files or package roots (default: the repro package)")
    ln.add_argument("--rules", nargs="*", metavar="ID",
                    help="only report these rule IDs")
    ln.add_argument("--format", choices=["text", "json"], default="text",
                    help="output format (json mirrors the sanitize "
                    "report shape)")
    ln.add_argument("--out", metavar="PATH",
                    help="also write the JSON report to a file (CI "
                    "artifact)")
    ln.add_argument("--explain", metavar="RULE",
                    help="print the documentation for one rule ID (from "
                    "the consolidated registry) and exit")
    ln.set_defaults(func=_cmd_lint)

    pf = sub.add_parser("profile", help="sharing/replication profile of a run")
    pf.add_argument("workload", choices=workload_names())
    pf.add_argument("--procs-per-node", type=int, default=1)
    pf.add_argument("--memory-pressure", type=float, default=0.5)
    pf.add_argument("--scale", type=float, default=1.0)
    pf.add_argument("--every", type=int, default=5000)
    pf.set_defaults(func=_cmd_profile)

    exp = sub.add_parser("export", help="export figure data as CSV/JSON")
    exp.add_argument(
        "artifact",
        choices=["figure2", "figure3", "figure4", "figure5", "table1"],
    )
    exp.add_argument("--format", choices=["csv", "json"], default="csv")
    exp.add_argument("--scale", type=float, default=1.0)
    _jobs_flag(exp)
    exp.add_argument("--provenance", action="store_true",
                     help="stamp the export with code version / git revision")
    exp.set_defaults(func=_cmd_export)

    def _traced(sp: argparse.ArgumentParser,
                machines: tuple = ("coma", "hcoma")) -> None:
        sp.add_argument("workload", choices=workload_names())
        sp.add_argument("--machine", choices=list(machines), default="coma")
        sp.add_argument("--procs-per-node", type=int, default=1,
                        choices=[1, 2, 4, 8, 16])
        sp.add_argument("--memory-pressure", "--mp", type=float, default=0.5)
        sp.add_argument("--scale", type=float, default=1.0)
        sp.add_argument("--seed", type=int, default=1997)

    tr = sub.add_parser(
        "trace", help="run one simulation with event tracing enabled"
    )
    _traced(tr)
    tr.add_argument("--jsonl", metavar="PATH",
                    help="write a JSONL event trace (default: "
                    "<workload>.trace.jsonl when --chrome is not given)")
    tr.add_argument("--chrome", metavar="PATH",
                    help="write a Chrome trace-event file for Perfetto")
    tr.add_argument("--flight", type=int, default=4096, metavar="N",
                    help="flight-recorder capacity (last N events)")
    tr.add_argument("--flight-dump", metavar="PATH",
                    help="where to dump the flight recorder if the run dies")
    tr.add_argument("--spans", action="store_true",
                    help="emit causal span trees per memory access "
                    "(phase slices + flow arrows in --chrome)")
    tr.add_argument("--timeline", metavar="PATH",
                    help="sample a metric timeline over simulated time and "
                    "write the JSON series; counter tracks are merged "
                    "into --chrome")
    tr.set_defaults(func=_cmd_trace)

    at = sub.add_parser(
        "attribute",
        help="attribute simulated latency to protocol phases "
        "(busy/read/write/sync/relocation breakdown per processor)",
    )
    _traced(at)
    at.add_argument("--format", choices=["table", "json"], default="table")
    at.add_argument("--top-spans", type=int, default=10, metavar="N",
                    help="keep full span trees for the N slowest accesses")
    at.add_argument("--out", metavar="PATH",
                    help="write the report to a file instead of stdout")
    at.add_argument("--openmetrics", metavar="PATH",
                    help="also export latency histograms as OpenMetrics "
                    "with tail exemplars")
    at.add_argument("--timeline", metavar="PATH",
                    help="also sample a metric timeline and write the "
                    "JSON series")
    at.set_defaults(func=_cmd_attribute)

    bo = sub.add_parser(
        "bounds",
        help="static min/max latency bounds per access path, optionally "
        "certified against a run's observed span trees (B101-B103)",
    )
    _traced(bo, machines=("coma", "hcoma", "numa"))
    bo.add_argument("--check", action="store_true",
                    help="run the workload and certify every span against "
                    "its static envelope (non-zero exit on violation)")
    bo.add_argument("--format", choices=["table", "json"], default="table")
    bo.add_argument("--out", metavar="PATH",
                    help="write the report to a file instead of stdout")
    bo.add_argument("--max-witnesses", type=int, default=25, metavar="N",
                    help="keep at most N violation witnesses")
    bo.set_defaults(func=_cmd_bounds)

    cv = sub.add_parser(
        "coverage",
        help="protocol-table coverage: reachable cells vs cells the "
        "workloads exercise (dead cells, gaps, per-workload %)",
    )
    cv.add_argument("--workloads", nargs="*", metavar="WL",
                    default=["synth_migratory", "synth_producer_consumer",
                             "fft"],
                    help="workloads to trace (default: two synthetics + fft)")
    cv.add_argument("--machine", choices=["coma", "hcoma"], default="coma")
    cv.add_argument("--memory-pressure", "--mp", type=float, nargs="*",
                    default=[0.0625, 0.875], metavar="MP",
                    help="memory pressures to trace each workload at "
                    "(default: the paper's 6.25%% and 87.5%%)")
    cv.add_argument("--scale", type=float, default=0.1)
    cv.add_argument("--nodes", type=int, default=3, choices=[2, 3, 4],
                    help="model-checker configuration for the reachable set")
    cv.add_argument("--micro", action="store_true",
                    help="also run the directed micro-workloads that drive "
                    "otherwise-uncovered cells")
    cv.add_argument("--min-pct", type=float, metavar="PCT",
                    help="exit non-zero when total coverage of reachable "
                    "cells falls below PCT (CI gate)")
    cv.add_argument("--format", choices=["table", "json"], default="table")
    cv.add_argument("--out", metavar="PATH",
                    help="write the report to a file instead of stdout")
    cv.set_defaults(func=_cmd_coverage)

    sz = sub.add_parser(
        "sanitize",
        help="run one simulation under the coherence sanitizer "
        "(races, stale values, relocation ping-pong)",
    )
    _traced(sz)
    sz.add_argument("--window", type=int, default=32, metavar="N",
                    help="trailing events attached to each finding")
    sz.add_argument("--pingpong", type=int, default=24, metavar="N",
                    help="chained relocations before L003 fires")
    sz.add_argument("--allow", nargs="*", metavar="RULE",
                    help="rule IDs to suppress (e.g. R002 L003)")
    sz.add_argument("--report", metavar="PATH",
                    help="write findings + provenance as JSON")
    sz.set_defaults(func=_cmd_sanitize)

    mt = sub.add_parser(
        "metrics",
        help="run one simulation with the metrics registry attached and "
        "export it (OpenMetrics/JSON/table)",
    )
    _traced(mt)
    mt.add_argument("--format", choices=["openmetrics", "json", "table"],
                    default="table")
    mt.add_argument("--out", metavar="PATH",
                    help="write the export to a file instead of stdout")
    mt.set_defaults(func=_cmd_metrics)

    from repro.bench.suites import suite_names as _suite_names

    bn = sub.add_parser(
        "bench",
        help="time the simulator's hot paths and gate wall-time regressions",
    )
    bn.add_argument("--quick", action="store_true",
                    help="smaller work units (CI smoke)")
    bn.add_argument("--repeats", type=int, default=3, metavar="N",
                    help="repeats per suite; the minimum wall time is kept")
    bn.add_argument("--suites", nargs="*", metavar="NAME",
                    choices=_suite_names(),
                    help="restrict to these suites")
    bn.add_argument("--out", metavar="PATH",
                    help="explicit output path (overrides --out-dir)")
    bn.add_argument("--out-dir", metavar="DIR",
                    help="directory for BENCH_<timestamp>.json outputs "
                    "(default benchmarks/)")
    bn.add_argument("--compare", metavar="BENCH_OLD.json",
                    nargs="?", const=_ROLLING,
                    help="compare against this baseline and exit 1 on "
                    "regression; with no path, gate against the rolling "
                    "median of recently archived runs (falling back to "
                    f"{_BASELINE_FILE})")
    bn.add_argument("--new", metavar="BENCH_NEW.json",
                    help="with --compare: diff two existing files "
                    "without running")
    bn.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                    help="wall-time slowdown that counts as a regression "
                    "(default 10%%)")
    bn.add_argument("--baseline-runs", type=int, default=5, metavar="N",
                    help="archived runs in the bare --compare rolling "
                    "median (default 5)")
    bn.add_argument("--record", action=argparse.BooleanOptionalAction,
                    default=None,
                    help="archive the bench payload in the history store "
                    "(default: record unless REPRO_NO_HISTORY is set)")
    bn.add_argument("--archive", metavar="PATH",
                    help="history archive file (default "
                    "$REPRO_HISTORY_DIR/history.sqlite)")
    _jobs_flag(bn)
    bn.set_defaults(func=_cmd_bench)

    hi = sub.add_parser(
        "history",
        help="query the persistent run/bench archive "
        "(list, show, trend, gc)",
    )
    hi.add_argument("action", choices=["list", "show", "trend", "gc"])
    hi.add_argument("key", nargs="?",
                    help="run key (or unique prefix) for 'show'; "
                    "key prefix filter for 'list'")
    hi.add_argument("--archive", metavar="PATH",
                    help="history archive file (default "
                    "$REPRO_HISTORY_DIR/history.sqlite)")
    hi.add_argument("--workload", metavar="WL",
                    help="list: only runs of this workload")
    hi.add_argument("--batch", metavar="NAME",
                    help="list: only runs recorded under this batch tag")
    hi.add_argument("--limit", type=int, default=50, metavar="N",
                    help="list: at most N rows (default 50)")
    hi.add_argument("--rev", type=int, metavar="R",
                    help="show: this revision instead of the newest")
    hi.add_argument("--last", type=int, default=10, metavar="N",
                    help="trend: window of archived bench runs "
                    "(default 10)")
    hi.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                    help="trend: regression threshold vs the rolling "
                    "median (default 10%%)")
    hi.add_argument("--quick", action="store_true",
                    help="trend: only quick-mode bench rows")
    hi.add_argument("--keep-revisions", type=int, default=1, metavar="N",
                    help="gc: newest revisions kept per key (default 1)")
    hi.add_argument("--keep-benches", type=int, metavar="N",
                    help="gc: newest bench rows kept (default: keep all)")
    hi.add_argument("--dry-run", action="store_true",
                    help="gc: report what would be deleted, delete "
                    "nothing")
    hi.add_argument("--format", choices=["table", "json"], default="table")
    hi.add_argument("--out", metavar="PATH",
                    help="write JSON output to a file instead of stdout")
    hi.set_defaults(func=_cmd_history)

    dd = sub.add_parser(
        "diff",
        help="differential attribution between two archived runs: "
        "counter ratios, phase deltas naming the responsible phase, "
        "histogram shifts",
    )
    dd.add_argument("keys", nargs="*", metavar="KEY",
                    help="two run keys (or unique prefixes) to diff")
    dd.add_argument("--sweep", nargs=2, metavar=("BATCH_A", "BATCH_B"),
                    help="diff two recorded batches point-by-point "
                    "instead of two keys")
    dd.add_argument("--noise", type=float, default=1.0, metavar="PCT",
                    help="counter changes at or below this are flagged "
                    "as noise (default 1%%)")
    dd.add_argument("--archive", metavar="PATH",
                    help="history archive file (default "
                    "$REPRO_HISTORY_DIR/history.sqlite)")
    dd.add_argument("--format", choices=["table", "json"], default="table")
    dd.add_argument("--out", metavar="PATH",
                    help="write the report to a file instead of stdout")
    dd.set_defaults(func=_cmd_diff)

    ex = sub.add_parser(
        "explain", help="narrate one cache line's protocol history"
    )
    _traced(ex)
    ex.add_argument("--line", metavar="LINE",
                    help="line number to narrate (0x-prefixed hex or decimal);"
                    " omitted: list the busiest lines")
    ex.add_argument("--top", type=int, default=10,
                    help="how many busy lines to list without --line")
    ex.add_argument("--slowest", type=int, default=0, metavar="N",
                    help="narrate the N slowest accesses as full span trees")
    ex.set_defaults(func=_cmd_explain)

    sv = sub.add_parser(
        "serve",
        help="HTTP simulation service: RunSpec/sweep requests with "
        "single-flight dedup, bounded queues and SSE progress",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8787,
                    help="listen port (0 picks an ephemeral port)")
    sv.add_argument("--workers", type=int, default=4,
                    help="executor threads running request bodies")
    sv.add_argument("--sweep-jobs", type=int, default=1, metavar="N",
                    help="process-pool jobs available to each sweep")
    sv.add_argument("--max-inflight", type=int, default=8, metavar="N",
                    help="bounded per-tenant queue; above it requests "
                    "get 429 + Retry-After")
    sv.add_argument("--rate", type=float, default=50.0, metavar="R",
                    help="token-bucket refill, requests/second per tenant")
    sv.add_argument("--burst", type=float, default=100.0, metavar="B",
                    help="token-bucket capacity per tenant")
    sv.add_argument("--max-sweep-points", type=int, default=256, metavar="N",
                    help="largest accepted sweep request")
    sv.add_argument("--drain-timeout", type=float, default=10.0, metavar="S",
                    help="seconds to wait for in-flight work on shutdown")
    sv.add_argument("--record", action="store_true",
                    help="archive completed simulations in the history "
                    "store (served at GET /history and GET /diff)")
    sv.add_argument("--archive", metavar="PATH",
                    help="history archive file (default "
                    "$REPRO_HISTORY_DIR/history.sqlite)")
    sv.set_defaults(func=_cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="measure serve latency: cold, warm-cache and coalesced "
        "request mixes against a running server",
    )
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=int, default=8787)
    lt.add_argument("--requests", type=int, default=20, metavar="N",
                    help="requests per scenario")
    lt.add_argument("--concurrency", type=int, default=8, metavar="N",
                    help="concurrent connections for the cold/warm mixes")
    lt.add_argument("--seed0", type=int, default=990_000, metavar="SEED",
                    help="first seed; each scenario uses fresh seeds "
                    "counting up from here")
    lt.add_argument("--out", metavar="PATH",
                    help="also write the full JSON report here")
    lt.set_defaults(func=_cmd_loadtest)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
