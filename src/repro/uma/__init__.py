"""UMA baseline machine (bus-based symmetric multiprocessor)."""

from repro.uma.machine import UmaMachine

__all__ = ["UmaMachine"]
