"""A bus-based UMA (symmetric shared-memory) baseline.

The third point of the paper's architecture taxonomy (section 2 discusses
replacement behaviour "in a UMA or NUMA machine").  All main memory sits
behind the shared bus in interleaved central banks: an SLC miss always
crosses the bus, paying the remote latency, regardless of which processor
touched the page first.  Coherence is snooping MSI over the SLCs (the
directory object is simulator bookkeeping for O(sharers) invalidation, as
in the other machines).

Exposes the same ``read``/``write``/``rmw`` interface as ``ComaMachine``
and ``NumaMachine`` so :class:`repro.sim.Simulation` drives all three.
"""

from __future__ import annotations

from repro.bus.sharedbus import SharedBus
from repro.bus.transaction import TxKind
from repro.caches.l1 import L1Cache
from repro.caches.slc import SecondLevelCache
from repro.common.config import MachineConfig
from repro.mem.address import AddressSpace
from repro.numa.directory import Directory
from repro.stats.counters import Counters
from repro.timing.resource import Resource

LEVEL_L1 = "l1"
LEVEL_SLC = "slc"
LEVEL_REMOTE = "remote"

#: Central memory is interleaved over this many banks.
N_BANKS = 4


class UmaMachine:
    """Symmetric bus-based multiprocessor with central memory banks."""

    def __init__(self, config: MachineConfig, space: AddressSpace) -> None:
        config._require_sized()
        self.config = config
        self.timing = config.timing
        self.space = space
        self.counters = Counters()
        self.bus = SharedBus(config.timing, config.line_size)
        self.directory = Directory()
        n = config.n_processors
        slc_geom = config.slc_geometry
        l1_geom = config.l1_geometry
        self.slcs = [SecondLevelCache(slc_geom) for _ in range(n)]
        self.l1s = [L1Cache(l1_geom) for _ in range(n)]
        self.slc_res = [Resource(f"slc{p}") for p in range(n)]
        self.banks = [Resource(f"bank{b}") for b in range(N_BANKS)]
        self._shift = config.line_shift
        self.now = 0
        self._bg = False  # posted-write background port selector

    # ------------------------------------------------------------------
    def _ensure_page(self, addr: int, node_id: int) -> None:
        if self.space.page_of(addr) not in self.space.page_home:
            self.space.ensure_page(addr, node_id)
            self.counters.pages_allocated += 1

    def _memory_access(self, line: int, now: int) -> int:
        """Bus request, central bank access, bus reply."""
        tm = self.timing
        t = self.bus.phase(now, self._bg)
        bank = self.banks[line % N_BANKS]
        s = bank.acquire(t, tm.dram_busy_ns, self._bg)
        t = self.bus.phase(s + tm.dram_latency_ns, self._bg)
        return t + tm.nc_ns + tm.remote_overhead_ns

    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        c.reads += 1
        line = addr >> self._shift
        self._ensure_page(addr, self.config.node_of_proc(proc))
        if self.l1s[proc].lookup(line):
            c.l1_read_hits += 1
            return now + self.timing.l1_hit_ns, LEVEL_L1
        start = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
        if self.slcs[proc].lookup(line) is not None:
            c.slc_read_hits += 1
            self.l1s[proc].fill(line)
            return start + self.timing.slc_hit_ns, LEVEL_SLC
        e = self.directory.entry(line)
        if e.owner is not None and e.owner != proc:
            e.owner = None  # dirty copy flushed by the snoop
        c.node_read_misses += 1
        self.bus.record(TxKind.READ_DATA)
        done = self._memory_access(line, now)
        e.sharers.add(proc)
        self._fill(proc, line)
        return done, LEVEL_REMOTE

    def write(self, proc: int, addr: int, now: int) -> int:
        self.counters.writes += 1
        self._bg = True
        try:
            done, _ = self._write_access(proc, addr, now)
        finally:
            self._bg = False
        return done

    def rmw(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.counters.atomics += 1
        return self._write_access(proc, addr, now)

    def write_stalling(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """A write the processor waits for (sequential-consistency mode)."""
        self.counters.writes += 1
        return self._write_access(proc, addr, now)

    def _write_access(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        line = addr >> self._shift
        self._ensure_page(addr, self.config.node_of_proc(proc))
        self.l1s[proc].write_hit(line)
        e = self.directory.entry(line)
        slc_hit = line in self.slcs[proc]
        if e.owner == proc and slc_hit:
            s = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
            self.slcs[proc].mark_dirty(line)
            return s + self.timing.slc_hit_ns, LEVEL_SLC
        others = [p for p in e.sharers if p != proc]
        if others or (e.owner is not None and e.owner != proc):
            self.bus.record(TxKind.UPGRADE)
            now = self.bus.phase(now, self._bg)
            for p in others:
                self.slcs[p].invalidate(line)
                self.l1s[p].invalidate(line)
                c.invalidations_sent += 1
        e.sharers = {proc}
        e.owner = proc
        if slc_hit:
            s = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
            self.slcs[proc].mark_dirty(line)
            return s + self.timing.slc_hit_ns, LEVEL_SLC
        c.node_write_misses += 1
        self.bus.record(TxKind.READ_EXCL)
        done = self._memory_access(line, now)
        self._fill(proc, line)
        self.slcs[proc].mark_dirty(line)
        return done, LEVEL_REMOTE

    # ------------------------------------------------------------------
    def _fill(self, proc: int, line: int) -> None:
        victim = self.slcs[proc].fill(line)
        if victim >= 0:
            vline = victim >> 1
            self.l1s[proc].invalidate(vline)
            ve = self.directory.maybe(vline)
            if ve is not None:
                ve.sharers.discard(proc)
                if ve.owner == proc:
                    ve.owner = None
                    # Dirty write-back crosses the bus to central memory.
                    self.bus.record(TxKind.REPLACE_DATA)
                    t = self.bus.phase(self.now, self._bg)
                    self.banks[vline % N_BANKS].acquire(
                        t, self.timing.dram_busy_ns
                    , self._bg)
                    self.counters.replacements += 1
                    self.counters.slc_writebacks += 1
        self.l1s[proc].fill(line)

    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        cached: dict[int, set[int]] = {}
        for p, slc in enumerate(self.slcs):
            for entry in slc.array.valid_entries():
                cached.setdefault(entry.line, set()).add(p)
        for line, e in self.directory.items():
            assert e.sharers.issuperset(cached.get(line, set()))
        for p in range(self.config.n_processors):
            for le in self.l1s[p].array.valid_entries():
                assert le.line in self.slcs[p]
