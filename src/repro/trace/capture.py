"""Capture a workload's event streams into flat arrays."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Workload

#: opcode character -> small int for array storage.
OP_CODES = {"r": 0, "w": 1, "c": 2, "l": 3, "u": 4, "b": 5}
OP_CHARS = {v: k for k, v in OP_CODES.items()}


@dataclass
class CapturedTrace:
    """One thread-ordered trace: per-thread opcode and argument arrays."""

    n_threads: int
    ops: list[np.ndarray]   # per thread, uint8
    args: list[np.ndarray]  # per thread, int64
    meta: dict

    @property
    def total_events(self) -> int:
        return sum(len(o) for o in self.ops)


def capture_trace(workload: Workload, space) -> CapturedTrace:
    """Exhaust every thread generator of an *allocated* workload.

    Note that this runs the threads **sequentially to completion**, so
    workloads whose control flow depends on cross-thread timing (task
    queues, locks) record the interleaving a sequential execution would
    produce.  Barrier-synchronized phase workloads capture faithfully.
    """
    ops: list[np.ndarray] = []
    args: list[np.ndarray] = []
    for tid in range(workload.n_threads):
        o: list[int] = []
        a: list[int] = []
        for ev in workload.thread(tid):
            o.append(OP_CODES[ev[0]])
            a.append(int(ev[1]))
        ops.append(np.asarray(o, dtype=np.uint8))
        args.append(np.asarray(a, dtype=np.int64))
    return CapturedTrace(
        n_threads=workload.n_threads,
        ops=ops,
        args=args,
        meta={
            "workload": workload.name,
            "scale": workload.scale,
            "seed": workload.seed,
            "allocated_bytes": space.allocated_bytes,
            "n_locks": workload.n_locks,
            "n_barriers": workload.n_barriers,
        },
    )
