"""Trace capture, storage, replay and synthesis.

The paper uses program-driven simulation; this package adds the classic
trace-driven alternative: capture the event stream of any workload to a
compact ``.npz`` file, replay it later against any machine configuration,
or synthesize parametric reference streams for microbenchmarks and tests.

Caveat (the usual trace-driven one): a replayed trace fixes the
interleaving decisions that were made under the capture configuration, so
timing-dependent effects (lock hand-off order, task-queue assignment)
do not re-adapt to the replay machine.
"""

from repro.trace.capture import capture_trace, CapturedTrace
from repro.trace.store import save_trace, load_trace
from repro.trace.replay import replay_programs
from repro.trace.synth import (
    SyntheticUniform,
    SyntheticHotspot,
    SyntheticPrivate,
    SyntheticMigratory,
    SyntheticProducerConsumer,
)

__all__ = [
    "capture_trace",
    "CapturedTrace",
    "save_trace",
    "load_trace",
    "replay_programs",
    "SyntheticUniform",
    "SyntheticHotspot",
    "SyntheticPrivate",
    "SyntheticMigratory",
    "SyntheticProducerConsumer",
]
