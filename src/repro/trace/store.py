"""Trace persistence: compressed ``.npz`` with a JSON metadata entry."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.trace.capture import CapturedTrace


def save_trace(trace: CapturedTrace, path: str | Path) -> None:
    arrays: dict[str, np.ndarray] = {}
    for t in range(trace.n_threads):
        arrays[f"ops_{t}"] = trace.ops[t]
        arrays[f"args_{t}"] = trace.args[t]
    arrays["meta"] = np.frombuffer(
        json.dumps({"n_threads": trace.n_threads, **trace.meta}).encode(),
        dtype=np.uint8,
    )
    np.savez_compressed(path, **arrays)


def load_trace(path: str | Path) -> CapturedTrace:
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        n = int(meta.pop("n_threads"))
        ops = [data[f"ops_{t}"] for t in range(n)]
        args = [data[f"args_{t}"] for t in range(n)]
    return CapturedTrace(n_threads=n, ops=ops, args=args, meta=meta)
