"""Trace-driven frontend: replay a captured trace through a machine."""

from __future__ import annotations

from typing import Iterator

from repro.trace.capture import OP_CHARS, CapturedTrace


def _thread_program(trace: CapturedTrace, tid: int) -> Iterator[tuple]:
    ops = trace.ops[tid]
    args = trace.args[tid]
    for k in range(len(ops)):
        yield (OP_CHARS[int(ops[k])], int(args[k]))


def replay_programs(trace: CapturedTrace) -> list[Iterator[tuple]]:
    """Per-thread generators suitable for :class:`repro.sim.Simulation`.

    The caller must build the machine over an address space with the same
    allocation layout the trace was captured against (same workload name,
    scale and seed — see ``trace.meta``).
    """
    return [_thread_program(trace, t) for t in range(trace.n_threads)]
