"""Synthetic reference-stream workloads.

Parametric generators exercising one sharing pattern each — useful for
unit tests (known expected behaviour) and microbenchmarks (isolating one
machine mechanism).  They register under ``synth_*`` names but are not
part of :func:`repro.workloads.registry.paper_workloads`.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.address import AddressSpace
from repro.workloads.base import (
    SHARING_PRIVATE,
    SHARING_SHARED,
    SharedArray,
    Workload,
)
from repro.workloads.registry import register


class _SynthBase(Workload):
    n_locks = 0
    n_barriers = 1
    #: accesses per thread
    ops = 4000
    array_kb = 128
    #: sharing pattern declared for the data segment (sanitizer R003)
    sharing = SHARING_SHARED

    def __init__(self, n_threads: int = 16, scale: float = 1.0, seed: int = 1997):
        super().__init__(n_threads, scale, seed)
        self.n_elems = int(self.array_kb * 1024 * scale) // 8

    def allocate(self, space: AddressSpace) -> None:
        self.arr = SharedArray(space, f"{self.name}.data", self.n_elems, itemsize=8)

    def declared_sharing(self) -> dict[str, str]:
        return {f"{self.name}.data": self.sharing}

    def _first_touch(self, tid: int):
        for i in self.chunk(self.n_elems, tid)[::8]:
            yield ("w", self.arr.addr(i))
        yield ("b", 0)


@register
class SyntheticUniform(_SynthBase):
    """Uniformly random reads over the whole array: worst-case locality."""

    name = "synth_uniform"
    description = "uniform random shared reads"

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        rng = self.rng("stream", tid)
        idx = rng.integers(0, self.n_elems, size=int(self.ops * self.scale))
        for i in idx:
            yield ("r", self.arr.addr(int(i)))
            yield ("c", 8)
        yield ("b", 0)


@register
class SyntheticHotspot(_SynthBase):
    """Zipf-distributed reads: a hot read-shared subset replicated by
    every node (replication pressure in miniature)."""

    name = "synth_hotspot"
    description = "zipf hotspot shared reads"

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        rng = self.rng("stream", tid)
        raw = rng.zipf(1.3, size=int(self.ops * self.scale))
        for z in raw:
            i = int(z - 1) % self.n_elems
            yield ("r", self.arr.addr(i))
            yield ("c", 8)
        yield ("b", 0)


@register
class SyntheticPrivate(_SynthBase):
    """Pure private streaming: each thread sweeps its own partition.
    After the cold pass everything is node-local — the COMA best case."""

    name = "synth_private"
    description = "private sequential streaming"
    sharing = SHARING_PRIVATE

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        mine = self.chunk(self.n_elems, tid)
        passes = max(1, int(self.ops * self.scale) // max(1, len(mine)))
        for _ in range(passes):
            for i in mine:
                yield ("r", self.arr.addr(i))
                yield ("w", self.arr.addr(i))
            yield ("c", 4 * len(mine))
        yield ("b", 0)


@register
class SyntheticMigratory(_SynthBase):
    """Migratory data: thread t reads-modifies-writes the region last
    written by thread t-1 each round — data migrates node to node."""

    name = "synth_migratory"
    description = "migratory read-modify-write regions"
    rounds = 4

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        region = max(8, self.n_elems // (4 * self.n_threads))
        for rnd in range(self.rounds):
            src = (tid - rnd) % self.n_threads
            base = self.chunk(self.n_elems, src).start
            for i in range(base, min(base + region, self.n_elems)):
                yield ("r", self.arr.addr(i))
                yield ("w", self.arr.addr(i))
            yield ("c", 6 * region)
            yield ("b", 0)


@register
class SyntheticProducerConsumer(_SynthBase):
    """Producer/consumer pairs: even threads write a buffer their odd
    neighbour then reads.  Sequential thread placement co-locates pairs in
    a cluster — the sharing pattern the paper's clustering exploits.

    Each round is two barrier-separated phases (produce, then consume) so
    the handoff is properly synchronized — the consumer never reads the
    buffer while its producer is still writing it."""

    name = "synth_producer_consumer"
    description = "neighbour producer/consumer handoff"
    rounds = 4

    def thread(self, tid: int) -> Iterator[tuple]:
        yield from self._first_touch(tid)
        pair = tid ^ 1  # 0<->1, 2<->3, ...
        region = max(8, self.n_elems // (4 * self.n_threads))
        base = self.chunk(self.n_elems, min(tid, pair)).start
        for rnd in range(self.rounds):
            producer = (tid % 2 == 0) == (rnd % 2 == 0)
            if producer:
                for i in range(base, min(base + region, self.n_elems)):
                    yield ("w", self.arr.addr(i))
                yield ("c", 3 * region)
            yield ("b", 0)
            if not producer:
                for i in range(base, min(base + region, self.n_elems)):
                    yield ("r", self.arr.addr(i))
                yield ("c", 3 * region)
            yield ("b", 0)
