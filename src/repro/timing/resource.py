"""Contended hardware resources with next-free-time semantics.

The memory-system simulator "models contention effects for the node
controllers, attraction memory DRAMs, second-level caches and the shared
bus" (paper section 3.2).  Each such unit is a :class:`Resource`: a request
arriving at time ``t`` begins service at ``max(t, next_free)`` and occupies
the unit for its occupancy time.  Because the simulation kernel advances
processors in global time order, requests reach each resource in
non-decreasing time order and this models a FIFO queue exactly.
"""

from __future__ import annotations


class Resource:
    """One contended unit (an SLC, a node controller, a DRAM bank, a bus).

    Each resource has two service timelines: the **foreground** port used
    by demand accesses (reads, synchronizing writes), and a **background**
    port used by posted writes draining from the write buffers.  Demand
    accesses never queue behind posted writes — the read-bypass that every
    real memory system implements — while posted writes still serialize
    among themselves and their completion times reflect back-pressure
    (write-buffer-full stalls, release drains).
    """

    __slots__ = ("name", "next_free", "bg_next_free", "busy_ns", "uses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.next_free = 0
        self.bg_next_free = 0
        self.busy_ns = 0
        self.uses = 0

    def acquire(self, now: int, occupancy_ns: int, bg: bool = False) -> int:
        """Occupy the resource for ``occupancy_ns`` starting no earlier
        than ``now``; returns the service *start* time (>= now).

        ``bg`` selects the background (posted-write) port.
        """
        if bg:
            start = self.bg_next_free if self.bg_next_free > now else now
            self.bg_next_free = start + occupancy_ns
        else:
            start = self.next_free if self.next_free > now else now
            self.next_free = start + occupancy_ns
        self.busy_ns += occupancy_ns
        self.uses += 1
        return start

    def wait_time(self, now: int) -> int:
        """Queueing delay a request arriving at ``now`` would see."""
        return self.next_free - now if self.next_free > now else 0

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the resource was busy."""
        return self.busy_ns / elapsed_ns if elapsed_ns > 0 else 0.0

    def reset(self) -> None:
        self.next_free = 0
        self.bg_next_free = 0
        self.busy_ns = 0
        self.uses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, next_free={self.next_free}, uses={self.uses})"
