"""Per-processor execution-time accounting.

Figure 5 of the paper divides execution time into four sections:

* **Busy** — executing instructions or memory accesses hitting in the L1;
* **SLC stall** — waiting for accesses that hit in the second-level cache;
* **AM stall** — waiting for accesses that hit in the attraction memory;
* **Remote stall** — waiting for accesses that miss in the node.

We additionally track **sync** (blocked on locks/barriers; the paper's
spin loops execute instructions and therefore land in Busy — our report
folds sync into Busy when reproducing Figure 5, see ``stats.metrics``)
and **write** (stalled on a full write buffer or draining it at a
release, which release consistency keeps small).
"""

from __future__ import annotations

from dataclasses import dataclass, field

STALL_CATEGORIES = ("busy", "slc", "am", "remote", "sync", "write")


@dataclass
class StallAccounting:
    """Nanoseconds of processor time per category."""

    busy: int = 0
    slc: int = 0
    am: int = 0
    remote: int = 0
    sync: int = 0
    write: int = 0

    def add(self, category: str, ns: int) -> None:
        setattr(self, category, getattr(self, category) + ns)

    @property
    def total(self) -> int:
        return self.busy + self.slc + self.am + self.remote + self.sync + self.write

    def as_dict(self) -> dict[str, int]:
        return {c: getattr(self, c) for c in STALL_CATEGORIES}

    def merged(self, other: "StallAccounting") -> "StallAccounting":
        out = StallAccounting()
        for c in STALL_CATEGORIES:
            setattr(out, c, getattr(self, c) + getattr(other, c))
        return out


@dataclass
class TimeBreakdown:
    """Machine-level summary: per-category times averaged over processors."""

    per_category: dict[str, float] = field(default_factory=dict)
    elapsed_ns: int = 0

    @classmethod
    def from_processors(
        cls, accounts: list[StallAccounting], elapsed_ns: int
    ) -> "TimeBreakdown":
        n = max(1, len(accounts))
        per = {
            c: sum(getattr(a, c) for a in accounts) / n for c in STALL_CATEGORIES
        }
        return cls(per_category=per, elapsed_ns=elapsed_ns)
