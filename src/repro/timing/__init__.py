"""Timing: next-free-time contended resources and stall accounting."""

from repro.timing.resource import Resource
from repro.timing.accounting import StallAccounting, STALL_CATEGORIES

__all__ = ["Resource", "StallAccounting", "STALL_CATEGORIES"]
