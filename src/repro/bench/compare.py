"""Compare two BENCH files and gate on wall-time regressions.

``compare_benches(old, new, threshold_pct)`` classifies every suite:

* ``regression``  — new wall time is more than ``threshold_pct`` slower;
* ``improvement`` — more than ``threshold_pct`` faster;
* ``ok``          — within the threshold either way;
* ``missing``     — present in the old file but not the new run;
* ``new``         — present only in the new run (never gates).

A missing suite gates alongside regressions: a suite silently dropping
out of the bench must fail CI, not slip through as "nothing got slower".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.bench.harness import BENCH_SCHEMA


class BenchFileError(Exception):
    """A BENCH file is unreadable, malformed, or the wrong schema."""


def load_bench(path) -> dict:
    """Load a BENCH payload — or the ``baseline`` a ``coma-sim history
    trend --format json`` report embeds, so the CI gate can compare
    directly against the rolling median of archived runs."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise BenchFileError(f"cannot read {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise BenchFileError(f"{path} is not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and "schema" not in payload \
            and isinstance(payload.get("baseline"), dict) \
            and "suites" in payload["baseline"]:
        payload = payload["baseline"]  # a history-trend report
    if not isinstance(payload, dict) or "suites" not in payload:
        raise BenchFileError(f"{path} is not a BENCH file (no 'suites' key)")
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise BenchFileError(
            f"{path} has schema {schema!r}; this tool reads {BENCH_SCHEMA}"
        )
    for name, entry in payload["suites"].items():
        if not isinstance(entry, dict) or "wall_s" not in entry:
            raise BenchFileError(f"{path}: suite {name!r} has no wall_s")
    return payload


def rolling_baseline(archive, last: int = 5,
                     quick: Optional[bool] = None) -> Optional[dict]:
    """A synthetic BENCH payload whose per-suite ``wall_s`` is the
    rolling median over the last ``last`` archived bench runs.

    This is what ``coma-sim bench --compare`` (bare, no path) gates
    against: a median of recent archived runs is far less noisy than any
    single frozen baseline file.  Returns None when the archive holds no
    (matching) bench rows — callers fall back to the committed
    ``benchmarks/BENCH_baseline.json``.
    """
    trend = archive.trend(last=last, quick=quick)
    if not trend["benches"]:
        return None
    return trend["baseline"]


def compare_benches(old: dict, new: dict,
                    threshold_pct: float = 10.0) -> list[dict]:
    """Per-suite comparison rows, sorted by suite name.

    ``change_pct`` is the wall-time change relative to old (positive =
    slower).  A suite regresses when ``change_pct > threshold_pct``
    strictly — a change of exactly the threshold still passes.
    """
    rows: list[dict] = []
    old_suites, new_suites = old["suites"], new["suites"]
    for name in sorted(set(old_suites) | set(new_suites)):
        o, n = old_suites.get(name), new_suites.get(name)
        if o is None:
            rows.append({"suite": name, "status": "new",
                         "new_wall_s": n["wall_s"]})
            continue
        if n is None:
            rows.append({"suite": name, "status": "missing",
                         "old_wall_s": o["wall_s"]})
            continue
        ow, nw = float(o["wall_s"]), float(n["wall_s"])
        change = (nw - ow) / ow * 100.0 if ow > 0 else 0.0
        # Classify on the wall-time ratio, not the derived percentage:
        # (1.1-1.0)/1.0*100 rounds to 10.000000000000009, which would
        # turn "exactly the threshold" into a spurious regression.
        if ow > 0 and nw > ow * (1.0 + threshold_pct / 100.0):
            status = "regression"
        elif ow > 0 and nw < ow * (1.0 - threshold_pct / 100.0):
            status = "improvement"
        else:
            status = "ok"
        rows.append({
            "suite": name, "status": status,
            "old_wall_s": ow, "new_wall_s": nw, "change_pct": change,
        })
    return rows


def has_regression(rows: list[dict]) -> bool:
    """True when any suite regressed or went missing (both gate)."""
    return any(r["status"] in ("regression", "missing") for r in rows)


def format_comparison(rows: list[dict], threshold_pct: float) -> str:
    lines = [
        f"bench comparison (threshold {threshold_pct:g}% on wall time):",
        f"  {'suite':<26} {'old':>9} {'new':>9} {'change':>8}  status",
    ]
    for r in rows:
        old_s = f"{r['old_wall_s']:.3f}s" if "old_wall_s" in r else "-"
        new_s = f"{r['new_wall_s']:.3f}s" if "new_wall_s" in r else "-"
        change = f"{r['change_pct']:+.1f}%" if "change_pct" in r else "-"
        lines.append(
            f"  {r['suite']:<26} {old_s:>9} {new_s:>9} {change:>8}  "
            f"{r['status']}"
        )
    gated = [r["suite"] for r in rows if r["status"] in ("regression", "missing")]
    lines.append(
        f"  => {'FAIL: ' + ', '.join(gated) if gated else 'PASS'}"
    )
    return "\n".join(lines)
