"""Run benchmark suites and write ``BENCH_<timestamp>.json`` files.

Schema (``BENCH_SCHEMA = 1``)::

    {
      "schema": 1,
      "timestamp": "2026-01-01T00:00:00+00:00",
      "git_rev": "abc123" | null,
      "repro_version": "x.y",
      "cache_version": 8,
      "quick": false,
      "host": {"platform": ..., "python": ..., "cpus": ...},
      "suites": {
        "<name>": {
          "wall_s": <min over repeats>,
          "walls_s": [...],
          "repeats": 3,
          "work": 200000,
          "unit": "reads",
          "throughput": <work / wall_s>,
          "spec_key": "..."        # suites driven by a RunSpec
        }, ...
      },
      "metrics": {...}             # snapshot from the instrumented suite
    }

The per-suite wall time is the *minimum* over repeats — the standard
noise filter for wall-clock gates (the minimum is the run least
disturbed by the machine's other tenants).
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.suites import SUITES, Suite, suite_names

BENCH_SCHEMA = 1


def _provenance() -> dict:
    from repro import __version__
    from repro.experiments.runner import CACHE_VERSION
    from repro.obs.manifest import git_revision

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_revision(),
        "repro_version": __version__,
        "cache_version": CACHE_VERSION,
    }


def _host() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def run_suite(suite: Suite, quick: bool = False, jobs: int = 1,
              repeats: int = 3) -> dict:
    """Time one suite ``repeats`` times; report the minimum wall time."""
    walls: list[float] = []
    info: dict = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        info = suite.run(quick, jobs)
        walls.append(time.perf_counter() - t0)
    wall = min(walls)
    entry = {
        "description": suite.description,
        "wall_s": wall,
        "walls_s": walls,
        "repeats": len(walls),
        "work": info["work"],
        "unit": info["unit"],
        "throughput": info["work"] / wall if wall > 0 else 0.0,
    }
    if "spec_key" in info:
        entry["spec_key"] = info["spec_key"]
    if "snapshot" in info:
        entry["_snapshot"] = info["snapshot"]
    return entry


def run_bench(
    quick: bool = False,
    jobs: int = 1,
    repeats: int = 3,
    only: Optional[Sequence[str]] = None,
    echo=None,
) -> dict:
    """Run the suites and assemble a schema-versioned BENCH payload.

    ``only`` restricts to the named suites; ``echo`` (a callable taking
    one string) receives a progress line per suite as it completes.
    """
    wanted = set(only) if only else None
    if wanted is not None:
        unknown = wanted - set(suite_names())
        if unknown:
            raise ValueError(
                f"unknown suite(s) {sorted(unknown)}; "
                f"available: {suite_names()}"
            )
    payload: dict = {
        "schema": BENCH_SCHEMA,
        **_provenance(),
        "quick": quick,
        "host": _host(),
        "suites": {},
    }
    for suite in SUITES:
        if wanted is not None and suite.name not in wanted:
            continue
        entry = run_suite(suite, quick=quick, jobs=jobs, repeats=repeats)
        snapshot = entry.pop("_snapshot", None)
        if snapshot is not None:
            payload["metrics"] = snapshot
        payload["suites"][suite.name] = entry
        if echo is not None:
            echo(
                f"  {suite.name:<26} {entry['wall_s']:8.3f}s  "
                f"{entry['throughput']:12.0f} {entry['unit']}/s"
            )
    return payload


#: Default directory for ``BENCH_<timestamp>.json`` outputs.  The old
#: behavior (the current working directory) littered repo roots with
#: stray BENCH files that only ``.gitignore`` kept out of commits.
DEFAULT_BENCH_DIR = "benchmarks"


def write_bench(payload: dict, out: Optional[Path] = None,
                out_dir: Optional[Path] = None) -> Path:
    """Write ``payload`` as ``BENCH_<timestamp>.json`` (UTC, second
    resolution) under ``out_dir`` (default ``benchmarks/``).

    An explicit ``out`` path wins over ``out_dir`` and is used verbatim.
    """
    if out is None:
        stamp = payload["timestamp"].replace(":", "").replace("-", "")
        stamp = stamp.split("+")[0]
        directory = Path(out_dir) if out_dir is not None \
            else Path(DEFAULT_BENCH_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        out = directory / f"BENCH_{stamp}.json"
    out = Path(out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
