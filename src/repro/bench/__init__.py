"""Benchmark harness and regression gate (``coma-sim bench``).

Times the simulator's hot paths as named suites, writes schema-versioned
``BENCH_<timestamp>.json`` files, and compares two such files to gate
wall-time regressions in CI.  This package lives *outside* the
deterministic core on purpose: it is wall-clock through and through.
"""

from repro.bench.compare import (
    BenchFileError,
    compare_benches,
    format_comparison,
    has_regression,
    load_bench,
)
from repro.bench.harness import BENCH_SCHEMA, run_bench, write_bench
from repro.bench.suites import SUITES, suite_names

__all__ = [
    "BENCH_SCHEMA",
    "BenchFileError",
    "SUITES",
    "compare_benches",
    "format_comparison",
    "has_regression",
    "load_bench",
    "run_bench",
    "suite_names",
    "write_bench",
]
