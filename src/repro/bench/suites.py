"""Named benchmark suites: deterministic units of simulator work.

Each suite is a callable that performs a fixed amount of work and
reports how much it did (so the harness can derive a throughput); the
harness owns all timing.  The suites mirror the pytest microbenchmarks
in ``benchmarks/bench_micro.py`` — per-operation machine paths, the full
event loop, and a small parallel sweep — but are runnable without
pytest so CI and developers get one ``coma-sim bench`` entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig, TimingConfig
from repro.experiments.parallel import run_specs
from repro.experiments.runner import RunSpec, build_simulation
from repro.mem.address import AddressSpace

LINE = 64


def small_machine(
    n_processors: int = 4,
    procs_per_node: int = 2,
    am_sets: int = 8,
    am_assoc: int = 4,
    slc_lines: int = 8,
    l1_lines: int = 4,
    page_size: int = 256,
    **config_kwargs,
) -> ComaMachine:
    """A small machine with exactly-controlled geometry (the benchmark
    twin of the test suite's ``make_machine`` helper)."""
    cfg = MachineConfig(
        n_processors=n_processors,
        procs_per_node=procs_per_node,
        line_size=LINE,
        page_size=page_size,
        am_assoc=am_assoc,
        memory_pressure=Fraction(1, 2),
        am_bytes_per_node=am_sets * am_assoc * LINE,
        slc_bytes=slc_lines * LINE,
        l1_bytes=l1_lines * LINE,
        timing=TimingConfig(),
        **config_kwargs,
    )
    space = AddressSpace(page_size=page_size)
    space.alloc(1 << 20, "bench")
    return ComaMachine(cfg, space)


@dataclass(frozen=True)
class Suite:
    """One named benchmark: ``run(quick, jobs)`` does the work and
    returns ``{"work": n, "unit": str}`` plus optional ``spec_key`` /
    ``snapshot`` extras."""

    name: str
    description: str
    run: Callable[[bool, int], dict]


def _l1_hit(quick: bool, jobs: int) -> dict:
    m = small_machine(am_sets=64)
    m.read(0, 0, 0)
    n = 50_000 if quick else 200_000
    t = 0
    for _ in range(n):
        t, _ = m.read(0, 0, t + 10)
    return {"work": n, "unit": "reads"}


def _am_hit(quick: bool, jobs: int) -> dict:
    m = small_machine(am_sets=64, slc_lines=2, l1_lines=1, slc_assoc=1)
    for ln in range(16):
        m.read(0, ln * LINE, ln * 1000)
    n = 20_000 if quick else 100_000
    t = 100_000
    # Cycle through more lines than the tiny SLC holds: AM hits.
    for k in range(n):
        t, _ = m.read(0, (k % 16) * LINE, t + 10)
    return {"work": n, "unit": "reads"}


def _remote_read(quick: bool, jobs: int) -> dict:
    m = small_machine(n_processors=4, procs_per_node=1, am_sets=64)
    n = 3_000 if quick else 12_000
    t = 0
    for k in range(n):
        line = k % 32
        m.write(0, line * LINE, t)               # node 0 takes ownership
        t, _ = m.read(3, line * LINE, t + 1000)  # node 3 remote-reads
        t += 1000
    return {"work": n, "unit": "round-trips"}


def _replacement_storm(quick: bool, jobs: int) -> dict:
    n = 1_000 if quick else 4_000
    m = small_machine(
        n_processors=4, procs_per_node=1, am_sets=2, am_assoc=1,
        slc_lines=2, l1_lines=1, page_size=64,
    )
    t = 0
    # Single-way sets at machine-wide conflict: every allocation runs
    # the accept-based replacement machinery.
    for k in range(n):
        m.write(k % 4, (k % 24) * LINE, t)
        t += 500
    return {"work": n, "unit": "writes"}


def _event_loop_spec(quick: bool) -> RunSpec:
    return RunSpec(workload="synth_private", scale=0.1 if quick else 0.25)


def _event_loop(quick: bool, jobs: int) -> dict:
    spec = _event_loop_spec(quick)
    sim = build_simulation(spec)
    sim.run()
    return {"work": sim.events_processed, "unit": "events",
            "spec_key": spec.key()}


def _event_loop_instrumented(quick: bool, jobs: int) -> dict:
    """The event-loop suite with a metrics registry attached — its wall
    time against ``event_loop``'s bounds the enabled-instrumentation
    overhead, and its snapshot rides into the BENCH file."""
    from repro.obs.metrics import MetricsRegistry

    spec = _event_loop_spec(quick)
    registry = MetricsRegistry()
    sim = build_simulation(spec)
    sim.attach(registry)
    sim.run()
    return {"work": sim.events_processed, "unit": "events",
            "spec_key": spec.key(), "snapshot": registry.snapshot()}


def _span_overhead(quick: bool, jobs: int) -> dict:
    """The event-loop suite with a span-emitting attribution sink
    attached — its wall time against ``event_loop``'s bounds the cost of
    building a span tree per memory access.  ``event_loop`` itself (no
    sink) is the zero-overhead-when-off reference: spans stay ``None``
    there, so a regression in *that* suite after a spans change means
    the off path grew."""
    from repro.obs.spans import StallAttribution

    spec = _event_loop_spec(quick)
    att = StallAttribution(top_spans=4)
    sim = build_simulation(spec)
    sim.attach(att)
    sim.run()
    return {"work": sim.events_processed, "unit": "events",
            "spec_key": spec.key()}


def _bounds_overhead(quick: bool, jobs: int) -> dict:
    """The event-loop suite with the static-bounds certifier attached —
    its wall time against ``span_overhead``'s bounds the extra cost of
    checking every span tree against its static envelope (the spans
    themselves are already paid for there).  The run must certify clean:
    a violation here means the timing model and the envelope diverged."""
    from repro.analysis.bounds import certify_bounds

    spec = _event_loop_spec(quick)
    sim = build_simulation(spec)
    cert = certify_bounds(sim, spec.machine)
    if not cert.ok():
        raise RuntimeError(f"bounds violations in bench run: {cert.counts()}")
    return {"work": sim.events_processed, "unit": "events",
            "spec_key": spec.key()}


def _sweep(quick: bool, jobs: int) -> dict:
    pressures = (0.5, 0.8125) if quick else (0.5, 0.75, 0.8125, 0.875)
    specs = [
        RunSpec(workload="synth_migratory", scale=0.1,
                memory_pressure=mp, procs_per_node=ppn)
        for mp in pressures
        for ppn in (1, 4)
    ]
    # use_cache=False: the gate must time simulation, not cache reads.
    run_specs(specs, jobs=jobs, use_cache=False, progress=False)
    return {"work": len(specs), "unit": "points"}


SUITES: tuple[Suite, ...] = (
    Suite("l1_hit", "L1 read-hit fast path", _l1_hit),
    Suite("am_hit", "attraction-memory hit path", _am_hit),
    Suite("remote_read", "ownership transfer + remote read round-trip",
          _remote_read),
    Suite("replacement_storm", "accept-based replacement under conflict",
          _replacement_storm),
    Suite("event_loop", "end-to-end event-loop throughput", _event_loop),
    Suite("event_loop_instrumented",
          "event loop with a metrics registry attached",
          _event_loop_instrumented),
    Suite("span_overhead",
          "event loop with per-access span trees + stall attribution",
          _span_overhead),
    Suite("bounds_overhead",
          "event loop with spans certified against static latency bounds",
          _bounds_overhead),
    Suite("sweep", "parallel sweep engine, uncached points", _sweep),
)


def suite_names() -> list[str]:
    return [s.name for s in SUITES]


def get_suite(name: str) -> Optional[Suite]:
    for s in SUITES:
        if s.name == name:
            return s
    return None
