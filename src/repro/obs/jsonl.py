"""Deterministic JSON-lines trace writer and reader.

One event per line, keys sorted, compact separators: the same RunSpec and
seed produce a byte-identical file (the test suite asserts this), so
traces can be diffed across code versions to localize behaviour changes.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Iterator, Union

from repro.obs.events import record_to_event
from repro.obs.sink import TraceSink


class JsonlTraceSink(TraceSink):
    """Stream events to a ``.jsonl`` file (or any text file object)."""

    def __init__(self, out: Union[str, Path, io.TextIOBase]) -> None:
        if isinstance(out, (str, Path)):
            self._file = open(out, "w")
            self._owns = True
        else:
            self._file = out
            self._owns = False
        self.count = 0

    def emit(self, ev) -> None:
        self._file.write(
            json.dumps(ev.to_record(), sort_keys=True,
                       separators=(",", ":")) + "\n"
        )
        self.count += 1

    def close(self) -> None:
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


def iter_records(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the raw dict records of a JSONL trace file."""
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path: Union[str, Path]) -> list:
    """Load a JSONL trace back into typed event objects."""
    return [record_to_event(d) for d in iter_records(path)]
