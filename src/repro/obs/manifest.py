"""Run manifests: provenance sidecars for cached simulation results.

Every fresh simulation the experiment runner performs writes a
``<key>.manifest.json`` next to the cached ``<key>.json`` result, so any
number in ``results/`` can be traced to the exact RunSpec, seed, cache
version, code version and git revision that produced it.

This module is part of the deterministic core: it never reads the wall
clock.  Timestamps and wall-time measurements are taken by the callers
(the experiment runner, the benchmark harness — both outside the DET-
restricted subsystems) and passed in.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

#: Sidecar filename suffix next to ``<key>.json`` cache entries.
MANIFEST_SUFFIX = ".manifest.json"


@dataclass
class RunManifest:
    """Everything needed to reproduce (and trust) one cached result."""

    key: str                  # RunSpec.key(): sha256 over spec + version
    spec: dict                # the RunSpec, field by field
    cache_version: int        # repro.experiments.runner.CACHE_VERSION
    repro_version: str        # repro.__version__
    seed: int
    git_rev: Optional[str] = None     # workspace revision at run time
    wall_time_s: Optional[float] = None  # host seconds the simulation took
    cache: str = "miss"       # how this result was produced/served
    timestamp: Optional[str] = None   # ISO-8601, passed in by the caller
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    def write(self, path: Union[str, Path]) -> None:
        """Publish the manifest atomically (write-to-temp + os.replace),
        so concurrent sweep workers never expose a torn sidecar."""
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(self.to_json() + "\n")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    @classmethod
    def from_dict(cls, d: dict) -> "RunManifest":
        return cls(**d)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))


def manifest_path(cache_dir: Union[str, Path], key: str) -> Path:
    return Path(cache_dir) / f"{key}{MANIFEST_SUFFIX}"


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """Current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def provenance_header(
    timestamp: Optional[str] = None,
    extra: Optional[dict] = None,
    comment: str = "# ",
) -> str:
    """Header lines identifying the code that wrote an artifact.

    ``timestamp`` must be supplied by the caller (this module never reads
    the wall clock).  Returns comment-prefixed lines ending in a newline,
    ready to prepend to any text file under ``results/``.
    """
    from repro import __version__
    from repro.experiments.runner import CACHE_VERSION

    fields = {
        "repro": __version__,
        "cache_version": CACHE_VERSION,
        "git_rev": git_revision() or "unknown",
    }
    if timestamp is not None:
        fields["timestamp"] = timestamp
    if extra:
        fields.update(extra)
    body = ", ".join(f"{k}={v}" for k, v in fields.items())
    return f"{comment}provenance: {body}\n"
