"""repro.obs — structured event tracing, flight recorder and provenance.

The simulator's end-of-run aggregates (:class:`repro.stats.counters.Counters`,
:class:`repro.sim.results.SimulationResult`) say *how much* happened; this
package records *what* happened, event by event, so every figure is
explainable:

* :mod:`repro.obs.events`      — the typed event taxonomy;
* :mod:`repro.obs.sink`        — the :class:`TraceSink` receiver interface
  (machines emit through it; a ``None`` sink costs one ``if`` per access);
* :mod:`repro.obs.flight`      — bounded ring-buffer flight recorder,
  dumped automatically when a simulation dies;
* :mod:`repro.obs.jsonl`       — deterministic JSON-lines writer/reader;
* :mod:`repro.obs.chrometrace` — Chrome trace-event exporter (open the
  file in Perfetto: one track per processor, node and bus);
* :mod:`repro.obs.biography`   — per-line history index behind
  ``coma-sim explain --line``;
* :mod:`repro.obs.manifest`    — run-manifest sidecars tying every cached
  result to the RunSpec, seed, code version and git revision it came from;
* :mod:`repro.obs.metrics`     — typed metrics registry (counters, gauges,
  log2-bucket histograms, labeled families) instrumented across the hot
  layers, zero-overhead when disabled;
* :mod:`repro.obs.openmetrics` — OpenMetrics/Prometheus text and JSON
  snapshot exporters for the registry (behind ``coma-sim metrics``),
  with exemplar support linking latency buckets to span trace ids;
* :mod:`repro.obs.spans`       — causal span trees per memory access and
  the :class:`StallAttribution` latency-attribution aggregator (behind
  ``coma-sim attribute``);
* :mod:`repro.obs.history`     — persistent sqlite-backed run/bench
  archive (``coma-sim history``), one row per completed RunSpec with
  counters, attribution totals and provenance;
* :mod:`repro.obs.diff`        — differential attribution between
  archived runs (``coma-sim diff``): counter ratios, phase-delta
  breakdowns naming the responsible phase, histogram shifts;
* :mod:`repro.obs.timeline`    — :class:`TimelineSampler` columnar
  metric series over simulated time (JSON / Perfetto counter tracks).

This package is part of the deterministic core (see the DET lint rules):
it never reads the wall clock — timestamps are simulated nanoseconds, and
provenance timestamps are passed in by the (unrestricted) callers.
"""

from repro.obs.biography import LineBiography
from repro.obs.chrometrace import ChromeTraceSink
from repro.obs.events import (
    BusTx,
    MemAccess,
    Replacement,
    SpanEvent,
    SyncOp,
    SyncStall,
    Transition,
    format_event,
)
from repro.obs.diff import diff_runs, diff_sweeps, format_diff
from repro.obs.flight import FlightRecorder
from repro.obs.history import HistoryArchive, default_history_path
from repro.obs.jsonl import JsonlTraceSink, read_trace
from repro.obs.manifest import RunManifest, git_revision, provenance_header
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.openmetrics import parse_openmetrics, to_openmetrics
from repro.obs.sink import CollectorSink, TeeSink, TraceSink
from repro.obs.spans import (
    SpanBuilder,
    StallAttribution,
    format_attribution,
    format_span_tree,
)
from repro.obs.timeline import CompositeProfiler, TimelineSampler

__all__ = [
    "BusTx",
    "ChromeTraceSink",
    "CollectorSink",
    "CompositeProfiler",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistoryArchive",
    "JsonlTraceSink",
    "LineBiography",
    "MemAccess",
    "MetricsRegistry",
    "Replacement",
    "RunManifest",
    "SpanBuilder",
    "SpanEvent",
    "StallAttribution",
    "SyncOp",
    "SyncStall",
    "TeeSink",
    "TimelineSampler",
    "TraceSink",
    "Transition",
    "default_history_path",
    "diff_runs",
    "diff_sweeps",
    "format_attribution",
    "format_diff",
    "format_event",
    "format_span_tree",
    "git_revision",
    "parse_openmetrics",
    "provenance_header",
    "read_trace",
    "to_openmetrics",
]
