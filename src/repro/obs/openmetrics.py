"""OpenMetrics / JSON exporters for :class:`~repro.obs.metrics.MetricsRegistry`.

``to_openmetrics`` renders the registry in the OpenMetrics text
exposition format (the Prometheus-compatible superset): ``# TYPE`` /
``# HELP`` metadata, ``_total``-suffixed counter samples, cumulative
``le``-labeled histogram buckets and a terminating ``# EOF``.
``parse_openmetrics`` is the matching (subset) parser, used by the test
suite for round-trip validation and by ``coma-sim bench`` consumers.

This file is on the DET-lint allowlist (see
``repro.analysis.lint.UNRESTRICTED_FILES``): :func:`snapshot_provenance`
stamps exports with the wall-clock timestamp, exactly like the
experiment runner stamps manifests — provenance is about the host world,
not the simulated one, so it lives outside the deterministic core even
though the module sits in ``repro.obs`` next to the registry it exports.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Optional

from repro.obs.metrics import COUNTER_SUFFIX, Family, MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def escape_label_value(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def _labelset(names, values, extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [
        f'{n}="{escape_label_value(v)}"' for n, v in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _exemplar_bucket(child, value: int) -> int:
    """Index of the bucket an observation of ``value`` landed in (the
    same arithmetic as :meth:`~repro.obs.metrics.Histogram.observe`)."""
    v = int(value)
    if v <= 1:
        return 0
    idx = (v - 1).bit_length()
    last = len(child.counts) - 1
    return idx if idx <= last else last


def _render_exemplar(labels: dict, value) -> str:
    pairs = ",".join(
        f'{n}="{escape_label_value(str(v))}"' for n, v in sorted(labels.items())
    )
    return f" # {{{pairs}}} {_fmt_value(value)}"


def _render_family(fam: Family, lines: list[str],
                   exemplars: Optional[dict] = None) -> None:
    name = fam.name
    lines.append(f"# TYPE {name} {fam.type}")
    if fam.help:
        lines.append(f"# HELP {name} {_escape_help(fam.help)}")
    names = fam.label_names
    fam_ex = exemplars.get(name) if exemplars else None
    for values, child in fam.samples():
        if fam.type == "counter":
            lines.append(
                f"{name}{COUNTER_SUFFIX}{_labelset(names, values)} "
                f"{_fmt_value(child.value)}"
            )
        elif fam.type == "gauge":
            lines.append(
                f"{name}{_labelset(names, values)} {_fmt_value(child.value)}"
            )
        else:  # histogram
            ex = fam_ex.get(values) if fam_ex else None
            ex_bucket = _exemplar_bucket(child, ex[1]) if ex else -1
            for i, (bound, cum) in enumerate(
                zip(child.bucket_bounds(), child.cumulative())
            ):
                le = "+Inf" if bound == float("inf") else str(bound)
                line = (
                    f"{name}_bucket{_labelset(names, values, ('le', le))} {cum}"
                )
                if i == ex_bucket:
                    line += _render_exemplar(ex[0], ex[1])
                lines.append(line)
            lines.append(
                f"{name}_sum{_labelset(names, values)} {_fmt_value(child.sum)}"
            )
            lines.append(
                f"{name}_count{_labelset(names, values)} {child.count}"
            )


def to_openmetrics(registry: MetricsRegistry,
                   exemplars: Optional[dict] = None) -> str:
    """The registry in OpenMetrics text format, ``# EOF``-terminated.

    ``exemplars`` — optional OpenMetrics exemplars, keyed
    ``{family name: {label-value tuple: (exemplar labels, value)}}`` (the
    shape :meth:`repro.obs.spans.StallAttribution.exemplars` returns).
    Each lands on the bucket line its value falls into, so a scrape can
    jump from a latency bucket straight to the slowest trace id in it.
    """
    lines: list[str] = []
    for fam in registry.families():
        _render_family(fam, lines, exemplars)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_table(registry: MetricsRegistry) -> str:
    """A compact human-readable rendering (``--format table``)."""
    lines: list[str] = []
    for fam in registry.families():
        suffix = COUNTER_SUFFIX if fam.type == "counter" else ""
        lines.append(f"{fam.name}{suffix} ({fam.type}) — {fam.help}")
        for values, child in fam.samples():
            label = ",".join(values) or "-"
            if fam.type == "histogram":
                mean = child.sum / child.count if child.count else 0.0
                lines.append(
                    f"  {label:<24} count={child.count} sum={child.sum} "
                    f"mean={mean:.1f}"
                )
            else:
                lines.append(f"  {label:<24} {child.value}")
    return "\n".join(lines) + "\n"


def snapshot_provenance() -> dict:
    """Host provenance for a metrics/bench export (wall clock allowed
    here; this module is DET-allowlisted)."""
    from repro import __version__
    from repro.experiments.runner import CACHE_VERSION
    from repro.obs.manifest import git_revision

    return {
        "repro": __version__,
        "cache_version": CACHE_VERSION,
        "git_rev": git_revision() or "unknown",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def to_json(
    registry: MetricsRegistry, provenance: Optional[dict] = None
) -> str:
    """A provenance-stamped JSON snapshot of the registry."""
    payload = {
        "provenance": snapshot_provenance() if provenance is None else provenance,
        "families": registry.snapshot(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# parser (round-trip validation; subset of the OpenMetrics grammar)
# ----------------------------------------------------------------------


class OpenMetricsParseError(ValueError):
    pass


def _split_exemplar(line: str) -> tuple[str, Optional[str]]:
    """Split a sample line from its exemplar at the `` # `` that sits
    *outside* quoted label values.

    A naive ``line.partition(" # ")`` truncates samples whose label
    values contain a literal ``" # "`` (only ``\\``, ``"`` and newlines
    are escaped, so the sequence can appear raw inside quotes) — this
    scanner tracks quoting so only a real exemplar separator splits.
    """
    in_quotes = False
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if in_quotes:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_quotes = False
        elif ch == '"':
            in_quotes = True
        elif ch == " " and line.startswith(" # ", i):
            return line[:i], line[i + 3:]
        i += 1
    return line, None


def _parse_value(text: str, lineno: int):
    """A sample value, preserving the int/float distinction the exporter
    wrote (``5`` stays ``int``, ``5.0`` stays ``float``) so a re-render
    reproduces the original bytes."""
    try:
        if not any(c in text for c in ".eEnN"):
            return int(text)
        return float(text)
    except ValueError as exc:
        raise OpenMetricsParseError(
            f"line {lineno}: bad value {text!r}") from exc


def _parse_exemplar(text: str, lineno: int) -> dict:
    """``{labels} value`` after the exemplar separator."""
    text = text.strip()
    if not text.startswith("{"):
        raise OpenMetricsParseError(
            f"line {lineno}: malformed exemplar {text!r}")
    close = text.rindex("}")
    labels = _parse_labels(text[1:close])
    return {
        "labels": labels,
        "value": _parse_value(text[close + 1:].strip(), lineno),
    }


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq]
        if text[eq + 1] != '"':
            raise OpenMetricsParseError(f"unquoted label value near {text[i:]!r}")
        j = eq + 2
        value = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                value.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                value.append(text[j])
                j += 1
        labels[name] = "".join(value)
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise OpenMetricsParseError(f"expected ',' near {text[i:]!r}")
            i += 1
    return labels


def parse_openmetrics(
    text: str, exemplars: Optional[dict] = None
) -> dict[str, dict]:
    """Parse an exposition back into ``{family: {type, help, samples}}``.

    ``samples`` maps the full sample name to a list of
    ``(labels dict, value)`` pairs (ints stay ints, so a re-render is
    byte-identical).  Raises :class:`OpenMetricsParseError` on malformed
    input, samples preceding their ``# TYPE`` line, or a missing
    ``# EOF`` terminator.

    ``exemplars`` — optionally pass a dict to capture exemplar
    annotations: it is filled with ``{family: [{"sample", "labels",
    "exemplar": {"labels", "value"}}, ...]}`` in exposition order (kept
    out of the return value so two expositions differing only in
    exemplars still parse equal).
    """
    families: dict[str, dict] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if saw_eof:
            raise OpenMetricsParseError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_ = rest.partition(" ")
            families[name] = {"type": type_, "help": "", "samples": {}}
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_ = rest.partition(" ")
            if name not in families:
                raise OpenMetricsParseError(
                    f"line {lineno}: HELP for undeclared family {name!r}")
            families[name]["help"] = help_
            continue
        if line.startswith("#"):
            continue
        # A sample: name{labels} value [# {exemplar labels} exemplar]
        body, exemplar_text = _split_exemplar(line)
        brace = body.find("{")
        if brace >= 0:
            close = body.rindex("}")
            sample_name = body[:brace]
            labels = _parse_labels(body[brace + 1:close])
            value_text = body[close + 1:].strip()
        else:
            sample_name, _, value_text = body.partition(" ")
            labels = {}
        family = _family_of(sample_name, families)
        if family is None:
            raise OpenMetricsParseError(
                f"line {lineno}: sample {sample_name!r} precedes its TYPE")
        value = _parse_value(value_text, lineno)
        families[family]["samples"].setdefault(sample_name, []).append(
            (labels, value)
        )
        if exemplar_text is not None and exemplars is not None:
            exemplars.setdefault(family, []).append({
                "sample": sample_name,
                "labels": labels,
                "exemplar": _parse_exemplar(exemplar_text, lineno),
            })
    if not saw_eof:
        raise OpenMetricsParseError("missing # EOF terminator")
    return families


def render_openmetrics(families: dict[str, dict],
                       exemplars: Optional[dict] = None) -> str:
    """Re-render a :func:`parse_openmetrics` result back to text.

    For exporter-produced expositions the render is byte-identical to
    the original — including exemplar annotations when the ``exemplars``
    capture dict from the parse is passed back in — which is the
    round-trip property the test suite certifies (parse → render →
    parse is then trivially lossless).
    """
    lines: list[str] = []
    for name, fam in families.items():
        lines.append(f"# TYPE {name} {fam['type']}")
        if fam.get("help"):
            lines.append(f"# HELP {name} {fam['help']}")
        fam_ex = list((exemplars or {}).get(name, ()))
        if fam["type"] == "histogram":
            _render_parsed_histogram(name, fam["samples"], fam_ex, lines)
        else:
            for sample_name, entries in fam["samples"].items():
                for labels, value in entries:
                    lines.append(_sample_line(sample_name, labels, value))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _sample_line(sample_name: str, labels: dict, value,
                 exemplar: Optional[dict] = None) -> str:
    pairs = ",".join(
        f'{n}="{escape_label_value(v)}"' for n, v in labels.items()
    )
    line = f"{sample_name}{{{pairs}}}" if pairs else sample_name
    line += f" {_fmt_value(value)}"
    if exemplar is not None:
        ex_pairs = ",".join(
            f'{n}="{escape_label_value(str(v))}"'
            for n, v in exemplar["labels"].items()
        )
        line += f" # {{{ex_pairs}}} {_fmt_value(exemplar['value'])}"
    return line


def _render_parsed_histogram(name: str, samples: dict, fam_ex: list,
                             lines: list[str]) -> None:
    """Re-interleave parsed histogram samples into the exporter's line
    order: per labelset, every bucket line, then ``_sum``, ``_count``."""

    def exemplar_for(sample_name: str, labels: dict) -> Optional[dict]:
        for i, entry in enumerate(fam_ex):
            if entry["sample"] == sample_name and entry["labels"] == labels:
                return fam_ex.pop(i)["exemplar"]
        return None

    buckets = samples.get(f"{name}_bucket", [])
    sums = samples.get(f"{name}_sum", [])
    counts = samples.get(f"{name}_count", [])
    group = 0  # index into sums/counts: one labelset per (sum, count)
    prev_base: Optional[dict] = None
    for labels, value in buckets:
        base = {k: v for k, v in labels.items() if k != "le"}
        if prev_base is not None and base != prev_base:
            _emit_sum_count(name, sums, counts, group, lines)
            group += 1
        prev_base = base
        lines.append(_sample_line(
            f"{name}_bucket", labels, value,
            exemplar_for(f"{name}_bucket", labels)))
    if prev_base is not None:
        _emit_sum_count(name, sums, counts, group, lines)
        group += 1
    # Sums/counts beyond the bucket groups (shouldn't happen for
    # exporter output, but parsed input is re-rendered faithfully).
    for i in range(group, max(len(sums), len(counts))):
        _emit_sum_count(name, sums, counts, i, lines)


def _emit_sum_count(name: str, sums: list, counts: list, i: int,
                    lines: list[str]) -> None:
    if i < len(sums):
        lines.append(_sample_line(f"{name}_sum", *sums[i]))
    if i < len(counts):
        lines.append(_sample_line(f"{name}_count", *counts[i]))


def _family_of(sample_name: str, families: dict) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in (COUNTER_SUFFIX, "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None
