"""OpenMetrics / JSON exporters for :class:`~repro.obs.metrics.MetricsRegistry`.

``to_openmetrics`` renders the registry in the OpenMetrics text
exposition format (the Prometheus-compatible superset): ``# TYPE`` /
``# HELP`` metadata, ``_total``-suffixed counter samples, cumulative
``le``-labeled histogram buckets and a terminating ``# EOF``.
``parse_openmetrics`` is the matching (subset) parser, used by the test
suite for round-trip validation and by ``coma-sim bench`` consumers.

This file is on the DET-lint allowlist (see
``repro.analysis.lint.UNRESTRICTED_FILES``): :func:`snapshot_provenance`
stamps exports with the wall-clock timestamp, exactly like the
experiment runner stamps manifests — provenance is about the host world,
not the simulated one, so it lives outside the deterministic core even
though the module sits in ``repro.obs`` next to the registry it exports.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Optional

from repro.obs.metrics import COUNTER_SUFFIX, Family, MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def escape_label_value(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def _labelset(names, values, extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [
        f'{n}="{escape_label_value(v)}"' for n, v in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _exemplar_bucket(child, value: int) -> int:
    """Index of the bucket an observation of ``value`` landed in (the
    same arithmetic as :meth:`~repro.obs.metrics.Histogram.observe`)."""
    v = int(value)
    if v <= 1:
        return 0
    idx = (v - 1).bit_length()
    last = len(child.counts) - 1
    return idx if idx <= last else last


def _render_exemplar(labels: dict, value) -> str:
    pairs = ",".join(
        f'{n}="{escape_label_value(str(v))}"' for n, v in sorted(labels.items())
    )
    return f" # {{{pairs}}} {_fmt_value(value)}"


def _render_family(fam: Family, lines: list[str],
                   exemplars: Optional[dict] = None) -> None:
    name = fam.name
    lines.append(f"# TYPE {name} {fam.type}")
    if fam.help:
        lines.append(f"# HELP {name} {_escape_help(fam.help)}")
    names = fam.label_names
    fam_ex = exemplars.get(name) if exemplars else None
    for values, child in fam.samples():
        if fam.type == "counter":
            lines.append(
                f"{name}{COUNTER_SUFFIX}{_labelset(names, values)} "
                f"{_fmt_value(child.value)}"
            )
        elif fam.type == "gauge":
            lines.append(
                f"{name}{_labelset(names, values)} {_fmt_value(child.value)}"
            )
        else:  # histogram
            ex = fam_ex.get(values) if fam_ex else None
            ex_bucket = _exemplar_bucket(child, ex[1]) if ex else -1
            for i, (bound, cum) in enumerate(
                zip(child.bucket_bounds(), child.cumulative())
            ):
                le = "+Inf" if bound == float("inf") else str(bound)
                line = (
                    f"{name}_bucket{_labelset(names, values, ('le', le))} {cum}"
                )
                if i == ex_bucket:
                    line += _render_exemplar(ex[0], ex[1])
                lines.append(line)
            lines.append(
                f"{name}_sum{_labelset(names, values)} {_fmt_value(child.sum)}"
            )
            lines.append(
                f"{name}_count{_labelset(names, values)} {child.count}"
            )


def to_openmetrics(registry: MetricsRegistry,
                   exemplars: Optional[dict] = None) -> str:
    """The registry in OpenMetrics text format, ``# EOF``-terminated.

    ``exemplars`` — optional OpenMetrics exemplars, keyed
    ``{family name: {label-value tuple: (exemplar labels, value)}}`` (the
    shape :meth:`repro.obs.spans.StallAttribution.exemplars` returns).
    Each lands on the bucket line its value falls into, so a scrape can
    jump from a latency bucket straight to the slowest trace id in it.
    """
    lines: list[str] = []
    for fam in registry.families():
        _render_family(fam, lines, exemplars)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_table(registry: MetricsRegistry) -> str:
    """A compact human-readable rendering (``--format table``)."""
    lines: list[str] = []
    for fam in registry.families():
        suffix = COUNTER_SUFFIX if fam.type == "counter" else ""
        lines.append(f"{fam.name}{suffix} ({fam.type}) — {fam.help}")
        for values, child in fam.samples():
            label = ",".join(values) or "-"
            if fam.type == "histogram":
                mean = child.sum / child.count if child.count else 0.0
                lines.append(
                    f"  {label:<24} count={child.count} sum={child.sum} "
                    f"mean={mean:.1f}"
                )
            else:
                lines.append(f"  {label:<24} {child.value}")
    return "\n".join(lines) + "\n"


def snapshot_provenance() -> dict:
    """Host provenance for a metrics/bench export (wall clock allowed
    here; this module is DET-allowlisted)."""
    from repro import __version__
    from repro.experiments.runner import CACHE_VERSION
    from repro.obs.manifest import git_revision

    return {
        "repro": __version__,
        "cache_version": CACHE_VERSION,
        "git_rev": git_revision() or "unknown",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def to_json(
    registry: MetricsRegistry, provenance: Optional[dict] = None
) -> str:
    """A provenance-stamped JSON snapshot of the registry."""
    payload = {
        "provenance": snapshot_provenance() if provenance is None else provenance,
        "families": registry.snapshot(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# parser (round-trip validation; subset of the OpenMetrics grammar)
# ----------------------------------------------------------------------


class OpenMetricsParseError(ValueError):
    pass


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq]
        if text[eq + 1] != '"':
            raise OpenMetricsParseError(f"unquoted label value near {text[i:]!r}")
        j = eq + 2
        value = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                value.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                value.append(text[j])
                j += 1
        labels[name] = "".join(value)
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise OpenMetricsParseError(f"expected ',' near {text[i:]!r}")
            i += 1
    return labels


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse an exposition back into ``{family: {type, help, samples}}``.

    ``samples`` maps the full sample name to a list of
    ``(labels dict, value)`` pairs.  Raises
    :class:`OpenMetricsParseError` on malformed input, samples preceding
    their ``# TYPE`` line, or a missing ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if saw_eof:
            raise OpenMetricsParseError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_ = rest.partition(" ")
            families[name] = {"type": type_, "help": "", "samples": {}}
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_ = rest.partition(" ")
            if name not in families:
                raise OpenMetricsParseError(
                    f"line {lineno}: HELP for undeclared family {name!r}")
            families[name]["help"] = help_
            continue
        if line.startswith("#"):
            continue
        # A sample: name{labels} value [# {exemplar labels} exemplar]
        body, _, _ = line.partition(" # ")
        brace = body.find("{")
        if brace >= 0:
            close = body.rindex("}")
            sample_name = body[:brace]
            labels = _parse_labels(body[brace + 1:close])
            value_text = body[close + 1:].strip()
        else:
            sample_name, _, value_text = body.partition(" ")
            labels = {}
        family = _family_of(sample_name, families)
        if family is None:
            raise OpenMetricsParseError(
                f"line {lineno}: sample {sample_name!r} precedes its TYPE")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise OpenMetricsParseError(
                f"line {lineno}: bad value {value_text!r}") from exc
        families[family]["samples"].setdefault(sample_name, []).append(
            (labels, value)
        )
    if not saw_eof:
        raise OpenMetricsParseError("missing # EOF terminator")
    return families


def _family_of(sample_name: str, families: dict) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in (COUNTER_SUFFIX, "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None
