"""Persistent run-history archive: every completed run, queryable forever.

The paper's claims are *comparative* (COMA vs hcoma vs NUMA, 6.25 % vs
87.5 % memory pressure), yet a metrics snapshot or bench payload used to
die with its process.  This module is the seed of ROADMAP item 3's
columnar result store: an append-only, schema-versioned archive of every
completed :class:`~repro.experiments.runner.RunSpec` — counters, the
metrics-registry snapshot, span/phase attribution totals, bench numbers
and the full provenance manifest — keyed on ``RunSpec.key()`` and backed
by stdlib ``sqlite3`` (one file, multi-writer safe, readable after a
SIGKILL mid-append thanks to sqlite's journal).

Write semantics (the PR 4 publication discipline, adapted to a table):

* appends run inside ``BEGIN IMMEDIATE`` transactions, so concurrent
  writers — parallel sweep workers, two CLI invocations, the serve
  layer — serialize instead of corrupting;
* re-recording a ``(key, content)`` pair already present is a **dedup**:
  the newcomer's metadata wins (last-writer-wins) but attribution blobs
  are kept via COALESCE, and no second row appears;
* the same key with *different* deterministic content (a changed
  simulator producing a new result under an unchanged CACHE_VERSION
  would be a bug, but the archive must not hide it) is preserved as a
  new **revision** of that key.

Connections are opened per call and closed immediately: the archive
object itself holds no file handle, so it is safe to share across
``fork()`` into sweep workers and across service executor threads.

This module is part of the deterministic core (DET lint): it never reads
the wall clock — ``recorded_at`` timestamps are passed in by the
unrestricted callers (the experiment runner, ``coma-sim bench``), the
manifest pattern exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Optional, Union

#: Bump when the table layout changes; old archives refuse politely.
HISTORY_SCHEMA = 1

#: Default archive location (a directory, holding one sqlite file).
DEFAULT_HISTORY_DIR = ".repro_history"

#: Seconds a writer waits on a locked database before giving up.
_BUSY_TIMEOUT_S = 10.0

_RUN_COLUMNS = (
    "id", "key", "rev", "content_hash", "batch", "source", "cache",
    "recorded_at", "workload", "machine", "memory_pressure",
    "procs_per_node", "scale", "seed", "cache_version", "git_rev",
    "wall_time_s", "elapsed_ns",
)

_RUN_BLOBS = (
    "spec_json", "result_json", "metrics_json", "phases_json",
    "histograms_json", "top_spans_json", "manifest_json",
)

_SCHEMA_SQL = (
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY, value TEXT NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS runs (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        key TEXT NOT NULL,
        rev INTEGER NOT NULL DEFAULT 0,
        content_hash TEXT NOT NULL,
        batch TEXT,
        source TEXT NOT NULL DEFAULT 'run',
        cache TEXT NOT NULL DEFAULT 'miss',
        recorded_at TEXT,
        workload TEXT NOT NULL,
        machine TEXT NOT NULL,
        memory_pressure REAL NOT NULL,
        procs_per_node INTEGER NOT NULL,
        scale REAL NOT NULL,
        seed INTEGER NOT NULL,
        cache_version INTEGER,
        git_rev TEXT,
        wall_time_s REAL,
        elapsed_ns INTEGER NOT NULL,
        spec_json TEXT NOT NULL,
        result_json TEXT NOT NULL,
        metrics_json TEXT,
        phases_json TEXT,
        histograms_json TEXT,
        top_spans_json TEXT,
        manifest_json TEXT,
        UNIQUE (key, content_hash))""",
    """CREATE INDEX IF NOT EXISTS runs_by_key ON runs (key)""",
    """CREATE INDEX IF NOT EXISTS runs_by_batch ON runs (batch)""",
    """CREATE TABLE IF NOT EXISTS benches (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        content_hash TEXT NOT NULL UNIQUE,
        recorded_at TEXT,
        git_rev TEXT,
        quick INTEGER NOT NULL DEFAULT 0,
        payload_json TEXT NOT NULL)""",
)


class HistoryArchiveError(Exception):
    """The archive is unreadable, locked beyond patience, or newer than
    this code's HISTORY_SCHEMA."""


def default_history_path() -> Path:
    """Archive file location: ``$REPRO_HISTORY_DIR/history.sqlite``
    (default ``.repro_history/``), resolved absolute so a later chdir
    cannot silently fork the history."""
    root = os.environ.get("REPRO_HISTORY_DIR", DEFAULT_HISTORY_DIR)
    return Path(root).absolute() / "history.sqlite"


def history_disabled() -> bool:
    """True when ``REPRO_NO_HISTORY`` disables default-path recording."""
    return bool(os.environ.get("REPRO_NO_HISTORY", ""))


def content_hash(spec: dict, result: dict) -> str:
    """Hash of the *deterministic* payload only — spec plus simulated
    result, never timestamps, wall times or attribution blobs — so a
    cache hit re-recorded later dedups against the original row."""
    payload = json.dumps({"result": result, "spec": spec}, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def phase_totals(attribution) -> dict[str, int]:
    """Flatten a :class:`~repro.obs.spans.StallAttribution`'s
    proc -> op -> phase nanoseconds into archive-row phase totals."""
    totals: dict[str, int] = {}
    for by_op in attribution.phase_ns.values():
        for phases in by_op.values():
            for name, ns in phases.items():
                totals[name] = totals.get(name, 0) + ns
    return dict(sorted(totals.items()))


def _dump(obj) -> Optional[str]:
    return None if obj is None else json.dumps(obj, sort_keys=True)


def _load(text):
    return None if text is None else json.loads(text)


class HistoryArchive:
    """One sqlite-backed run/bench archive (see the module docstring)."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else default_history_path()

    # -- connection / schema -------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        con = sqlite3.connect(str(self.path), timeout=_BUSY_TIMEOUT_S)
        try:
            for stmt in _SCHEMA_SQL:
                con.execute(stmt)
            row = con.execute(
                "SELECT value FROM meta WHERE key = 'schema'").fetchone()
            if row is None:
                con.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES "
                    "('schema', ?)", (str(HISTORY_SCHEMA),))
                con.commit()
            elif int(row[0]) > HISTORY_SCHEMA:
                raise HistoryArchiveError(
                    f"{self.path} has schema {row[0]}; this code reads "
                    f"up to {HISTORY_SCHEMA}")
        except sqlite3.DatabaseError as exc:
            con.close()
            raise HistoryArchiveError(
                f"cannot open archive {self.path}: {exc}") from exc
        except Exception:
            con.close()
            raise
        return con

    # -- appends --------------------------------------------------------

    def record_run(
        self,
        *,
        key: str,
        spec: dict,
        result: dict,
        recorded_at: Optional[str] = None,
        source: str = "run",
        cache: str = "miss",
        batch: Optional[str] = None,
        cache_version: Optional[int] = None,
        git_rev: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        metrics: Optional[dict] = None,
        phases: Optional[dict] = None,
        histograms: Optional[dict] = None,
        top_spans: Optional[list] = None,
        manifest: Optional[dict] = None,
    ) -> str:
        """Append one completed run; returns the outcome.

        ``"inserted"`` — first row for this key; ``"deduped"`` — a row
        with identical deterministic content already existed (its
        metadata is refreshed, blobs backfilled, no new row);
        ``"revision"`` — same key, different content: preserved as a new
        revision rather than silently overwritten.
        """
        chash = content_hash(spec, result)
        blobs = (_dump(metrics), _dump(phases), _dump(histograms),
                 _dump(top_spans), _dump(manifest))
        with closing(self._connect()) as con:
            try:
                con.execute("BEGIN IMMEDIATE")
                row = con.execute(
                    "SELECT id FROM runs WHERE key = ? AND content_hash = ?",
                    (key, chash)).fetchone()
                if row is not None:
                    con.execute(
                        "UPDATE runs SET "
                        "recorded_at = COALESCE(?, recorded_at), "
                        "source = ?, cache = ?, "
                        "batch = COALESCE(?, batch), "
                        "git_rev = COALESCE(?, git_rev), "
                        "wall_time_s = COALESCE(?, wall_time_s), "
                        "metrics_json = COALESCE(?, metrics_json), "
                        "phases_json = COALESCE(?, phases_json), "
                        "histograms_json = COALESCE(?, histograms_json), "
                        "top_spans_json = COALESCE(?, top_spans_json), "
                        "manifest_json = COALESCE(?, manifest_json) "
                        "WHERE id = ?",
                        (recorded_at, source, cache, batch, git_rev,
                         wall_time_s, *blobs, row[0]))
                    con.commit()
                    return "deduped"
                rev = con.execute(
                    "SELECT COALESCE(MAX(rev) + 1, 0) FROM runs "
                    "WHERE key = ?", (key,)).fetchone()[0]
                con.execute(
                    "INSERT INTO runs (key, rev, content_hash, batch, "
                    "source, cache, recorded_at, workload, machine, "
                    "memory_pressure, procs_per_node, scale, seed, "
                    "cache_version, git_rev, wall_time_s, elapsed_ns, "
                    "spec_json, result_json, metrics_json, phases_json, "
                    "histograms_json, top_spans_json, manifest_json) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                    "?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, rev, chash, batch, source, cache, recorded_at,
                     str(spec.get("workload", "?")),
                     str(spec.get("machine", "coma")),
                     float(spec.get("memory_pressure", 0.0)),
                     int(spec.get("procs_per_node", 1)),
                     float(spec.get("scale", 1.0)),
                     int(spec.get("seed", 0)),
                     cache_version, git_rev, wall_time_s,
                     int(result.get("elapsed_ns", 0)),
                     json.dumps(spec, sort_keys=True),
                     json.dumps(result, sort_keys=True),
                     *blobs))
                con.commit()
                return "inserted" if rev == 0 else "revision"
            except sqlite3.IntegrityError:
                # Lost a (key, content) race despite BEGIN IMMEDIATE
                # (e.g. a retried transaction): the winner's row stands.
                con.rollback()
                return "deduped"
            except sqlite3.DatabaseError as exc:
                con.rollback()
                raise HistoryArchiveError(
                    f"append to {self.path} failed: {exc}") from exc

    def record_bench(self, payload: dict,
                     recorded_at: Optional[str] = None) -> str:
        """Append one BENCH payload; identical payloads dedup."""
        canon = {k: v for k, v in payload.items() if k != "timestamp"}
        chash = hashlib.sha256(
            json.dumps(canon, sort_keys=True).encode()).hexdigest()[:24]
        with closing(self._connect()) as con:
            try:
                con.execute("BEGIN IMMEDIATE")
                cur = con.execute(
                    "INSERT OR IGNORE INTO benches (content_hash, "
                    "recorded_at, git_rev, quick, payload_json) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (chash, recorded_at or payload.get("timestamp"),
                     payload.get("git_rev"),
                     1 if payload.get("quick") else 0,
                     json.dumps(payload, sort_keys=True)))
                con.commit()
                return "inserted" if cur.rowcount else "deduped"
            except sqlite3.DatabaseError as exc:
                con.rollback()
                raise HistoryArchiveError(
                    f"append to {self.path} failed: {exc}") from exc

    # -- queries --------------------------------------------------------

    def _row_dict(self, row, with_blobs: bool) -> dict:
        d = dict(zip(_RUN_COLUMNS, row[:len(_RUN_COLUMNS)]))
        if with_blobs:
            blobs = row[len(_RUN_COLUMNS):]
            d["spec"] = _load(blobs[0])
            d["result"] = _load(blobs[1])
            d["metrics"] = _load(blobs[2])
            d["phases"] = _load(blobs[3])
            d["histograms"] = _load(blobs[4])
            d["top_spans"] = _load(blobs[5])
            d["manifest"] = _load(blobs[6])
        return d

    def list_runs(
        self,
        workload: Optional[str] = None,
        key: Optional[str] = None,
        batch: Optional[str] = None,
        limit: int = 50,
    ) -> list[dict]:
        """Newest-first run rows (metadata only, no JSON blobs)."""
        where, params = [], []
        if workload is not None:
            where.append("workload = ?")
            params.append(workload)
        if key is not None:
            where.append("key LIKE ?")
            params.append(key + "%")
        if batch is not None:
            where.append("batch = ?")
            params.append(batch)
        sql = f"SELECT {', '.join(_RUN_COLUMNS)} FROM runs"
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY id DESC LIMIT ?"
        params.append(int(limit))
        with closing(self._connect()) as con:
            rows = con.execute(sql, params).fetchall()
        return [self._row_dict(r, with_blobs=False) for r in rows]

    def get_run(self, key: str, rev: Optional[int] = None) -> Optional[dict]:
        """One full row (blobs decoded) by key or unique key prefix.

        Without ``rev``, the newest revision of the key is returned.
        """
        sql = (
            f"SELECT {', '.join(_RUN_COLUMNS)}, {', '.join(_RUN_BLOBS)} "
            "FROM runs WHERE key LIKE ?"
        )
        params: list = [key + "%"]
        if rev is not None:
            sql += " AND rev = ?"
            params.append(int(rev))
        sql += " ORDER BY rev DESC, id DESC LIMIT 1"
        with closing(self._connect()) as con:
            row = con.execute(sql, params).fetchone()
        return None if row is None else self._row_dict(row, with_blobs=True)

    def run_count(self) -> int:
        with closing(self._connect()) as con:
            return con.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def list_benches(self, limit: Optional[int] = None,
                     quick: Optional[bool] = None) -> list[dict]:
        """Newest-first bench payloads (decoded)."""
        sql = ("SELECT id, content_hash, recorded_at, git_rev, quick, "
               "payload_json FROM benches")
        params: list = []
        if quick is not None:
            sql += " WHERE quick = ?"
            params.append(1 if quick else 0)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with closing(self._connect()) as con:
            rows = con.execute(sql, params).fetchall()
        return [
            {"id": r[0], "content_hash": r[1], "recorded_at": r[2],
             "git_rev": r[3], "quick": bool(r[4]),
             "payload": json.loads(r[5])}
            for r in rows
        ]

    def bench_count(self) -> int:
        with closing(self._connect()) as con:
            return con.execute("SELECT COUNT(*) FROM benches").fetchone()[0]

    # -- trend ----------------------------------------------------------

    def trend(self, last: int = 10, threshold_pct: float = 10.0,
              quick: Optional[bool] = None) -> dict:
        """Per-suite wall-time trajectory over the last N archived
        benches, with the newest run classified against the rolling
        median of the earlier ones (the ``history trend`` payload).

        The embedded ``baseline`` is a valid BENCH-schema payload whose
        per-suite ``wall_s`` is the rolling median, so ``coma-sim bench
        --compare trend.json`` can gate directly against it.
        """
        benches = self.list_benches(limit=last, quick=quick)
        benches.reverse()  # chronological, oldest first
        suites: dict[str, dict] = {}
        names = sorted({
            name for b in benches for name in b["payload"].get("suites", {})
        })
        for name in names:
            walls = [
                float(b["payload"]["suites"][name]["wall_s"])
                for b in benches if name in b["payload"].get("suites", {})
            ]
            median = _median(walls[:-1] if len(walls) > 1 else walls)
            latest = walls[-1]
            if latest > median * (1.0 + threshold_pct / 100.0):
                status = "regression"
            elif latest < median * (1.0 - threshold_pct / 100.0):
                status = "improvement"
            else:
                status = "ok"
            change = (latest - median) / median * 100.0 if median > 0 else 0.0
            suites[name] = {
                "walls_s": walls,
                "median_s": median,
                "latest_s": latest,
                "change_pct": change,
                "status": status,
                "rolling_median_s": _median(walls),
            }
        # The gate baseline is the median over the whole window (the
        # classification median above excludes the newest run so the
        # newest run can be judged against its predecessors).
        baseline_suites = {
            name: {"wall_s": row["rolling_median_s"],
                   "samples": len(row["walls_s"])}
            for name, row in suites.items()
        }
        return {
            "benches": len(benches),
            "threshold_pct": threshold_pct,
            "suites": suites,
            "baseline": {
                "schema": 1,  # repro.bench.harness.BENCH_SCHEMA
                "rolling": {"runs": len(benches)},
                "suites": baseline_suites,
            },
        }

    # -- retention ------------------------------------------------------

    def gc(self, keep_revisions: int = 1,
           keep_benches: Optional[int] = None,
           dry_run: bool = False) -> dict:
        """Trim superseded revisions (keeping the newest
        ``keep_revisions`` per key) and, optionally, old bench rows
        beyond the newest ``keep_benches``.  Returns deletion counts."""
        deleted_runs = deleted_benches = 0
        with closing(self._connect()) as con:
            con.execute("BEGIN IMMEDIATE")
            doomed = con.execute(
                "SELECT id FROM runs r WHERE (SELECT COUNT(*) FROM runs n "
                "WHERE n.key = r.key AND (n.rev > r.rev OR "
                "(n.rev = r.rev AND n.id > r.id))) >= ?",
                (max(1, int(keep_revisions)),)).fetchall()
            deleted_runs = len(doomed)
            if not dry_run and doomed:
                con.executemany("DELETE FROM runs WHERE id = ?", doomed)
            if keep_benches is not None:
                doomed_b = con.execute(
                    "SELECT id FROM benches ORDER BY id DESC LIMIT -1 "
                    "OFFSET ?", (max(0, int(keep_benches)),)).fetchall()
                deleted_benches = len(doomed_b)
                if not dry_run and doomed_b:
                    con.executemany(
                        "DELETE FROM benches WHERE id = ?", doomed_b)
            con.commit()
            if not dry_run and (deleted_runs or deleted_benches):
                con.execute("VACUUM")
        return {"runs_deleted": deleted_runs,
                "benches_deleted": deleted_benches,
                "dry_run": dry_run}


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def format_history(rows: list[dict]) -> str:
    """Human table for ``coma-sim history list``."""
    out = [
        f"  {'key':<24} {'rev':>3} {'workload':<16} {'machine':<6} "
        f"{'mp':>6} {'elapsed_ns':>14} {'cache':>10}  {'source':<6} "
        f"recorded_at"
    ]
    for r in rows:
        out.append(
            f"  {r['key']:<24} {r['rev']:>3} {r['workload']:<16} "
            f"{r['machine']:<6} {r['memory_pressure']:>6.4g} "
            f"{r['elapsed_ns']:>14} {r['cache']:>10}  {r['source']:<6} "
            f"{r['recorded_at'] or '-'}"
        )
    return "\n".join(out)


def format_trend(report: dict) -> str:
    """Human table for ``coma-sim history trend``."""
    n = report["benches"]
    out = [
        f"bench trend over {n} archived run(s) "
        f"(threshold {report['threshold_pct']:g}% vs rolling median):",
        f"  {'suite':<26} {'runs':>4} {'median':>9} {'latest':>9} "
        f"{'change':>8}  status",
    ]
    for name, row in sorted(report["suites"].items()):
        out.append(
            f"  {name:<26} {len(row['walls_s']):>4} "
            f"{row['median_s']:>8.3f}s {row['latest_s']:>8.3f}s "
            f"{row['change_pct']:>+7.1f}%  {row['status']}"
        )
    flagged = [n for n, r in sorted(report["suites"].items())
               if r["status"] == "regression"]
    out.append(
        f"  => {'REGRESSION: ' + ', '.join(flagged) if flagged else 'PASS'}"
    )
    return "\n".join(out)
