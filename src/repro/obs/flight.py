"""Bounded ring-buffer flight recorder.

Always cheap enough to leave on: it keeps only the last ``capacity``
events in a ``deque`` and renders them only when asked.  The simulation
kernel calls :meth:`FlightRecorder.on_simulation_error` when a run dies
(deadlock, protocol invariant violation, event-budget blow-up), so the
operator sees the last thing every processor, node and bus did *before*
the crash instead of just the exception message.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.events import format_event
from repro.obs.sink import TraceSink


class FlightRecorder(TraceSink):
    """Keep the most recent ``capacity`` events; dump on demand."""

    def __init__(self, capacity: int = 4096,
                 dump_path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.buffer: deque = deque(maxlen=capacity)
        #: When set, :meth:`on_simulation_error` writes the dump here.
        self.dump_path = dump_path
        #: The last dump rendered by :meth:`on_simulation_error`.
        self.last_dump: Optional[str] = None
        #: Total events observed (so the dump says how many were lost).
        self.total = 0

    def emit(self, ev) -> None:
        self.total += 1
        self.buffer.append(ev)

    @property
    def dropped(self) -> int:
        return self.total - len(self.buffer)

    def dump_text(self, reason: str = "") -> str:
        """Render the buffered events, newest last."""
        head = [
            "=== flight recorder dump ===",
            f"events: {len(self.buffer)} buffered, {self.dropped} older "
            f"events discarded (capacity {self.capacity})",
        ]
        if reason:
            head.insert(1, f"reason: {reason}")
        return "\n".join(head + [format_event(e) for e in self.buffer])

    def on_simulation_error(self, exc: BaseException) -> Optional[str]:
        text = self.dump_text(reason=f"{type(exc).__name__}: {exc}")
        self.last_dump = text
        if self.dump_path is not None:
            try:
                with open(self.dump_path, "w") as f:
                    f.write(text + "\n")
            except OSError:
                pass  # the dump must never mask the original error
        return text
