"""Line biographies: the full history of one cache line.

The COMA protocol's interesting behaviour — a line degrading E->O as it
gets shared, bouncing between attraction memories under replacement
pressure, getting erased by an upgrade — is per *line*, but a raw trace
interleaves every line's events.  :class:`LineBiography` indexes a trace
by line and reconstructs the owner/sharer set event by event, which is
what ``coma-sim explain --line`` prints.
"""

from __future__ import annotations

from repro.obs.events import EV_REPLACEMENT, EV_TRANSITION, format_event
from repro.obs.sink import TraceSink

#: Transition causes after which the acting node is the (sole) owner.
_TAKES_OWNERSHIP = frozenset({
    "materialize", "read_exclusive", "upgrade", "inject",
})


class LineBiography(TraceSink):
    """Index every line-bearing event by line number."""

    def __init__(self) -> None:
        self._by_line: dict[int, list] = {}

    def emit(self, ev) -> None:
        line = getattr(ev, "line", -1)
        if line >= 0:
            self._by_line.setdefault(line, []).append(ev)

    # ------------------------------------------------------------------
    def lines(self) -> list[int]:
        """Traced lines, busiest first (ties broken by line number)."""
        return sorted(self._by_line, key=lambda ln: (-len(self._by_line[ln]), ln))

    def history(self, line: int) -> list:
        """Every event that touched ``line``, in emission order."""
        return list(self._by_line.get(line, ()))

    # ------------------------------------------------------------------
    def narrate(self, line: int) -> str:
        """Render ``line``'s history with the owner/sharer set it implies.

        The reconstruction follows the protocol: materialization, upgrades,
        read-exclusive fills and replacement injects move ownership; Shared
        fills add sharers; invalidations and silent drops remove copies.
        """
        events = sorted(self.history(line), key=lambda e: e.t)
        if not events:
            busiest = ", ".join(f"{ln:#x}" for ln in self.lines()[:8])
            hint = f" (busiest traced lines: {busiest})" if busiest else ""
            return f"line {line:#x}: no trace events{hint}"
        owner = None
        sharers: set[int] = set()
        out = [f"line {line:#x}: {len(events)} event(s)"]
        for ev in events:
            annotate = ""
            if ev.kind == EV_TRANSITION:
                owner, sharers = _apply(ev, owner, sharers)
                annotate = "   | " + _membership(owner, sharers)
            elif ev.kind == EV_REPLACEMENT and ev.dst >= 0 and owner == ev.src:
                # The matching inject transition also moves ownership; the
                # replacement event just records *why* (outcome, hops).
                annotate = "   | " + _membership(ev.dst, sharers)
            out.append(format_event(ev) + annotate)
        out.append(f"final: {_membership(owner, sharers)}")
        return "\n".join(out)


def _apply(ev, owner, sharers):
    """Fold one protocol transition into the (owner, sharers) picture."""
    node = ev.node
    if ev.cause in _TAKES_OWNERSHIP:
        owner = node
        sharers = {s for s in sharers if s != node}
        if ev.cause in ("upgrade", "read_exclusive"):
            sharers = set()
    elif ev.cause == "fill" and ev.after == "S":
        sharers = sharers | {node}
    elif ev.cause in ("invalidate", "drop"):
        sharers = {s for s in sharers if s != node}
        if owner == node:
            owner = None
    # "remote_read" (E->O) leaves membership unchanged.
    return owner, sharers


def _membership(owner, sharers) -> str:
    own = f"N{owner}" if owner is not None else "?"
    shr = "{" + ",".join(f"N{s}" for s in sorted(sharers)) + "}"
    return f"owner={own} sharers={shr}"
