"""The :class:`TraceSink` receiver interface.

Machines and the simulation kernel hold a ``trace`` attribute that is
``None`` by default; every emission site is guarded by a single

    if self.trace is not None:
        self.trace.access(...)

so a disabled trace costs one attribute load and an ``is``-check on the
hot path — no event objects are ever allocated.  When a sink is attached
(:meth:`repro.coma.machine.ComaMachine.set_trace`), the five typed entry
points below build the event dataclasses and route them through
:meth:`TraceSink.emit`, which is the one method concrete sinks implement.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    BusTx,
    MemAccess,
    Replacement,
    SpanEvent,
    SyncOp,
    SyncStall,
    Transition,
)


class TraceSink:
    """Base sink: typed entry points funnel into :meth:`emit`."""

    #: Span emission is opt-in: building a span tree per access costs
    #: allocations the classic flat events avoid, so the machine only
    #: installs a :class:`repro.obs.spans.SpanBuilder` when the attached
    #: sink asks for it.  Sinks that consume span events set this True
    #: (class attribute or per instance).
    wants_spans = False

    # -- emission API used by the instrumented machines ----------------

    def access(self, t: int, proc: int, op: str, line: int,
               level: str, latency_ns: int, addr: int = -1) -> None:
        self.emit(MemAccess(t, proc, op, line, level, latency_ns, addr))

    def transition(self, t: int, node: int, line: int, cause: str,
                   before: str, after: str) -> None:
        self.emit(Transition(t, node, line, cause, before, after))

    def bus(self, t: int, bus: str, tx: str, cls: str, nbytes: int,
            origin: int, line: int) -> None:
        self.emit(BusTx(t, bus, tx, cls, nbytes, origin, line))

    def replacement(self, t: int, src: int, dst: int, line: int,
                    outcome: str, hops: int) -> None:
        self.emit(Replacement(t, src, dst, line, outcome, hops))

    def sync(self, t: int, proc: int, primitive: str, obj: int,
             wait_ns: int) -> None:
        self.emit(SyncStall(t, proc, primitive, obj, wait_ns))

    def syncop(self, t: int, proc: int, op: str, primitive: str,
               obj: int) -> None:
        self.emit(SyncOp(t, proc, op, primitive, obj))

    def span(self, t: int, dur_ns: int, trace_id: int, span_id: int,
             parent_id: int, name: str, proc: int, line: int, op: str,
             level: str, relocs: int = 0) -> None:
        self.emit(SpanEvent(t, dur_ns, trace_id, span_id, parent_id,
                            name, proc, line, op, level, relocs))

    # -- observer attach path -------------------------------------------

    def attach_to(self, sim, every: Optional[int] = None) -> None:
        """Uniform observer hook (``Simulation.attach``): install this
        sink on the machine, teeing when one is already attached.
        ``every`` is accepted for interface symmetry and ignored."""
        existing = sim.machine.trace
        if existing is None:
            sim.machine.set_trace(self)
        elif isinstance(existing, TeeSink):
            existing.sinks.append(self)
            # Re-run set_trace so span wiring reflects the new member
            # (a wants_spans sink attached onto a span-less tee).
            sim.machine.set_trace(existing)
        else:
            sim.machine.set_trace(TeeSink(existing, self))

    # -- sink lifecycle -------------------------------------------------

    def emit(self, ev) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (file-backed sinks)."""

    def on_simulation_error(self, exc: BaseException) -> Optional[str]:
        """Hook called by the simulation kernel when a run dies.

        The flight recorder overrides this to dump its buffer; the return
        value (a rendered dump, or None) is attached to the exception as
        ``exc.flight_dump`` by the kernel.
        """
        return None


class CollectorSink(TraceSink):
    """Keep every event in a list (tests, in-process analysis)."""

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, ev) -> None:
        self.events.append(ev)

    def of_kind(self, kind: str) -> list:
        return [e for e in self.events if e.kind == kind]


class TeeSink(TraceSink):
    """Fan every event out to several child sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    @property
    def wants_spans(self) -> bool:
        return any(getattr(s, "wants_spans", False) for s in self.sinks)

    def emit(self, ev) -> None:
        for s in self.sinks:
            s.emit(ev)

    def close(self) -> None:
        for s in self.sinks:
            s.close()

    def on_simulation_error(self, exc: BaseException) -> Optional[str]:
        dump = None
        for s in self.sinks:
            dump = s.on_simulation_error(exc) or dump
        return dump
