"""Typed metrics registry: counters, gauges and log2-bucket histograms.

Where the event tracing of :mod:`repro.obs.sink` records *what* happened
event by event, this module aggregates *how much and how fast* into
labeled time-series families — the paper's quantitative spine (RNMr,
traffic splits, stall breakdowns) exported as first-class metrics rather
than one-off report text.

Design rules, in order of importance:

* **Zero overhead when disabled.**  The machines hold a ``metrics``
  attribute that defaults to ``None``; every hot-path emission site is a
  single ``if self.metrics is not None`` — the same discipline as the
  trace sinks.  No registry, family or sample object is ever allocated
  for an uninstrumented run.
* **Deterministic.**  This module is part of the deterministic core (the
  DET lint rules apply): metric values are simulated quantities —
  nanoseconds, event counts, bytes — never the wall clock.  Wall-time
  series (per-phase seconds, sweep ETA) are recorded by the unrestricted
  callers (``repro.experiments``, ``repro.bench``) into the same
  registry.  :meth:`MetricsRegistry.snapshot` is sorted at every level,
  so two runs of one RunSpec+seed snapshot byte-identically.
* **Fixed log2 buckets.**  Histograms bucket by power of two
  (``le = 1, 2, 4, ... 2^(n-1), +Inf``): constant-time ``bit_length``
  indexing on the hot path, and bucket boundaries that never depend on
  the data, so histograms from different runs are always mergeable.

Exporters live in :mod:`repro.obs.openmetrics` (OpenMetrics text, JSON
snapshots) and the CLI surface is ``coma-sim metrics``.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram size: boundaries 2^0 .. 2^(N-2), plus +Inf — wide
#: enough for nanosecond latencies up to ~17 simulated minutes.
DEFAULT_LOG2_BUCKETS = 32

_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Counter family names must carry this suffix in the exposition format;
#: the registry stores the base name and exporters append it.
COUNTER_SUFFIX = "_total"


class Counter:
    """A monotonically increasing integer/float sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A sample that can go up and down (utilization, sizes, ratios)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed log2-bucket histogram of non-negative integer observations.

    Bucket ``i`` (of ``n``) counts observations with ``value <= 2**i``
    for ``i < n-1``; the last bucket is ``+Inf``.  ``observe`` is O(1)
    via ``int.bit_length``.  Float observations are truncated toward
    zero first — callers observing seconds should scale to an integer
    unit (microseconds) before observing.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int = DEFAULT_LOG2_BUCKETS) -> None:
        self.counts = [0] * n_buckets
        self.sum: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        v = int(value)
        if v <= 1:
            idx = 0
        else:
            idx = (v - 1).bit_length()
            last = len(self.counts) - 1
            if idx > last:
                idx = last
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    def bucket_bounds(self) -> list[Number]:
        """Upper bounds per bucket; the last is ``float('inf')``."""
        bounds: list[Number] = [1 << i for i in range(len(self.counts) - 1)]
        bounds.append(float("inf"))
        return bounds

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket (the OpenMetrics ``le`` view)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric family: a set of children keyed by label values.

    Children are created on first use and cached; hot paths should bind
    them once (``child = fam.labels("am")``) and call ``inc``/``observe``
    on the bound child.  A family declared with no labels delegates
    ``inc``/``set``/``observe`` straight to its single child.
    """

    __slots__ = ("name", "type", "help", "label_names", "_children", "_hist_buckets")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        label_names: Sequence[str] = (),
        hist_buckets: int = DEFAULT_LOG2_BUCKETS,
    ) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], object] = {}
        self._hist_buckets = hist_buckets

    def labels(self, *values: object):
        """The child for one label-value combination (created on demand)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            cls = _METRIC_TYPES[self.type]
            child = cls(self._hist_buckets) if cls is Histogram else cls()
            self._children[key] = child
        return child

    # -- no-label conveniences ------------------------------------------

    def inc(self, amount: Number = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: Number) -> None:
        self.labels().set(value)

    def observe(self, value: Number) -> None:
        self.labels().observe(value)

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """(label values, child) pairs in sorted label order."""
        return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families.

    Attach to a simulation with :meth:`repro.sim.simulator.Simulation.attach`
    (the uniform observer path shared with trace sinks and profilers):
    the registry wires itself into the machine, its buses and the
    replacement engine, and the simulation kernel fills the end-of-run
    gauges.
    """

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    # -- declaration ----------------------------------------------------

    def _declare(
        self,
        name: str,
        type_: str,
        help_: str,
        labels: Sequence[str],
        hist_buckets: int = DEFAULT_LOG2_BUCKETS,
    ) -> Family:
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if type_ == "counter" and name.endswith(COUNTER_SUFFIX):
            raise ValueError(
                f"{name}: declare counters without the {COUNTER_SUFFIX!r} "
                "suffix; exporters append it"
            )
        for ln in labels:
            if not _NAME.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.type != type_ or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} re-declared with a different "
                    f"type/label set ({existing.type}{existing.label_names} "
                    f"vs {type_}{tuple(labels)})"
                )
            return existing
        fam = Family(name, type_, help_, labels, hist_buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help_: str, labels: Sequence[str] = ()) -> Family:
        return self._declare(name, "counter", help_, labels)

    def gauge(self, name: str, help_: str, labels: Sequence[str] = ()) -> Family:
        return self._declare(name, "gauge", help_, labels)

    def histogram(
        self,
        name: str,
        help_: str,
        labels: Sequence[str] = (),
        n_buckets: int = DEFAULT_LOG2_BUCKETS,
    ) -> Family:
        return self._declare(name, "histogram", help_, labels, n_buckets)

    # -- access ---------------------------------------------------------

    def families(self) -> Iterable[Family]:
        """Families in sorted name order (deterministic exports)."""
        for name in sorted(self._families):
            yield self._families[name]

    def get(self, name: str) -> Optional[Family]:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """A plain-dict view of every family, sorted at every level.

        Counters/gauges serialize to their value; histograms to
        ``{"buckets": {le: cumulative}, "sum": s, "count": n}`` with only
        non-empty buckets included (fixed boundaries make omission
        lossless).  The label key is the values joined with commas.
        """
        out: dict[str, dict] = {}
        for fam in self.families():
            series: dict[str, object] = {}
            for key, child in fam.samples():
                label = ",".join(key)
                if fam.type == "histogram":
                    bounds = child.bucket_bounds()
                    cum = child.cumulative()
                    buckets = {
                        ("+Inf" if b == float("inf") else str(b)): c
                        for b, c, raw in zip(bounds, cum, child.counts)
                        if raw
                    }
                    series[label] = {
                        "buckets": buckets,
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    series[label] = child.value
            out[fam.name] = {
                "type": fam.type,
                "help": fam.help,
                "labels": list(fam.label_names),
                "series": series,
            }
        return out

    # -- observer attach path -------------------------------------------

    def attach_to(self, sim, every: Optional[int] = None) -> None:
        """Wire this registry into a :class:`~repro.sim.simulator.Simulation`.

        Called by ``Simulation.attach(registry)`` — the same uniform path
        trace sinks and profilers use.  ``every`` is accepted for
        interface symmetry and ignored (metrics are not sampled; they are
        incremented at the emission sites).
        """
        sim.machine.set_metrics(self)
        sim.metrics = SimInstruments(self)


# ----------------------------------------------------------------------
# instrument bundles: pre-bound children for the hot layers
# ----------------------------------------------------------------------


class MachineInstruments:
    """Pre-bound machine-level children (``coma_*`` families).

    Built by :meth:`repro.coma.machine.ComaMachine.set_metrics`; the
    machine and replacement engine call the bound methods below, so the
    per-event cost is one attribute load, one ``if`` and one increment.
    """

    __slots__ = ("registry", "latency", "node_hits", "node_misses",
                 "relocations", "relocation_hops", "_events")

    def __init__(self, registry: MetricsRegistry, n_nodes: int) -> None:
        self.registry = registry
        self.latency = registry.histogram(
            "coma_access_latency_ns",
            "end-to-end access latency by operation and satisfying level",
            labels=("op", "level"),
        )
        hits = registry.counter(
            "coma_node_hits", "node-level (AM/overflow/neighbour-SLC) hits",
            labels=("node",),
        )
        misses = registry.counter(
            "coma_node_misses", "node misses (remote data fetches)",
            labels=("node",),
        )
        self.node_hits = [hits.labels(i) for i in range(n_nodes)]
        self.node_misses = [misses.labels(i) for i in range(n_nodes)]
        self.relocations = registry.counter(
            "coma_relocations", "owner-line relocations by outcome",
            labels=("outcome",),
        )
        self.relocation_hops = registry.histogram(
            "coma_relocation_hops", "forced-cascade depth per relocation",
            n_buckets=8,
        )
        self._events = registry.counter(
            "coma_events", "end-of-run machine event counters",
            labels=("event",),
        )

    def access(self, op: str, level: str, latency_ns: int) -> None:
        self.latency.labels(op, level).observe(latency_ns)

    def node_hit(self, node_id: int) -> None:
        self.node_hits[node_id].inc()

    def node_miss(self, node_id: int) -> None:
        self.node_misses[node_id].inc()

    def relocation(self, outcome: str, hops: int) -> None:
        self.relocations.labels(outcome).inc()
        self.relocation_hops.observe(hops)

    def finish(self, machine) -> None:
        """Fold the end-of-run :class:`~repro.stats.counters.Counters`
        into the ``coma_events`` family (one labeled series per counter),
        so exports cover every machine statistic without per-event cost."""
        for name, value in machine.counters.as_dict().items():
            if value:
                self._events.labels(name).inc(value)


class BusInstruments:
    """Pre-bound interconnect children (``bus_*`` families)."""

    __slots__ = ("transactions", "bytes", "busy", "wait", "_name")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._name = name
        self.transactions = registry.counter(
            "bus_transactions", "metered transactions by bus and class",
            labels=("bus", "cls"),
        )
        self.bytes = registry.counter(
            "bus_bytes", "metered traffic bytes by bus and class",
            labels=("bus", "cls"),
        )
        self.busy = registry.counter(
            "bus_busy_ns", "cumulative bus occupancy", labels=("bus",),
        ).labels(name)
        self.wait = registry.histogram(
            "bus_wait_ns", "arbitration wait per bus phase", labels=("bus",),
        ).labels(name)

    def record(self, cls: str, nbytes: int) -> None:
        self.transactions.labels(self._name, cls).inc()
        self.bytes.labels(self._name, cls).inc(nbytes)

    def phase(self, wait_ns: int, busy_ns: int) -> None:
        self.wait.observe(wait_ns)
        self.busy.inc(busy_ns)


class SimInstruments:
    """Pre-bound simulation-kernel children (``sim_*`` families)."""

    __slots__ = ("events", "elapsed", "sync_wait")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.events = registry.gauge(
            "sim_events_processed", "workload events the kernel dispatched")
        self.elapsed = registry.gauge(
            "sim_elapsed_ns", "simulated nanoseconds at completion")
        self.sync_wait = registry.histogram(
            "sim_sync_wait_ns", "time blocked per completed sync wait",
            labels=("primitive",),
        )

    def finish(self, events_processed: int, elapsed_ns: int) -> None:
        self.events.set(events_processed)
        self.elapsed.set(elapsed_ns)


class ExperimentInstruments:
    """Pre-bound experiment-layer children (``experiments_*`` families).

    Unlike the bundles above, the values these record come from the wall
    clock — observed by the unrestricted :mod:`repro.experiments` layer
    (in integer microseconds) and merely stored here.
    """

    __slots__ = ("cache_requests", "run_wall", "worker_wall")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.cache_requests = registry.counter(
            "experiments_cache_requests",
            "run_spec() requests by how the cache satisfied them",
            labels=("outcome",),
        )
        self.run_wall = registry.histogram(
            "experiments_run_wall_us",
            "wall-clock microseconds per simulated (cache-miss) run",
        )
        self.worker_wall = registry.histogram(
            "experiments_worker_wall_us",
            "wall-clock microseconds per parallel sweep task",
        )
