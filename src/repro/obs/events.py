"""The trace-event taxonomy.

Five event types cover everything the paper's mechanisms do:

==============  ========================================================
event           meaning
==============  ========================================================
``access``      one processor memory operation and its outcome: which
                level satisfied it (l1/slc/am/remote) and its latency
``transition``  one protocol state change of one line in one node, with
                the before/after E/O/S/I state and its cause
``bus``         one metered interconnect transaction: kind, traffic
                class, wire bytes, originating node, line (when known)
``replacement`` one step of the accept-based replacement machinery:
                where an evicted owner went (sharer takeover, invalid
                way, shared way, forced cascade hop, overflow park) or
                that an optional allocation was abandoned (uncached)
``sync``        one lock/barrier wait: who stalled, on what, how long
==============  ========================================================

Events are plain frozen dataclasses holding only ints and strings, so a
trace serializes deterministically (same RunSpec + seed ⇒ byte-identical
JSONL).  All times are simulated integer nanoseconds — the wall clock is
never consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

#: ``kind`` tags, also the ``ev`` field of serialized records.
EV_ACCESS = "access"
EV_TRANSITION = "transition"
EV_BUS = "bus"
EV_REPLACEMENT = "replacement"
EV_SYNC = "sync"


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One processor operation (read / write / rmw) and its outcome."""

    t: int        # issue time, simulated ns
    proc: int
    op: str       # "r" | "w" | "rmw"
    line: int
    level: str    # "l1" | "slc" | "am" | "remote"
    latency_ns: int

    kind = EV_ACCESS

    def to_record(self) -> dict:
        return {"ev": EV_ACCESS, "t": self.t, "proc": self.proc,
                "op": self.op, "line": self.line, "level": self.level,
                "lat": self.latency_ns}


@dataclass(frozen=True, slots=True)
class Transition:
    """One E/O/S/I state change of ``line`` in ``node``."""

    t: int
    node: int
    line: int
    cause: str    # "materialize" | "fill" | "remote_read" | "upgrade" |
                  # "read_exclusive" | "invalidate" | "drop" | "inject"
    before: str   # "E" | "O" | "S" | "I"
    after: str

    kind = EV_TRANSITION

    def to_record(self) -> dict:
        return {"ev": EV_TRANSITION, "t": self.t, "node": self.node,
                "line": self.line, "cause": self.cause,
                "before": self.before, "after": self.after}


@dataclass(frozen=True, slots=True)
class BusTx:
    """One metered transaction on one bus (top or group)."""

    t: int
    bus: str      # resource name: "bus", "gbus0", ...
    tx: str       # TxKind name: "READ_DATA", "UPGRADE", ...
    cls: str      # traffic class: "read" | "write" | "replace"
    nbytes: int
    origin: int   # originating node id, -1 when unknown
    line: int     # line involved, -1 when the transaction carries none

    kind = EV_BUS

    def to_record(self) -> dict:
        return {"ev": EV_BUS, "t": self.t, "bus": self.bus, "tx": self.tx,
                "cls": self.cls, "bytes": self.nbytes,
                "origin": self.origin, "line": self.line}


@dataclass(frozen=True, slots=True)
class Replacement:
    """One replacement-machinery outcome for an evicted owner line."""

    t: int
    src: int      # ejecting node
    dst: int      # receiving node, -1 when none (park / uncached)
    line: int
    outcome: str  # "to_slc" | "to_sharer" | "to_invalid" | "to_shared" |
                  # "cascade" | "overflow_park" | "uncached"
    hops: int     # forced-cascade depth (0 for first-level outcomes)

    kind = EV_REPLACEMENT

    def to_record(self) -> dict:
        return {"ev": EV_REPLACEMENT, "t": self.t, "src": self.src,
                "dst": self.dst, "line": self.line,
                "outcome": self.outcome, "hops": self.hops}


@dataclass(frozen=True, slots=True)
class SyncStall:
    """One completed lock/barrier wait."""

    t: int          # wake-up time; the wait covered [t - wait_ns, t]
    proc: int
    primitive: str  # "lock" | "barrier"
    obj: int        # lock/barrier id
    wait_ns: int

    kind = EV_SYNC

    def to_record(self) -> dict:
        return {"ev": EV_SYNC, "t": self.t, "proc": self.proc,
                "primitive": self.primitive, "obj": self.obj,
                "wait": self.wait_ns}


# ----------------------------------------------------------------------
def record_to_event(d: dict):
    """Rebuild a typed event from a serialized record (see ``to_record``)."""
    ev = d["ev"]
    if ev == EV_ACCESS:
        return MemAccess(d["t"], d["proc"], d["op"], d["line"],
                         d["level"], d["lat"])
    if ev == EV_TRANSITION:
        return Transition(d["t"], d["node"], d["line"], d["cause"],
                          d["before"], d["after"])
    if ev == EV_BUS:
        return BusTx(d["t"], d["bus"], d["tx"], d["cls"], d["bytes"],
                     d["origin"], d["line"])
    if ev == EV_REPLACEMENT:
        return Replacement(d["t"], d["src"], d["dst"], d["line"],
                           d["outcome"], d["hops"])
    if ev == EV_SYNC:
        return SyncStall(d["t"], d["proc"], d["primitive"], d["obj"],
                         d["wait"])
    raise ValueError(f"unknown event record kind {ev!r}")


def format_event(ev) -> str:
    """One-line human rendering, used by the flight recorder and explain."""
    k = ev.kind
    if k == EV_ACCESS:
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {ev.op:<3} "
                f"line {ev.line:#x} -> {ev.level} (+{ev.latency_ns} ns)")
    if k == EV_TRANSITION:
        return (f"{ev.t:>12} ns  N{ev.node:<2} line {ev.line:#x} "
                f"{ev.before}->{ev.after} ({ev.cause})")
    if k == EV_BUS:
        who = f"N{ev.origin}" if ev.origin >= 0 else "?"
        what = f" line {ev.line:#x}" if ev.line >= 0 else ""
        return (f"{ev.t:>12} ns  {ev.bus}: {ev.tx} [{ev.cls}] "
                f"{ev.nbytes}B from {who}{what}")
    if k == EV_REPLACEMENT:
        dst = f"N{ev.dst}" if ev.dst >= 0 else "-"
        hops = f" hops={ev.hops}" if ev.hops else ""
        return (f"{ev.t:>12} ns  N{ev.src:<2} reloc line {ev.line:#x} "
                f"{ev.outcome} -> {dst}{hops}")
    if k == EV_SYNC:
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {ev.primitive} {ev.obj} "
                f"waited {ev.wait_ns} ns")
    return repr(ev)  # pragma: no cover - future event kinds
