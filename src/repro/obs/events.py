"""The trace-event taxonomy.

Six event types cover everything the paper's mechanisms do:

==============  ========================================================
event           meaning
==============  ========================================================
``access``      one processor memory operation and its outcome: which
                level satisfied it (l1/slc/am/remote) and its latency
``transition``  one protocol state change of one line in one node, with
                the before/after E/O/S/I state and its cause
``bus``         one metered interconnect transaction: kind, traffic
                class, wire bytes, originating node, line (when known)
``replacement`` one step of the accept-based replacement machinery:
                where an evicted owner went (sharer takeover, invalid
                way, shared way, forced cascade hop, overflow park) or
                that an optional allocation was abandoned (uncached)
``sync``        one lock/barrier wait: who stalled, on what, how long
``syncop``      one synchronization *ordering point*: a lock acquire or
                release, a barrier arrival or departure — the
                happens-before edges race detection is built from
``span``        one node of a causal span tree: the root covers a whole
                memory access, children are its contiguous latency
                phases (L1 probe, bus arbitration, remote AM lookup,
                ...).  Child durations partition the root's duration
                exactly — the conservation invariant the attribution
                layer is built on.  Emitted only for sinks that opt in
                (``wants_spans``)
==============  ========================================================

Events are plain frozen dataclasses holding only ints and strings, so a
trace serializes deterministically (same RunSpec + seed ⇒ byte-identical
JSONL).  All times are simulated integer nanoseconds — the wall clock is
never consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

#: ``kind`` tags, also the ``ev`` field of serialized records.
EV_ACCESS = "access"
EV_TRANSITION = "transition"
EV_BUS = "bus"
EV_REPLACEMENT = "replacement"
EV_SYNC = "sync"
EV_SYNCOP = "syncop"
EV_SPAN = "span"


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One processor operation (read / write / rmw) and its outcome."""

    t: int        # issue time, simulated ns
    proc: int
    op: str       # "r" | "w" | "rmw"
    line: int
    level: str    # "l1" | "slc" | "am" | "remote"
    latency_ns: int
    #: Byte address of the operation, -1 when unknown.  The race detector
    #: needs element granularity: two threads writing different words of
    #: one line is false sharing, not a data race.
    addr: int = -1

    kind = EV_ACCESS

    def to_record(self) -> dict:
        return {"ev": EV_ACCESS, "t": self.t, "proc": self.proc,
                "op": self.op, "line": self.line, "level": self.level,
                "lat": self.latency_ns, "addr": self.addr}


@dataclass(frozen=True, slots=True)
class Transition:
    """One E/O/S/I state change of ``line`` in ``node``."""

    t: int
    node: int
    line: int
    cause: str    # "materialize" | "fill" | "remote_read" | "upgrade" |
                  # "read_exclusive" | "invalidate" | "drop" | "inject"
    before: str   # "E" | "O" | "S" | "I"
    after: str

    kind = EV_TRANSITION

    def to_record(self) -> dict:
        return {"ev": EV_TRANSITION, "t": self.t, "node": self.node,
                "line": self.line, "cause": self.cause,
                "before": self.before, "after": self.after}


@dataclass(frozen=True, slots=True)
class BusTx:
    """One metered transaction on one bus (top or group)."""

    t: int
    bus: str      # resource name: "bus", "gbus0", ...
    tx: str       # TxKind name: "READ_DATA", "UPGRADE", ...
    cls: str      # traffic class: "read" | "write" | "replace"
    nbytes: int
    origin: int   # originating node id, -1 when unknown
    line: int     # line involved, -1 when the transaction carries none

    kind = EV_BUS

    def to_record(self) -> dict:
        return {"ev": EV_BUS, "t": self.t, "bus": self.bus, "tx": self.tx,
                "cls": self.cls, "bytes": self.nbytes,
                "origin": self.origin, "line": self.line}


@dataclass(frozen=True, slots=True)
class Replacement:
    """One replacement-machinery outcome for an evicted owner line."""

    t: int
    src: int      # ejecting node
    dst: int      # receiving node, -1 when none (park / uncached)
    line: int
    outcome: str  # "to_slc" | "to_sharer" | "to_invalid" | "to_shared" |
                  # "cascade" | "overflow_park" | "uncached"
    hops: int     # forced-cascade depth (0 for first-level outcomes)

    kind = EV_REPLACEMENT

    def to_record(self) -> dict:
        return {"ev": EV_REPLACEMENT, "t": self.t, "src": self.src,
                "dst": self.dst, "line": self.line,
                "outcome": self.outcome, "hops": self.hops}


@dataclass(frozen=True, slots=True)
class SyncStall:
    """One completed lock/barrier wait."""

    t: int          # wake-up time; the wait covered [t - wait_ns, t]
    proc: int
    primitive: str  # "lock" | "barrier"
    obj: int        # lock/barrier id
    wait_ns: int

    kind = EV_SYNC

    def to_record(self) -> dict:
        return {"ev": EV_SYNC, "t": self.t, "proc": self.proc,
                "primitive": self.primitive, "obj": self.obj,
                "wait": self.wait_ns}


@dataclass(frozen=True, slots=True)
class SyncOp:
    """One synchronization ordering point.

    ``acquire``/``release`` bracket a lock-protected critical section;
    ``arrive``/``depart`` bracket a barrier episode.  The simulation
    kernel emits these in its processing order, which is a legal total
    order of the synchronization protocol, so a happens-before analysis
    can fold them directly into vector clocks.
    """

    t: int
    proc: int
    op: str         # "acquire" | "release" | "arrive" | "depart"
    primitive: str  # "lock" | "barrier"
    obj: int        # lock/barrier id

    kind = EV_SYNCOP

    def to_record(self) -> dict:
        return {"ev": EV_SYNCOP, "t": self.t, "proc": self.proc,
                "op": self.op, "primitive": self.primitive,
                "obj": self.obj}


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One node of a causal span tree (OpenTelemetry-style ids).

    The root span of an access (``parent_id == 0``, ``name == "access"``)
    covers ``[t, t + dur_ns]`` — exactly the access's latency; its
    children carry the contiguous phases that partition that interval.
    ``trace_id`` groups one access's tree; ``span_id`` is unique per span
    within a builder; both are deterministic sequence numbers, never
    random.  The root additionally counts the owner-line relocations the
    access triggered (``relocs`` — relocations run in the background and
    contribute traffic, not latency, so they are annotated, not timed).
    """

    t: int          # span start, simulated ns
    dur_ns: int
    trace_id: int
    span_id: int
    parent_id: int  # 0 marks the access root
    name: str       # "access" for roots; phase name for children
    proc: int
    line: int
    op: str         # "r" | "w" | "rmw"
    level: str      # level that satisfied the access ("l1".."remote")
    relocs: int = 0

    kind = EV_SPAN

    def to_record(self) -> dict:
        return {"ev": EV_SPAN, "t": self.t, "dur": self.dur_ns,
                "trace": self.trace_id, "span": self.span_id,
                "parent": self.parent_id, "name": self.name,
                "proc": self.proc, "line": self.line, "op": self.op,
                "level": self.level, "relocs": self.relocs}


# ----------------------------------------------------------------------
def record_to_event(d: dict):
    """Rebuild a typed event from a serialized record (see ``to_record``)."""
    ev = d["ev"]
    if ev == EV_ACCESS:
        return MemAccess(d["t"], d["proc"], d["op"], d["line"],
                         d["level"], d["lat"], d.get("addr", -1))
    if ev == EV_TRANSITION:
        return Transition(d["t"], d["node"], d["line"], d["cause"],
                          d["before"], d["after"])
    if ev == EV_BUS:
        return BusTx(d["t"], d["bus"], d["tx"], d["cls"], d["bytes"],
                     d["origin"], d["line"])
    if ev == EV_REPLACEMENT:
        return Replacement(d["t"], d["src"], d["dst"], d["line"],
                           d["outcome"], d["hops"])
    if ev == EV_SYNC:
        return SyncStall(d["t"], d["proc"], d["primitive"], d["obj"],
                         d["wait"])
    if ev == EV_SYNCOP:
        return SyncOp(d["t"], d["proc"], d["op"], d["primitive"], d["obj"])
    if ev == EV_SPAN:
        return SpanEvent(d["t"], d["dur"], d["trace"], d["span"],
                         d["parent"], d["name"], d["proc"], d["line"],
                         d["op"], d["level"], d.get("relocs", 0))
    raise ValueError(f"unknown event record kind {ev!r}")


def format_event(ev) -> str:
    """One-line human rendering, used by the flight recorder and explain."""
    k = ev.kind
    if k == EV_ACCESS:
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {ev.op:<3} "
                f"line {ev.line:#x} -> {ev.level} (+{ev.latency_ns} ns)")
    if k == EV_TRANSITION:
        return (f"{ev.t:>12} ns  N{ev.node:<2} line {ev.line:#x} "
                f"{ev.before}->{ev.after} ({ev.cause})")
    if k == EV_BUS:
        who = f"N{ev.origin}" if ev.origin >= 0 else "?"
        what = f" line {ev.line:#x}" if ev.line >= 0 else ""
        return (f"{ev.t:>12} ns  {ev.bus}: {ev.tx} [{ev.cls}] "
                f"{ev.nbytes}B from {who}{what}")
    if k == EV_REPLACEMENT:
        dst = f"N{ev.dst}" if ev.dst >= 0 else "-"
        hops = f" hops={ev.hops}" if ev.hops else ""
        return (f"{ev.t:>12} ns  N{ev.src:<2} reloc line {ev.line:#x} "
                f"{ev.outcome} -> {dst}{hops}")
    if k == EV_SYNC:
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {ev.primitive} {ev.obj} "
                f"waited {ev.wait_ns} ns")
    if k == EV_SYNCOP:
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {ev.op} "
                f"{ev.primitive} {ev.obj}")
    if k == EV_SPAN:
        role = "access" if ev.parent_id == 0 else f"  .{ev.name}"
        return (f"{ev.t:>12} ns  P{ev.proc:<2} {role} "
                f"[{ev.op}->{ev.level}] line {ev.line:#x} +{ev.dur_ns} ns "
                f"(trace {ev.trace_id})")
    return repr(ev)  # pragma: no cover - future event kinds
