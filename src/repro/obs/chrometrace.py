"""Chrome trace-event exporter (Perfetto / chrome://tracing).

Produces the JSON object format of the Trace Event spec: duration events
(``ph: "X"``) for memory accesses, sync waits and span-tree phases,
instant events (``ph: "i"``) for protocol transitions, bus transactions
and replacement steps, flow events (``ph: "s"``/``"t"``) that draw each
span tree as connected arrows, counter tracks (``ph: "C"``) for the
timeline sampler, and metadata events naming one track per processor,
per node and per bus.  Open the file directly in https://ui.perfetto.dev.

Simulated nanoseconds map to trace microseconds (the spec's unit), so a
148 ns AM access renders as 0.148 µs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.obs.sink import TraceSink

#: Synthetic process ids: one "process" per hardware layer.
PID_PROCESSORS = 1
PID_NODES = 2
PID_BUSES = 3
PID_SPANS = 4
PID_TIMELINE = 5


def _us(t_ns: int) -> float:
    return t_ns / 1000.0


class ChromeTraceSink(TraceSink):
    """Collect trace events in memory; write JSON on :meth:`close`."""

    #: Drawing span trees costs one slice + one flow event per span, so
    #: the machine only builds spans when a sink asks (see
    #: :class:`~repro.obs.sink.TraceSink`).  Off by default to keep the
    #: flat-event export byte-identical to pre-span versions; the CLI's
    #: ``--spans`` flag flips the instance attribute.
    wants_spans = False

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.trace_events: list[dict] = []
        self.count = 0
        self._bus_tids: dict[str, int] = {}
        self._seen_tids: set[tuple[int, int]] = set()
        self._span_pid_named = False

    # -- typed entry points --------------------------------------------

    def access(self, t, proc, op, line, level, latency_ns,
               addr: int = -1) -> None:
        self._add({
            "ph": "X", "pid": PID_PROCESSORS, "tid": proc,
            "ts": _us(t), "dur": _us(latency_ns),
            "name": f"{op} {level}", "cat": "access",
            "args": {"line": hex(line), "level": level, "lat_ns": latency_ns},
        })
        self._name_thread(PID_PROCESSORS, proc, f"P{proc}")

    def transition(self, t, node, line, cause, before, after) -> None:
        self._add({
            "ph": "i", "s": "t", "pid": PID_NODES, "tid": node,
            "ts": _us(t), "name": f"{before}->{after} {cause}",
            "cat": "protocol",
            "args": {"line": hex(line), "cause": cause,
                     "before": before, "after": after},
        })
        self._name_thread(PID_NODES, node, f"node {node}")

    def bus(self, t, bus, tx, cls, nbytes, origin, line) -> None:
        tid = self._bus_tids.setdefault(bus, len(self._bus_tids))
        args = {"class": cls, "bytes": nbytes, "origin": origin}
        if line >= 0:
            args["line"] = hex(line)
        self._add({
            "ph": "i", "s": "t", "pid": PID_BUSES, "tid": tid,
            "ts": _us(t), "name": tx, "cat": "bus", "args": args,
        })
        self._name_thread(PID_BUSES, tid, bus)

    def replacement(self, t, src, dst, line, outcome, hops) -> None:
        self._add({
            "ph": "i", "s": "t", "pid": PID_NODES, "tid": src,
            "ts": _us(t), "name": f"reloc {outcome}", "cat": "replacement",
            "args": {"line": hex(line), "dst": dst, "hops": hops},
        })
        self._name_thread(PID_NODES, src, f"node {src}")

    def sync(self, t, proc, primitive, obj, wait_ns) -> None:
        self._add({
            "ph": "X", "pid": PID_PROCESSORS, "tid": proc,
            "ts": _us(t - wait_ns), "dur": _us(wait_ns),
            "name": f"{primitive} {obj} wait", "cat": "sync",
            "args": {"obj": obj, "wait_ns": wait_ns},
        })
        self._name_thread(PID_PROCESSORS, proc, f"P{proc}")

    def span(self, t, dur_ns, trace_id, span_id, parent_id, name,
             proc, line, op, level, relocs: int = 0) -> None:
        root = parent_id == 0
        args = {"trace": trace_id, "span": span_id, "parent": parent_id,
                "line": hex(line), "dur_ns": dur_ns}
        if relocs:
            args["relocs"] = relocs
        self._add({
            "ph": "X", "pid": PID_SPANS, "tid": proc,
            "ts": _us(t), "dur": _us(dur_ns),
            "name": f"{op} -> {level}" if root else name,
            "cat": "span", "args": args,
        })
        # Flow arrows stitch the tree: the root starts flow ``trace_id``,
        # each phase is a step, so Perfetto draws root -> phase arrows.
        self._add({
            "ph": "s" if root else "t", "pid": PID_SPANS, "tid": proc,
            "ts": _us(t), "id": trace_id, "name": "access-flow",
            "cat": "span",
        })
        self._name_thread(PID_SPANS, proc, f"P{proc} spans")
        if not self._span_pid_named:
            self._span_pid_named = True
            self.trace_events.append({
                "ph": "M", "pid": PID_SPANS, "tid": 0,
                "name": "process_name", "args": {"name": "spans"},
            })

    # -- plumbing -------------------------------------------------------

    def emit(self, ev) -> None:
        """Route a pre-built event object through the typed methods."""
        kind = ev.kind
        if kind == "access":
            self.access(ev.t, ev.proc, ev.op, ev.line, ev.level,
                        ev.latency_ns, ev.addr)
        elif kind == "transition":
            self.transition(ev.t, ev.node, ev.line, ev.cause,
                            ev.before, ev.after)
        elif kind == "bus":
            self.bus(ev.t, ev.bus, ev.tx, ev.cls, ev.nbytes,
                     ev.origin, ev.line)
        elif kind == "replacement":
            self.replacement(ev.t, ev.src, ev.dst, ev.line,
                             ev.outcome, ev.hops)
        elif kind == "sync":
            self.sync(ev.t, ev.proc, ev.primitive, ev.obj, ev.wait_ns)
        elif kind == "span":
            self.span(ev.t, ev.dur_ns, ev.trace_id, ev.span_id,
                      ev.parent_id, ev.name, ev.proc, ev.line, ev.op,
                      ev.level, ev.relocs)

    def _add(self, d: dict) -> None:
        self.trace_events.append(d)
        self.count += 1

    def _name_thread(self, pid: int, tid: int, name: str) -> None:
        if (pid, tid) in self._seen_tids:
            return
        self._seen_tids.add((pid, tid))
        self.trace_events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        })

    def _metadata(self) -> list[dict]:
        return [
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": name}}
            for pid, name in ((PID_PROCESSORS, "processors"),
                              (PID_NODES, "nodes"),
                              (PID_BUSES, "interconnect"))
        ]

    def to_json(self) -> str:
        obj = {
            "displayTimeUnit": "ns",
            "traceEvents": self._metadata() + self.trace_events,
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    def close(self) -> None:
        if self.path is not None:
            self.path.write_text(self.to_json() + "\n")


def validate_trace_events(obj: dict) -> list[str]:
    """Check an exported object against the trace-event JSON shape.

    Returns a list of problems (empty = valid).  Used by the test suite
    and cheap enough for CI smoke checks.
    """
    problems = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in e:
                problems.append(f"event {i}: missing required key {key!r}")
        ph = e.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C", "s", "t", "f"):
            problems.append(f"event {i}: unexpected phase {ph!r}")
        if ph in ("X", "i", "C", "s", "t", "f") and "ts" not in e:
            problems.append(f"event {i}: {ph!r} event needs 'ts'")
        if ph == "X" and "dur" not in e:
            problems.append(f"event {i}: duration event needs 'dur'")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            problems.append(f"event {i}: instant event needs scope 's'")
        if ph in ("s", "t", "f") and "id" not in e:
            problems.append(f"event {i}: flow event needs 'id'")
    return problems
