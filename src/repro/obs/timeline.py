"""Metric timelines over *simulated* time.

The metrics registry (PR 5) aggregates whole-run totals; the figures in
the paper, though, hinge on *when* the cycles go — transpose bursts,
permutation storms, the widening bus queues as memory pressure rises.
:class:`TimelineSampler` closes that gap: it rides the simulation
kernel's profiler hook (``Simulation.attach(sampler)`` or the
``profiler=``/``profile_every=`` constructor arguments) and snapshots
machine state into a **columnar series** keyed by simulated time —
cheap, mergeable, and exportable three ways:

* :meth:`TimelineSampler.to_json` — the columnar series plus derived
  per-window rates (bus utilization, miss rate, bandwidth);
* Perfetto counter tracks (:meth:`TimelineSampler.perfetto_events`) that
  drop into the existing Chrome trace next to the span flows;
* through ``coma-sim attribute``/``coma-sim trace --timeline`` on the
  CLI.

:class:`CompositeProfiler` lives here canonically (it predates this
module in ``repro.stats.timeline``, which now re-exports it): it is the
fan-out point ``Simulation.attach`` uses to merge profilers, so the
sampler and the legacy traffic profilers compose freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.coma.machine import ComaMachine
    from repro.obs.metrics import MetricsRegistry


class CompositeProfiler:
    """Fan a simulation's profiler hook out to several profilers."""

    def __init__(self, profilers: Sequence) -> None:
        self.profilers = list(profilers)

    def sample(self, machine) -> None:
        for p in self.profilers:
            p.sample(machine)


def traffic_by_class(machine) -> dict[str, int]:
    """Cumulative top-bus bytes keyed by traffic class name."""
    return {k.value: v for k, v in machine.bus.tx_bytes.items()}


class TimelineSampler:
    """Columnar snapshots of machine/registry state over simulated time.

    Each accepted sample appends one value to every column, so the series
    stays rectangular; ``interval_ns`` thins the event-count cadence of
    the profiler hook down to a simulated-time cadence (0 keeps every
    hook call).  Probed machine columns:

    ``bus_busy_ns``      cumulative top-bus occupancy
    ``bus_bytes``        cumulative top-bus traffic
    ``accesses``         reads + writes + atomics issued
    ``node_misses``      node-level read + write misses
    ``am_lines``         lines resident across all attraction memories
    ``am_occupancy``     the same as a fraction of total AM capacity
    ``overflow_lines``   lines parked in victim overflow buffers

    With a ``registry``, every counter/gauge family child becomes an
    extra column (``<family>{<labels>}``; histograms contribute their
    ``_count``), which is what "snapshot the metrics registry over
    simulated time" means operationally.
    """

    def __init__(self, interval_ns: int = 0,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        self.interval_ns = interval_ns
        self.registry = registry
        self.t: list[int] = []
        self.cols: dict[str, list] = {}

    # -- sampling -------------------------------------------------------

    def sample(self, machine: "ComaMachine") -> None:
        now = machine.now
        if self.t:
            if now <= self.t[-1]:
                return  # event-count hooks can revisit a wakeup time
            if self.interval_ns and now - self.t[-1] < self.interval_ns:
                return
        row = self._probe(machine)
        if self.registry is not None:
            self._probe_registry(row)
        self.t.append(now)
        cols = self.cols
        for name, value in row.items():
            col = cols.get(name)
            if col is None:
                # Late-appearing column (registry child created after the
                # first sample): backfill zeros to keep the series square.
                col = cols[name] = [0] * (len(self.t) - 1)
            col.append(value)
        for name, col in cols.items():
            if len(col) < len(self.t):
                col.append(0)

    def _probe(self, machine) -> dict:
        c = machine.counters
        bus = machine.bus
        row = {
            "bus_busy_ns": bus.resource.busy_ns,
            "bus_bytes": bus.total_bytes,
            "accesses": c.reads + c.writes + c.atomics,
            "node_misses": c.node_read_misses + c.node_write_misses,
        }
        nodes = getattr(machine, "nodes", None)
        if nodes:
            lines = sum(n.am.occupancy for n in nodes)
            capacity = sum(n.am.num_sets * n.am.assoc for n in nodes)
            row["am_lines"] = lines
            row["am_occupancy"] = round(lines / capacity, 6) if capacity else 0.0
            row["overflow_lines"] = sum(len(n.overflow) for n in nodes)
        return row

    def _probe_registry(self, row: dict) -> None:
        for fam in self.registry.families():
            for key, child in fam.samples():
                label = ",".join(key)
                name = f"{fam.name}{{{label}}}" if label else fam.name
                if fam.type == "histogram":
                    row[name + "_count"] = child.count
                else:
                    row[name] = child.value

    # -- derived series -------------------------------------------------

    def series(self) -> list[dict]:
        """Per-window rates between adjacent samples.

        Cumulative columns difference into rates: bus utilization is
        Δbusy/Δt, miss rate is Δmisses/Δaccesses, bandwidth is
        Δbytes/Δt.  Instantaneous columns (AM occupancy) report the
        window-end value.
        """
        out = []
        t, cols = self.t, self.cols
        for i in range(1, len(t)):
            dt = t[i] - t[i - 1]
            d_acc = cols["accesses"][i] - cols["accesses"][i - 1]
            d_miss = cols["node_misses"][i] - cols["node_misses"][i - 1]
            win = {
                "start_ns": t[i - 1],
                "end_ns": t[i],
                "bus_utilization": round(
                    (cols["bus_busy_ns"][i] - cols["bus_busy_ns"][i - 1]) / dt, 6
                ),
                "bandwidth_bytes_per_us": round(
                    1000.0 * (cols["bus_bytes"][i] - cols["bus_bytes"][i - 1]) / dt, 3
                ),
                "miss_rate": round(d_miss / d_acc, 6) if d_acc else 0.0,
            }
            if "am_occupancy" in cols:
                win["am_occupancy"] = cols["am_occupancy"][i]
            out.append(win)
        return out

    # -- exports --------------------------------------------------------

    def to_json(self) -> dict:
        """The full timeline as a JSON-ready dict (columnar + windows)."""
        return {
            "interval_ns": self.interval_ns,
            "samples": len(self.t),
            "t_ns": list(self.t),
            "columns": {k: list(v) for k, v in sorted(self.cols.items())},
            "series": self.series(),
        }

    def perfetto_events(self) -> list[dict]:
        """Chrome trace-event counter tracks (``ph: "C"``).

        Rate columns render per window (utilization/miss-rate as derived
        above); occupancy renders per sample.  Append the result to a
        :class:`~repro.obs.chrometrace.ChromeTraceSink`'s events (the
        CLI's ``--timeline`` flag does) and Perfetto draws the counters
        under the span/flow tracks.
        """
        from repro.obs.chrometrace import PID_TIMELINE, _us

        events = [{
            "ph": "M", "pid": PID_TIMELINE, "tid": 0,
            "name": "process_name", "args": {"name": "timeline"},
        }]
        for win in self.series():
            ts = _us(win["start_ns"])
            for key in ("bus_utilization", "miss_rate",
                        "bandwidth_bytes_per_us"):
                events.append({
                    "ph": "C", "pid": PID_TIMELINE, "tid": 0, "ts": ts,
                    "name": key, "args": {"value": win[key]},
                })
        if "am_occupancy" in self.cols:
            for t, v in zip(self.t, self.cols["am_occupancy"]):
                events.append({
                    "ph": "C", "pid": PID_TIMELINE, "tid": 0, "ts": _us(t),
                    "name": "am_occupancy", "args": {"value": v},
                })
        return events


def format_timeline_series(sampler: TimelineSampler, width: int = 40) -> str:
    """ASCII strip chart of bus utilization over simulated time."""
    series = sampler.series()
    if not series:
        return "timeline: fewer than two samples"
    out = ["bus utilization over simulated time "
           "(one row per sample window):"]
    for win in series:
        n = int(round(width * min(win["bus_utilization"], 1.0)))
        extra = (f"  occ={win['am_occupancy']:.3f}"
                 if "am_occupancy" in win else "")
        out.append(
            f"  {win['start_ns'] / 1e6:8.3f}-{win['end_ns'] / 1e6:8.3f} ms "
            f"util={win['bus_utilization']:5.3f} "
            f"miss={win['miss_rate']:5.3f}{extra} |{'#' * n}"
        )
    return "\n".join(out)
