"""Differential attribution between archived runs (``coma-sim diff``).

Given two rows from the :class:`~repro.obs.history.HistoryArchive`, the
differ answers the question single-run observability cannot: *what
changed between these two runs, and which protocol phase is
responsible?*  It computes structured deltas —

* **counters** as ratios with a noise threshold (sub-threshold changes
  are reported but flagged insignificant);
* **phase attribution**: per-phase simulated-nanosecond deltas from the
  archived span/phase totals, with each phase's share of the total
  phase-time swing — the top line names the phase (``bus_arb``,
  ``remote_am``, ``fill_dram``, …) that contributes most of a latency
  regression, the MemPool-style decomposition the archive exists for;
* **latency histograms**: per-(op, level) mean shifts from the PR 7
  log2-bucket snapshots;
* **witnesses**: retained span trees from the slower side, so the top
  attribution line is backed by concrete exemplar accesses.

``diff_sweeps`` pairs whole recorded batches point-by-point (by the
spec identity that survives a timing-constant perturbation) and rolls
the per-pair diffs up into one report.

Deterministic-core module: pure arithmetic over archived rows, no wall
clock, no randomness.
"""

from __future__ import annotations

from typing import Optional

#: Relative change below which a counter delta is reported as noise.
DEFAULT_NOISE_PCT = 1.0

#: Spec fields that identify "the same experimental point" across two
#: batches even when a timing constant was deliberately perturbed.
_PAIR_FIELDS = (
    "workload", "machine", "memory_pressure", "procs_per_node",
    "n_processors", "scale", "seed", "am_assoc", "page_size",
)


def _change_pct(a: float, b: float) -> float:
    if a == 0:
        return 0.0 if b == 0 else float("inf")
    return (b - a) / a * 100.0


def _counter_rows(a: dict, b: dict, noise_pct: float) -> list[dict]:
    rows = []
    for name in sorted(set(a) | set(b)):
        av, bv = a.get(name, 0), b.get(name, 0)
        if av == 0 and bv == 0:
            continue
        change = _change_pct(av, bv)
        rows.append({
            "counter": name,
            "a": av,
            "b": bv,
            "ratio": (bv / av) if av else None,
            "change_pct": change,
            "significant": abs(change) > noise_pct,
        })
    rows.sort(key=lambda r: (-abs(r["change_pct"]), r["counter"]))
    return rows


def _phase_rows(a: Optional[dict], b: Optional[dict]) -> list[dict]:
    a, b = a or {}, b or {}
    rows = []
    deltas = {
        name: b.get(name, 0) - a.get(name, 0)
        for name in set(a) | set(b)
    }
    swing = sum(abs(d) for d in deltas.values())
    for name in sorted(deltas, key=lambda n: (-abs(deltas[n]), n)):
        d = deltas[name]
        rows.append({
            "phase": name,
            "a_ns": a.get(name, 0),
            "b_ns": b.get(name, 0),
            "delta_ns": d,
            "share_pct": abs(d) / swing * 100.0 if swing else 0.0,
        })
    return rows


def _histogram_rows(a: Optional[dict], b: Optional[dict]) -> list[dict]:
    """Per-(op, level) mean-latency shifts from two
    ``span_access_latency_ns`` registry snapshots."""
    fam = "span_access_latency_ns"
    a_samples = (a or {}).get(fam, {}).get("series", {})
    b_samples = (b or {}).get(fam, {}).get("series", {})
    rows = []
    for label in sorted(set(a_samples) | set(b_samples)):
        sa, sb = a_samples.get(label), b_samples.get(label)

        def mean(s):
            return s["sum"] / s["count"] if s and s.get("count") else 0.0

        ma, mb = mean(sa), mean(sb)
        if ma == 0 and mb == 0:
            continue
        rows.append({
            "class": label,
            "a_mean_ns": ma,
            "b_mean_ns": mb,
            "a_count": sa["count"] if sa else 0,
            "b_count": sb["count"] if sb else 0,
            "change_pct": _change_pct(ma, mb),
        })
    rows.sort(key=lambda r: (-abs(r["change_pct"]), r["class"]))
    return rows


def _side(row: dict) -> dict:
    return {
        "key": row["key"],
        "rev": row.get("rev", 0),
        "workload": row.get("workload"),
        "machine": row.get("machine"),
        "memory_pressure": row.get("memory_pressure"),
        "elapsed_ns": row["result"]["elapsed_ns"],
        "git_rev": row.get("git_rev"),
        "recorded_at": row.get("recorded_at"),
    }


def diff_runs(a: dict, b: dict,
              noise_pct: float = DEFAULT_NOISE_PCT) -> dict:
    """Structured delta between two archive rows (A = before, B = after).

    ``top_attribution`` names the phase with the largest delta in the
    direction of the elapsed-time change (the phase *responsible* for a
    regression), with its share of the total phase-time swing.
    """
    ra, rb = a["result"], b["result"]
    ea, eb = ra["elapsed_ns"], rb["elapsed_ns"]
    phases = _phase_rows(a.get("phases"), b.get("phases"))
    regressed = eb >= ea
    candidates = [
        p for p in phases
        if (p["delta_ns"] > 0) == regressed and p["delta_ns"] != 0
    ]
    top = candidates[0] if candidates else (phases[0] if phases else None)
    witnesses = (b if regressed else a).get("top_spans") or []
    out = {
        "a": _side(a),
        "b": _side(b),
        "elapsed": {
            "a_ns": ea,
            "b_ns": eb,
            "delta_ns": eb - ea,
            "change_pct": _change_pct(ea, eb),
        },
        "noise_pct": noise_pct,
        "counters": _counter_rows(
            ra.get("counters", {}), rb.get("counters", {}), noise_pct),
        "phases": phases,
        "top_attribution": top,
        "histograms": _histogram_rows(
            a.get("histograms"), b.get("histograms")),
        "witnesses": witnesses[:3],
        "witness_side": "b" if regressed else "a",
    }
    return out


def pair_key(spec: dict) -> tuple:
    """The identity under which two batches' points are paired."""
    return tuple(spec.get(f) for f in _PAIR_FIELDS)


def diff_sweeps(rows_a: list[dict], rows_b: list[dict],
                noise_pct: float = DEFAULT_NOISE_PCT) -> dict:
    """Pair two recorded batches point-by-point and diff each pair.

    Points pair on the spec identity that survives a timing-constant
    perturbation (workload, machine, pressure, clustering, scale, seed);
    unpaired points on either side are reported, never dropped silently.
    """
    index_b = {}
    for row in rows_b:
        index_b.setdefault(pair_key(row["spec"]), []).append(row)
    pairs, only_a = [], []
    for row in rows_a:
        bucket = index_b.get(pair_key(row["spec"]))
        if bucket:
            pairs.append((row, bucket.pop(0)))
        else:
            only_a.append(row["key"])
    only_b = [r["key"] for bucket in index_b.values() for r in bucket]
    diffs = [diff_runs(a, b, noise_pct) for a, b in pairs]
    slowest = max(
        diffs, key=lambda d: d["elapsed"]["delta_ns"], default=None)
    return {
        "pairs": len(diffs),
        "unpaired_a": only_a,
        "unpaired_b": only_b,
        "diffs": diffs,
        "worst_regression": slowest,
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def format_diff(diff: dict, max_counters: int = 12) -> str:
    """Human rendering of :func:`diff_runs` — the top attribution line
    leads, witnesses close."""
    a, b, e = diff["a"], diff["b"], diff["elapsed"]
    out = [
        f"diff {a['key']} (A) -> {b['key']} (B)  "
        f"[{a['workload']} on {a['machine']}]",
        f"  elapsed: {e['a_ns']} -> {e['b_ns']} ns "
        f"({e['change_pct']:+.2f}%)",
    ]
    top = diff.get("top_attribution")
    if top is not None:
        out.append(
            f"  top attribution: {top['phase']} {top['delta_ns']:+d} ns "
            f"({top['share_pct']:.1f}% of the phase-time swing)"
        )
    else:
        out.append("  top attribution: (no phase data archived; "
                   "record with attribution enabled)")
    phases = [p for p in diff["phases"] if p["delta_ns"] != 0]
    if phases:
        out.append("  phases (delta ns, share of swing):")
        for p in phases[:10]:
            out.append(
                f"    {p['phase']:<12} {p['a_ns']:>12} -> {p['b_ns']:>12}  "
                f"{p['delta_ns']:>+12} ns  {p['share_pct']:5.1f}%"
            )
    sig = [c for c in diff["counters"] if c["significant"]]
    if sig:
        out.append(
            f"  counters (>{diff['noise_pct']:g}% change, "
            f"{len(sig)} significant of {len(diff['counters'])}):")
        for c in sig[:max_counters]:
            out.append(
                f"    {c['counter']:<28} {c['a']:>12} -> {c['b']:>12}  "
                f"{c['change_pct']:>+8.1f}%"
            )
    hists = diff.get("histograms", [])
    if hists:
        out.append("  latency histogram means by (op, level):")
        for h in hists[:8]:
            cls = ",".join(h["class"]) if isinstance(
                h["class"], (list, tuple)) else h["class"]
            out.append(
                f"    {cls:<16} {h['a_mean_ns']:>10.1f} -> "
                f"{h['b_mean_ns']:>10.1f} ns  {h['change_pct']:>+8.1f}%  "
                f"(n={h['a_count']}->{h['b_count']})"
            )
    if diff.get("witnesses"):
        side = diff.get("witness_side", "b")
        out.append(f"  witnesses (slowest spans of the {side.upper()} side):")
        for tree in diff["witnesses"]:
            root = tree[0] if tree else {}
            out.append(
                f"    trace {root.get('trace')}: P{root.get('proc')} "
                f"{root.get('op')} -> {root.get('level')}  "
                f"+{root.get('dur')} ns"
            )
            for child in tree[1:6]:
                out.append(
                    f"      {child.get('name', ''):<12} "
                    f"+{child.get('dur')} ns"
                )
    return "\n".join(out)


def format_sweep_diff(report: dict) -> str:
    """Human rendering of :func:`diff_sweeps`."""
    out = [f"sweep diff: {report['pairs']} paired point(s)"]
    if report["unpaired_a"]:
        out.append(f"  only in A: {', '.join(report['unpaired_a'])}")
    if report["unpaired_b"]:
        out.append(f"  only in B: {', '.join(report['unpaired_b'])}")
    for d in report["diffs"]:
        e = d["elapsed"]
        top = d.get("top_attribution")
        top_txt = (f"{top['phase']} {top['delta_ns']:+d} ns"
                   if top else "(no phase data)")
        out.append(
            f"  {d['a']['key']} -> {d['b']['key']}  "
            f"{d['a']['workload']:<14} elapsed {e['change_pct']:+7.2f}%  "
            f"top: {top_txt}"
        )
    worst = report.get("worst_regression")
    if worst is not None:
        out.append("worst regression in detail:")
        out.append(format_diff(worst))
    return "\n".join(out)
