"""Causal span trees and simulated-time latency attribution.

The paper's core results are latency *decompositions*: execution time
split into busy / read-stall / write-stall / sync components, and the
remote-access cost split across bus arbitration, AM lookup and
inter-cluster transfer.  This module makes every simulated cycle of an
access attributable:

* :class:`SpanBuilder` — held by the machine (``machine.spans``, None by
  default, installed by ``set_trace`` only when the sink sets
  ``wants_spans``).  The instrumented hot paths mark *checkpoints* —
  monotone completion times along one access — and the builder turns
  consecutive checkpoints into child spans.  Because children are
  differences of a monotone cut sequence over ``[issue, completion]``,
  their durations sum to the access latency **by construction**: the
  conservation invariant costs nothing to maintain and is enforced by
  the test suite on every machine flavour.
* :class:`StallAttribution` — a :class:`~repro.obs.sink.TraceSink` that
  aggregates span trees into the paper-style breakdown per processor,
  per line and per workload phase (barrier episodes delimit phases),
  keeps log2 latency histograms per access class, and retains the full
  span trees of the N slowest accesses as tail exemplars.

Span ids are deterministic sequence numbers (same RunSpec + seed ⇒
byte-identical span streams); all times are simulated nanoseconds.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.obs.events import EV_SPAN, EV_SYNC, EV_SYNCOP, SpanEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import TraceSink


class SpanBuilder:
    """Per-machine recorder of one in-flight access's phase checkpoints.

    The machine's access entry points are strictly sequential (the event
    loop never interleaves two accesses of one machine), so a single
    mutable builder per machine suffices.  Lists are reused across
    accesses — the per-access cost is appends plus one emission pass.
    """

    __slots__ = ("sink", "_next_trace", "_next_span", "_open",
                 "t0", "cursor", "proc", "op", "line", "addr", "relocs",
                 "_names", "_starts", "_ends")

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self._next_trace = 0
        self._next_span = 0
        self._open = False
        self.t0 = 0
        self.cursor = 0
        self.proc = -1
        self.op = ""
        self.line = -1
        self.addr = -1
        self.relocs = 0
        self._names: list[str] = []
        self._starts: list[int] = []
        self._ends: list[int] = []

    # -- recording API (called from @hotpath code, spans enabled only) --

    def begin(self, t: int, proc: int, op: str, line: int,
              addr: int = -1) -> None:
        """Open the root span of one access issued at ``t``."""
        self._open = True
        self.t0 = t
        self.cursor = t
        self.proc = proc
        self.op = op
        self.line = line
        self.addr = addr
        self.relocs = 0
        self._names.clear()
        self._starts.clear()
        self._ends.clear()

    def phase(self, name: str, t: int) -> None:
        """Close the current phase at completion time ``t``.

        Checkpoints must be non-decreasing; a checkpoint at (or before)
        the cursor contributes a zero-duration phase and is skipped, so
        uncontended steps never clutter the tree.
        """
        if not self._open or t <= self.cursor:
            return
        self._names.append(name)
        self._starts.append(self.cursor)
        self._ends.append(t)
        self.cursor = t

    def note_relocation(self) -> None:
        """Count one background owner-line relocation triggered by the
        open access (traffic, not latency — annotated on the root)."""
        if self._open:
            self.relocs += 1

    def end(self, t: int, level: str) -> None:
        """Complete the access at ``t``; the un-annotated remainder
        ``[cursor, t]`` becomes a tail phase named after ``level``."""
        if not self._open:
            return
        if t > self.cursor:
            self._names.append(level)
            self._starts.append(self.cursor)
            self._ends.append(t)
        self._open = False
        self._next_trace += 1
        trace_id = self._next_trace
        self._next_span += 1
        root_id = self._next_span
        sink = self.sink
        sink.span(self.t0, t - self.t0, trace_id, root_id, 0, "access",
                  self.proc, self.line, self.op, level, self.relocs)
        names, starts, ends = self._names, self._starts, self._ends
        for i in range(len(names)):
            self._next_span += 1
            sink.span(starts[i], ends[i] - starts[i], trace_id,
                      self._next_span, root_id, names[i], self.proc,
                      self.line, self.op, level)

    # -- failure introspection ------------------------------------------

    @property
    def open(self) -> bool:
        return self._open

    def open_stack_text(self) -> str:
        """Render the in-flight span stack (empty string when idle).

        Folded into ``exc.flight_dump`` by the simulation kernel so a
        crash dump shows *where in an access* the run died.
        """
        if not self._open:
            return ""
        out = [
            "=== open span stack ===",
            f"P{self.proc} {self.op} line {self.line:#x} "
            f"issued at {self.t0} ns",
        ]
        for name, s, e in zip(self._names, self._starts, self._ends):
            out.append(f"  {name:<12} {s}..{e} (+{e - s} ns)")
        out.append(f"  (in flight since {self.cursor} ns, "
                   f"{self.relocs} relocation(s) so far)")
        return "\n".join(out)


class SpanTreeAssembler:
    """Regroup a flat span-event stream back into (root, children) trees.

    :meth:`SpanBuilder.end` emits each access's root (parent_id 0)
    immediately followed by its children, and the machine's access entry
    points are strictly sequential — so a new root closes the previous
    tree.  Consumers that need whole trees (the bounds certifier, tree
    renderers) feed span events to :meth:`add` and get one callback per
    completed access; call :meth:`flush` after the run to deliver the
    trailing tree.
    """

    __slots__ = ("_on_tree", "_root", "_children")

    def __init__(self, on_tree) -> None:
        self._on_tree = on_tree
        self._root: Optional[SpanEvent] = None
        self._children: list[SpanEvent] = []

    def add(self, ev: SpanEvent) -> None:
        if ev.parent_id == 0:
            self.flush()
            self._root = ev
        elif self._root is not None and ev.trace_id == self._root.trace_id:
            self._children.append(ev)

    def flush(self) -> None:
        if self._root is not None:
            self._on_tree(self._root, self._children)
            self._root = None
            self._children = []


# ----------------------------------------------------------------------
# attribution aggregator
# ----------------------------------------------------------------------

#: Number of slowest accesses whose full span trees are retained.
DEFAULT_TOP_SPANS = 10


class StallAttribution(TraceSink):
    """Aggregate span trees into paper-style latency attributions.

    Consumes ``span`` events (per-phase cycle sums by processor, line
    and workload phase), ``sync`` events (blocked time per processor)
    and barrier ``syncop`` events (workload-phase boundaries).  The
    report's per-phase sums conserve cycles: for every processor and
    operation class, the phase sums equal the root-span sums exactly.
    """

    wants_spans = True

    def __init__(self, top_spans: int = DEFAULT_TOP_SPANS) -> None:
        self.top_spans = top_spans
        #: proc -> op -> phase name -> ns (children of the span trees).
        self.phase_ns: dict[int, dict[str, dict[str, int]]] = {}
        #: proc -> op -> ns (root durations; the conservation partner).
        self.root_ns: dict[int, dict[str, int]] = {}
        #: line -> ns of access latency spent on it (root durations).
        self.line_ns: dict[int, int] = {}
        #: workload phase index -> op -> ns.  Phase k of a processor is
        #: the number of barrier arrivals it has performed.
        self.wphase_ns: dict[int, dict[str, int]] = {}
        self._wphase: dict[int, int] = {}
        #: proc -> blocked ns (lock/barrier waits from sync events).
        self.sync_ns: dict[int, int] = {}
        #: proc -> background relocations triggered by its accesses.
        self.reloc_count: dict[int, int] = {}
        self.accesses = 0
        #: Latency histograms per access class, in a private registry so
        #: the OpenMetrics exporter renders them directly.
        self.registry = MetricsRegistry()
        self._latency = self.registry.histogram(
            "span_access_latency_ns",
            "access latency from span roots by operation and level",
            labels=("op", "level"),
        )
        #: Slowest access per class: (op, level) -> (dur, trace_id).
        self._class_max: dict[tuple[str, str], tuple[int, int]] = {}
        #: Min-heap of (dur, trace_id) for the N slowest accesses.
        self._slowest: list[tuple[int, int]] = []
        #: trace_id -> [root, child, ...] for retained exemplar trees.
        self._trees: dict[int, list[SpanEvent]] = {}

    # -- event intake ---------------------------------------------------

    def emit(self, ev) -> None:
        kind = ev.kind
        if kind == EV_SPAN:
            self._span(ev)
        elif kind == EV_SYNC:
            self.sync_ns[ev.proc] = self.sync_ns.get(ev.proc, 0) + ev.wait_ns
        elif kind == EV_SYNCOP:
            if ev.op == "arrive":
                self._wphase[ev.proc] = self._wphase.get(ev.proc, 0) + 1

    def _span(self, ev: SpanEvent) -> None:
        proc, op, dur = ev.proc, ev.op, ev.dur_ns
        if ev.parent_id == 0:
            self.accesses += 1
            by_op = self.root_ns.setdefault(proc, {})
            by_op[op] = by_op.get(op, 0) + dur
            self.line_ns[ev.line] = self.line_ns.get(ev.line, 0) + dur
            wp = self._wphase.get(proc, 0)
            by_wp = self.wphase_ns.setdefault(wp, {})
            by_wp[op] = by_wp.get(op, 0) + dur
            if ev.relocs:
                self.reloc_count[proc] = (
                    self.reloc_count.get(proc, 0) + ev.relocs
                )
            self._latency.labels(op, ev.level).observe(dur)
            cls = (op, ev.level)
            best = self._class_max.get(cls)
            if best is None or dur > best[0]:
                self._class_max[cls] = (dur, ev.trace_id)
            self._keep_tail(ev)
        else:
            phases = self.phase_ns.setdefault(proc, {}).setdefault(op, {})
            phases[ev.name] = phases.get(ev.name, 0) + dur
            if ev.trace_id in self._trees:
                self._trees[ev.trace_id].append(ev)

    def _keep_tail(self, root: SpanEvent) -> None:
        if self.top_spans <= 0:
            return
        entry = (root.dur_ns, root.trace_id)
        if len(self._slowest) < self.top_spans:
            heapq.heappush(self._slowest, entry)
            self._trees[root.trace_id] = [root]
        elif entry > self._slowest[0]:
            _, evicted = heapq.heapreplace(self._slowest, entry)
            del self._trees[evicted]
            self._trees[root.trace_id] = [root]

    # -- results --------------------------------------------------------

    def slowest_spans(self) -> list[list[SpanEvent]]:
        """The retained span trees, slowest first (root at index 0)."""
        order = sorted(self._slowest, reverse=True)
        return [self._trees[tid] for _, tid in order]

    def conservation_errors(self) -> list[str]:
        """Per-(proc, op) mismatch between phase sums and root sums.

        Empty for every correctly instrumented machine: the builder cuts
        phases out of the root interval, so the sums agree exactly.
        """
        problems = []
        procs = set(self.root_ns) | set(self.phase_ns)
        for proc in sorted(procs):
            roots = self.root_ns.get(proc, {})
            phased = self.phase_ns.get(proc, {})
            for op in sorted(set(roots) | set(phased)):
                want = roots.get(op, 0)
                got = sum(phased.get(op, {}).values())
                if want != got:
                    problems.append(
                        f"P{proc} {op}: phases sum to {got} ns, "
                        f"roots total {want} ns"
                    )
        return problems

    def exemplars(self) -> dict[str, dict[tuple[str, ...], tuple[dict, int]]]:
        """OpenMetrics exemplars: the slowest access per class, labeled
        with its trace id so ``coma-sim explain``/Perfetto can find it."""
        per_class = {}
        for (op, level), (dur, tid) in sorted(self._class_max.items()):
            per_class[(op, level)] = ({"trace_id": str(tid)}, dur)
        return {"span_access_latency_ns": per_class}

    def report(self, stalls: Optional[list[dict]] = None,
               elapsed_ns: int = 0) -> dict:
        """The full attribution as a plain (JSON-ready) dict.

        ``stalls`` — per-processor stall accounting from the simulation
        result — adds the busy/read/write/sync conservation view: those
        categories are the ground truth the kernel charges (they sum to
        each processor's cycles exactly); the span phases subdivide the
        stall portion.
        """
        per_proc = []
        procs = sorted(set(self.root_ns) | set(self.phase_ns)
                       | set(self.sync_ns))
        for proc in procs:
            phased = self.phase_ns.get(proc, {})
            per_proc.append({
                "proc": proc,
                "access_ns": {
                    op: ns
                    for op, ns in sorted(self.root_ns.get(proc, {}).items())
                },
                "phases": {
                    op: dict(sorted(names.items()))
                    for op, names in sorted(phased.items())
                },
                "sync_wait_ns": self.sync_ns.get(proc, 0),
                "relocations": self.reloc_count.get(proc, 0),
            })
        out = {
            "accesses": self.accesses,
            "per_proc": per_proc,
            "per_workload_phase": [
                {"phase": wp, "access_ns": dict(sorted(ops.items()))}
                for wp, ops in sorted(self.wphase_ns.items())
            ],
            "top_lines": [
                {"line": hex(line), "access_ns": ns}
                for line, ns in sorted(
                    self.line_ns.items(), key=lambda kv: (-kv[1], kv[0])
                )[:20]
            ],
            "latency_histograms": self.registry.snapshot(),
            "top_spans": [
                [e.to_record() for e in tree]
                for tree in self.slowest_spans()
            ],
            "conservation_errors": self.conservation_errors(),
        }
        if stalls is not None:
            out["stall_accounting"] = [
                {**s, "total_ns": sum(s.values())} for s in stalls
            ]
        if elapsed_ns:
            out["elapsed_ns"] = elapsed_ns
        return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def format_span_tree(tree: list[SpanEvent]) -> str:
    """One retained span tree as indented text (root first)."""
    if not tree:
        return "(empty span tree)"
    root = tree[0]
    out = [
        f"trace {root.trace_id}: P{root.proc} {root.op} "
        f"line {root.line:#x} -> {root.level}  +{root.dur_ns} ns "
        f"(issued {root.t} ns"
        + (f", {root.relocs} relocation(s))" if root.relocs else ")")
    ]
    for child in tree[1:]:
        pct = 100.0 * child.dur_ns / root.dur_ns if root.dur_ns else 0.0
        out.append(
            f"    {child.name:<12} {child.t:>10}..{child.t + child.dur_ns:<10}"
            f" +{child.dur_ns:>6} ns  {pct:5.1f}%"
        )
    return "\n".join(out)


def format_attribution(report: dict) -> str:
    """Human rendering of :meth:`StallAttribution.report` (table mode)."""
    out = [f"latency attribution over {report['accesses']} accesses"]
    stalls = report.get("stall_accounting")
    if stalls:
        cats = [c for c in stalls[0] if c != "total_ns"]
        header = "  proc  " + "".join(f"{c:>12}" for c in cats) + f"{'total':>14}"
        out.append("per-processor cycles (kernel stall accounting, "
                   "sums exactly to each processor's clock):")
        out.append(header)
        for i, s in enumerate(stalls):
            row = f"  P{i:<4}" + "".join(f"{s[c]:>12}" for c in cats)
            out.append(row + f"{s['total_ns']:>14}")
    out.append("per-processor span phases (ns; phases partition each "
               "access's latency):")
    for row in report["per_proc"]:
        out.append(f"  P{row['proc']}: sync_wait={row['sync_wait_ns']} "
                   f"relocations={row['relocations']}")
        for op, phases in row["phases"].items():
            total = row["access_ns"].get(op, 0)
            detail = "  ".join(f"{k}={v}" for k, v in phases.items())
            out.append(f"    {op:<3} total={total:<12} {detail}")
    wps = report.get("per_workload_phase", ())
    if len(wps) > 1:
        out.append("per workload phase (barrier episodes):")
        for row in wps:
            detail = "  ".join(f"{k}={v}" for k, v in row["access_ns"].items())
            out.append(f"  phase {row['phase']:<3} {detail}")
    if report.get("top_lines"):
        out.append("hottest lines by access latency:")
        for row in report["top_lines"][:10]:
            out.append(f"  {row['line']:>8}  {row['access_ns']} ns")
    errs = report.get("conservation_errors", ())
    if errs:
        out.append("CONSERVATION VIOLATIONS:")
        out.extend(f"  {e}" for e in errs)
    else:
        out.append("conservation: OK (phase sums equal root sums for "
                   "every processor and op)")
    return "\n".join(out)
