"""Per-processor execution state.

The paper's cores are "4-way superscalar and run at 250 MHz ... No
pipeline effects or other stalls have been modeled — the processors
execute 4 instructions of any kind per cycle but stall on read misses."
The instruction-rate arithmetic lives in
:meth:`repro.common.config.TimingConfig.instructions_ns`; this class holds
the clock, the stall accounting and the write buffer.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.config import TimingConfig
from repro.cpu.writebuffer import WriteBuffer
from repro.timing.accounting import StallAccounting


class Processor:
    """One simulated processor executing a workload thread."""

    __slots__ = (
        "pid",
        "clock",
        "acct",
        "wb",
        "program",
        "done",
        "blocked",
        "block_start",
    )

    def __init__(
        self,
        pid: int,
        timing: TimingConfig,
        program: Optional[Iterator] = None,
        wb_coalescing: bool = False,
    ) -> None:
        self.pid = pid
        self.clock = 0
        self.acct = StallAccounting()
        self.wb = WriteBuffer(timing.write_buffer_entries, coalescing=wb_coalescing)
        self.program = program
        self.done = program is None
        self.blocked = False
        #: Time at which the processor blocked (lock/barrier wait), for
        #: charging the wait to the sync category on wakeup.
        self.block_start = 0

    def block(self) -> None:
        self.blocked = True
        self.block_start = self.clock

    def unblock(self, resume_time: int) -> None:
        """Wake up at ``resume_time``, charging the wait to sync."""
        self.blocked = False
        if resume_time > self.clock:
            self.acct.sync += resume_time - self.clock
            self.clock = resume_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        st = "done" if self.done else ("blocked" if self.blocked else "ready")
        return f"Processor({self.pid}, t={self.clock}, {st})"
