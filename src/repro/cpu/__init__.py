"""Processor-side models: the in-order core state and the write buffer."""

from repro.cpu.writebuffer import WriteBuffer
from repro.cpu.processor import Processor

__all__ = ["WriteBuffer", "Processor"]
