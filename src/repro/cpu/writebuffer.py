"""Write buffer under release consistency.

"A release consistency model with a 10 entry write buffer has been
assumed" (paper section 3.2).  Writes retire into the buffer without
stalling the processor; the buffer drains through the memory system in the
background.  The processor stalls only when

* the buffer is full (it waits for the oldest outstanding write), or
* it executes a release (lock release / barrier arrival), which must wait
  for every buffered write to complete.

Optionally the buffer *coalesces*: a store to a cache line that already
has an outstanding buffered write merges into that entry and never issues
a separate memory operation (``MachineConfig.write_buffer_coalescing``).
"""

from __future__ import annotations

import heapq
from typing import Optional


class WriteBuffer:
    """Tracks completion times of outstanding writes for one processor."""

    def __init__(self, capacity: int = 10, coalescing: bool = False) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self.coalescing = coalescing
        self._pending: list[tuple[int, int]] = []  # (completion, line)
        #: line -> newest completion time, for coalescing
        self._lines: dict[int, int] = {}
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._pending)

    def prune(self, now: int) -> None:
        """Retire writes that completed at or before ``now``."""
        p = self._pending
        while p and p[0][0] <= now:
            completion, line = heapq.heappop(p)
            if self._lines.get(line) == completion:
                del self._lines[line]

    def try_coalesce(self, line: int, now: int) -> bool:
        """Merge a store into an outstanding entry for the same line.

        Returns True when the store was absorbed (no memory operation
        should be issued for it).
        """
        if not self.coalescing:
            return False
        self.prune(now)
        if line in self._lines:
            self.coalesced += 1
            return True
        return False

    def wait_for_slot(self, now: int) -> tuple[int, int]:
        """Ensure a free entry exists; returns ``(new_now, stall_ns)``."""
        self.prune(now)
        stall = 0
        if len(self._pending) >= self.capacity:
            target = self._pending[0][0]
            stall = target - now
            now = target
            self.prune(now)
        return now, stall

    def push(self, completion_time: int, line: int = -1) -> None:
        heapq.heappush(self._pending, (completion_time, line))
        if line >= 0:
            prev = self._lines.get(line)
            if prev is None or completion_time > prev:
                self._lines[line] = completion_time

    def drain(self, now: int) -> tuple[int, int]:
        """Release: wait for all outstanding writes.

        Returns ``(new_now, stall_ns)``; the buffer is empty afterwards.
        """
        if not self._pending:
            return now, 0
        last = max(c for c, _ in self._pending)
        self._pending.clear()
        self._lines.clear()
        if last > now:
            return last, last - now
        return now, 0

    def outstanding_line(self, line: int) -> Optional[int]:
        """Completion time of the newest outstanding write to ``line``."""
        return self._lines.get(line)
