"""Synchronization primitives simulated through the memory system."""

from repro.sync.primitives import SimLock, SimBarrier, SyncSpace

__all__ = ["SimLock", "SimBarrier", "SyncSpace"]
