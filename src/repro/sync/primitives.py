"""Locks and barriers.

"All ordinary data accesses as well as synchronization accesses have been
modeled" (paper section 3).  Each primitive owns one cache line in a
dedicated segment of the address space, and its operations turn into
memory operations against that line:

* **Lock** — test-and-test-and-set with local spinning: waiting processors
  spin in their own caches (no events), so the only traffic is the
  read-modify-write of an acquire and one refetch per waiter when a
  release invalidates their cached copy.
* **Barrier** — sense-reversing: arrival is an atomic counter update, the
  last arriver writes the flipped sense, and every waiter re-reads the
  sense line when released.

The time-domain orchestration (who wakes when) is done by the simulation
kernel in :mod:`repro.sim.simulator`; these classes hold identity and
membership state only.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.mem.address import AddressSpace


class SimLock:
    """One lock: an address plus holder/waiter bookkeeping."""

    __slots__ = ("lock_id", "addr", "holder", "waiters")

    def __init__(self, lock_id: int, addr: int) -> None:
        self.lock_id = lock_id
        self.addr = addr
        self.holder: Optional[int] = None
        self.waiters: deque[int] = deque()

    @property
    def free(self) -> bool:
        return self.holder is None


class SimBarrier:
    """One sense-reversing barrier."""

    __slots__ = ("barrier_id", "addr", "arrived", "generation")

    def __init__(self, barrier_id: int, addr: int) -> None:
        self.barrier_id = barrier_id
        self.addr = addr
        #: pid -> arrival completion time for the current episode.
        self.arrived: dict[int, int] = {}
        self.generation = 0


class SyncSpace:
    """Allocates one line per primitive and constructs them on demand."""

    def __init__(self, space: AddressSpace, line_size: int, n_locks: int, n_barriers: int):
        total = max(1, (n_locks + n_barriers)) * line_size
        self.segment = space.alloc(total, "sync")
        self.line_size = line_size
        self.locks: list[SimLock] = [
            SimLock(i, self.segment.base + i * line_size) for i in range(n_locks)
        ]
        base = self.segment.base + n_locks * line_size
        self.barriers: list[SimBarrier] = [
            SimBarrier(i, base + i * line_size) for i in range(n_barriers)
        ]

    def lock(self, lock_id: int) -> SimLock:
        return self.locks[lock_id]

    def barrier(self, barrier_id: int) -> SimBarrier:
        return self.barriers[barrier_id]
