"""Memory primitives: simulated address space, set-associative arrays,
fully-associative shadow tags for miss classification."""

from repro.mem.address import AddressSpace, Segment
from repro.mem.setassoc import Entry, SetAssocArray
from repro.mem.shadow import ShadowTags

__all__ = ["AddressSpace", "Segment", "Entry", "SetAssocArray", "ShadowTags"]
