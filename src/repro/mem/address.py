"""Simulated shared address space with consecutive on-demand paging.

The paper (section 3): "Data pages are allocated consecutively on demand,
as they are accessed by the processors.  Allocation of a page is done
instantly, without any delay for the processor."

Workloads carve named *segments* out of a flat virtual address space; the
machine materializes a page (inserting its lines into the first toucher's
attraction memory) the first time any address inside it is accessed.  The
working set of a run is ``touched_pages * page_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Segment:
    """A named, contiguous region of the simulated address space."""

    name: str
    base: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr(self, offset: int) -> int:
        """Byte address at ``offset`` into the segment, bounds-checked."""
        if not 0 <= offset < self.nbytes:
            raise IndexError(
                f"offset {offset} out of range for segment {self.name!r} "
                f"({self.nbytes} bytes)"
            )
        return self.base + offset


class AddressSpace:
    """Flat virtual address space shared by all processors.

    Segments are allocated consecutively and page-aligned, so the virtual
    extent — and therefore the working set used to size the caches — is a
    deterministic function of the workload's allocation sequence.
    """

    def __init__(self, page_size: int = 2048) -> None:
        if page_size < 1 or page_size & (page_size - 1):
            raise ConfigError("page_size must be a positive power of two")
        self.page_size = page_size
        self._next = 0
        self.segments: list[Segment] = []
        #: page index -> node id that first touched it
        self.page_home: dict[int, int] = {}
        #: Called with (page_index, node_id) when a page is materialized.
        self.on_page_touch: Optional[Callable[[int, int], None]] = None

    def alloc(self, nbytes: int, name: str = "") -> Segment:
        """Allocate a page-aligned segment of ``nbytes`` bytes."""
        if nbytes <= 0:
            raise ConfigError(f"segment size must be positive, got {nbytes}")
        seg = Segment(name=name or f"seg{len(self.segments)}", base=self._next, nbytes=nbytes)
        pages = -(-nbytes // self.page_size)
        self._next += pages * self.page_size
        self.segments.append(seg)
        return seg

    @property
    def allocated_bytes(self) -> int:
        """Total virtual bytes allocated (page granular)."""
        return self._next

    @property
    def touched_bytes(self) -> int:
        """Working set actually touched so far (page granular)."""
        return len(self.page_home) * self.page_size

    def page_of(self, addr: int) -> int:
        return addr // self.page_size

    def ensure_page(self, addr: int, node_id: int) -> bool:
        """Materialize the page containing ``addr`` on first touch.

        Returns True when this call allocated the page (i.e. first touch).
        The allocating node becomes the page's initial location; in the
        COMA machine its lines appear there in Exclusive state.
        """
        page = addr // self.page_size
        if page in self.page_home:
            return False
        self.page_home[page] = node_id
        if self.on_page_touch is not None:
            self.on_page_touch(page, node_id)
        return True

    def lines_of_page(self, page: int, line_size: int):
        """Iterate the line addresses of ``page``."""
        base = page * self.page_size // line_size
        return range(base, base + self.page_size // line_size)

    def segment_named(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(name)
