"""Generic set-associative tag array with LRU and caller-driven victimization.

Used for the L1 caches, the second-level caches, and the attraction
memories.  Set counts need not be powers of two (indexing is modulo), so
the "odd cache sizes" that the paper's memory-pressure methodology produces
are represented exactly.

State is an opaque small integer; 0 means invalid by convention.  Victim
*selection policy* lives with the caller (the COMA replacement rules of
section 3.1 prioritize Shared victims over Owner/Exclusive ones), this
module only provides the mechanics.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.common.config import CacheGeometry

INVALID = 0


class Entry:
    """One way of one set.

    ``aux`` is cache-specific: the attraction memory stores the bitmask of
    local processors whose SLC holds the line; the SLC stores nothing.
    """

    __slots__ = ("line", "state", "lru", "dirty", "aux", "set_idx")

    def __init__(self, set_idx: int) -> None:
        self.line = -1
        self.state = INVALID
        self.lru = 0
        self.dirty = False
        self.aux = 0
        self.set_idx = set_idx

    @property
    def valid(self) -> bool:
        return self.state != INVALID

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Entry(set={self.set_idx}, line={self.line:#x}, state={self.state}, "
            f"dirty={self.dirty})"
        )


class SetAssocArray:
    """Tag array: ``geometry.num_sets`` sets x ``geometry.assoc`` ways."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.sets: list[list[Entry]] = [
            [Entry(s) for _ in range(geometry.assoc)] for s in range(geometry.num_sets)
        ]
        self._index: dict[int, Entry] = {}
        self._tick = 0

    # -- lookup ---------------------------------------------------------

    def lookup(self, line: int) -> Optional[Entry]:
        """Return the valid entry holding ``line``, or None."""
        return self._index.get(line)

    def __contains__(self, line: int) -> bool:
        return line in self._index

    def set_index(self, line: int) -> int:
        return line % self.geometry.num_sets

    def ways(self, set_idx: int) -> list[Entry]:
        return self.sets[set_idx]

    def touch(self, entry: Entry) -> None:
        """Mark ``entry`` most-recently-used."""
        self._tick += 1
        entry.lru = self._tick

    # -- mutation -------------------------------------------------------

    def find_victim(
        self,
        set_idx: int,
        priority: Optional[Callable[[Entry], int]] = None,
    ) -> Entry:
        """Pick the entry to displace in ``set_idx``.

        ``priority`` maps an entry to a class number; lower classes are
        displaced first, ties broken by LRU.  The default prefers invalid
        entries, then plain LRU.
        """
        ways = self.sets[set_idx]
        if priority is None:
            best = ways[0]
            for e in ways:
                if not e.valid:
                    return e
                if e.lru < best.lru:
                    best = e
            return best
        best = ways[0]
        best_key = (priority(best), best.lru)
        for e in ways[1:]:
            key = (priority(e), e.lru)
            if key < best_key:
                best, best_key = e, key
        return best

    def free_way(self, set_idx: int) -> Optional[Entry]:
        """Return an invalid way in ``set_idx`` if one exists."""
        for e in self.sets[set_idx]:
            if not e.valid:
                return e
        return None

    def fill(self, entry: Entry, line: int, state: int) -> None:
        """(Re)populate ``entry`` with ``line`` in ``state``.

        The caller must already have dealt with any victim occupying the
        entry (writeback, relocation, ...); a still-valid entry is simply
        dropped from the index here.
        """
        assert state != INVALID, "fill with INVALID makes no sense"
        assert entry.set_idx == line % self.geometry.num_sets, (
            f"line {line:#x} does not map to set {entry.set_idx}"
        )
        if entry.valid:
            del self._index[entry.line]
        entry.line = line
        entry.state = state
        entry.dirty = False
        entry.aux = 0
        self._index[line] = entry
        self.touch(entry)

    def invalidate(self, entry: Entry) -> None:
        """Drop ``entry`` from the array."""
        if entry.valid:
            del self._index[entry.line]
        entry.line = -1
        entry.state = INVALID
        entry.dirty = False
        entry.aux = 0

    def invalidate_line(self, line: int) -> bool:
        """Invalidate ``line`` if present; returns True if it was."""
        entry = self._index.get(line)
        if entry is None:
            return False
        self.invalidate(entry)
        return True

    # -- introspection ---------------------------------------------------

    def valid_entries(self) -> Iterator[Entry]:
        return iter(self._index.values())

    def count_state(self, state: int) -> int:
        return sum(1 for e in self._index.values() if e.state == state)

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return len(self._index)

    def check_consistency(self) -> None:
        """Internal invariant check used by the test suite."""
        seen = 0
        for s, ways in enumerate(self.sets):
            for e in ways:
                if e.valid:
                    seen += 1
                    assert e.set_idx == s
                    assert self._index.get(e.line) is e, (
                        f"index out of sync for line {e.line:#x}"
                    )
                    assert e.line % self.geometry.num_sets == s
        assert seen == len(self._index), "index size mismatch"
