"""Generic set-associative tag array with LRU and caller-driven victimization.

Used for the L1 caches, the second-level caches, and the attraction
memories.  Set counts need not be powers of two (indexing is modulo), so
the "odd cache sizes" that the paper's memory-pressure methodology produces
are represented exactly.

State is an opaque small integer; 0 means invalid by convention.  Victim
*selection policy* lives with the caller (the COMA replacement rules of
section 3.1 prioritize Shared victims over Owner/Exclusive ones), this
module only provides the mechanics.

The storage itself lives in :mod:`repro.mem.soa`: line state is kept in
arrays-of-structs (``array`` buffers indexed by way number) rather than
per-line objects, so compiled hot paths can address ways as plain ints.
These aliases keep the historical names — ``SetAssocArray`` for the
array, ``Entry`` for the per-way view handed out by the compatible API.
"""

from __future__ import annotations

from repro.mem.soa import INVALID, LineArray, WayRef

SetAssocArray = LineArray
Entry = WayRef

__all__ = ["INVALID", "SetAssocArray", "Entry"]
