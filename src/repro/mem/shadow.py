"""Fully-associative shadow tags for conflict-vs-capacity miss classification.

Section 4.2 of the paper attributes the high-memory-pressure traffic
blow-up of six applications to *conflict misses* "due to the relatively
lower associativity of the shared attraction memory".  To make the same
attribution, each node runs a fully-associative LRU shadow directory of the
same capacity as its attraction memory, fed by the node's own access
stream and by coherence invalidations.  A node miss that *hits* in the
shadow would have been avoided by full associativity: a conflict miss.
"""

from __future__ import annotations

from collections import OrderedDict


class ShadowTags:
    """Fully-associative LRU set of line addresses with fixed capacity."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def access(self, line: int) -> bool:
        """Record an access; returns True when it hit in the shadow."""
        hit = line in self._lines
        if hit:
            self._lines.move_to_end(line)
        else:
            self._lines[line] = None
            if len(self._lines) > self.capacity:
                self._lines.popitem(last=False)
        return hit

    def remove(self, line: int) -> None:
        """Coherence invalidation: the copy would be gone regardless of
        associativity, so remove it from the shadow too."""
        self._lines.pop(line, None)


class ShadowMemory:
    """Golden per-line store log for trace-driven value checking.

    The machine never models data values, so "value" here is a per-line
    *version*: each committed store bumps the line's version and records
    the storing processor and time.  A copy created or refreshed by the
    protocol is stamped with the version current at that moment; the
    sanitizer (:mod:`repro.analysis.sanitize`) compares copy stamps
    against this log to catch stale reads and lost updates that the
    structural I-invariants cannot see.
    """

    __slots__ = ("_lines",)

    def __init__(self) -> None:
        #: line -> (version, last writing proc, store time)
        self._lines: dict[int, tuple[int, int, int]] = {}

    def commit(self, line: int, proc: int, t: int) -> int:
        """Record one committed store; returns the line's new version."""
        version = self._lines.get(line, (0, -1, 0))[0] + 1
        self._lines[line] = (version, proc, t)
        return version

    def version(self, line: int) -> int:
        """Current committed version of ``line`` (0 before any store)."""
        return self._lines.get(line, (0, -1, 0))[0]

    def last(self, line: int) -> tuple[int, int, int]:
        """``(version, proc, t)`` of the last committed store (or the
        zero version when the line was never stored to)."""
        return self._lines.get(line, (0, -1, 0))

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)
