"""Fully-associative shadow tags for conflict-vs-capacity miss classification.

Section 4.2 of the paper attributes the high-memory-pressure traffic
blow-up of six applications to *conflict misses* "due to the relatively
lower associativity of the shared attraction memory".  To make the same
attribution, each node runs a fully-associative LRU shadow directory of the
same capacity as its attraction memory, fed by the node's own access
stream and by coherence invalidations.  A node miss that *hits* in the
shadow would have been avoided by full associativity: a conflict miss.
"""

from __future__ import annotations

from collections import OrderedDict


class ShadowTags:
    """Fully-associative LRU set of line addresses with fixed capacity."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def access(self, line: int) -> bool:
        """Record an access; returns True when it hit in the shadow."""
        hit = line in self._lines
        if hit:
            self._lines.move_to_end(line)
        else:
            self._lines[line] = None
            if len(self._lines) > self.capacity:
                self._lines.popitem(last=False)
        return hit

    def remove(self, line: int) -> None:
        """Coherence invalidation: the copy would be gone regardless of
        associativity, so remove it from the shadow too."""
        self._lines.pop(line, None)
