"""Arrays-of-structs line storage (the compiled tag array).

:class:`LineArray` stores what :class:`~repro.mem.setassoc.SetAssocArray`
stored in per-line ``Entry`` objects — tag, state, LRU stamp, dirty bit,
auxiliary mask — as five parallel ``array`` buffers indexed by a flat
*way number* (``set_idx * assoc + k``).  The hot paths of the machine
address ways as plain ints and read the buffers directly: no per-line
object, no attribute descriptor, one dict probe per lookup.

Two APIs coexist on the same storage:

* the **way-int API** (``way_of`` / ``fill_way`` / ``victim_way`` / the
  raw ``*_a`` buffers) used by compiled hot paths — the victim-selection
  policies are interned to small ints (:data:`VICTIM_LRU`,
  :data:`VICTIM_SHARED_FIRST`, :data:`VICTIM_NONINCLUSIVE`) so selection
  is branchy integer code instead of a key-function callback;
* the **Entry-compatible API** (``lookup`` / ``fill`` / ``find_victim``
  with a priority callable / ``valid_entries``) kept for tests, the
  cross-checker and other cold introspection.  It hands out
  :class:`WayRef` views — one preallocated per way, stable identity —
  that read and write through to the buffers.

State values are opaque small ints with ``0 == INVALID`` by convention;
the interned victim policies additionally rely on the E/O/S/I encoding of
:mod:`repro.coma.states` (``SHARED == 1``, owning states above it), which
is asserted by the protocol compiler.  This module must stay importable
without :mod:`repro.coma` (the caches import it while that package is
still loading).
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterator, Optional

from repro.common.config import CacheGeometry
from repro.common.hotpath import hotpath

INVALID = 0

#: repro.coma.states.SHARED — duplicated here to keep this module free of
#: coma imports (see module docstring); equality is asserted at protocol
#: compile time.
_SHARED = 1

#: Interned victim-selection policies for :meth:`LineArray.victim_way`.
VICTIM_LRU = 0             # invalid first, then least-recently-used
VICTIM_SHARED_FIRST = 1    # Shared ways before owner ways, ties by LRU
VICTIM_NONINCLUSIVE = 2    # Shared, then SLC-backed owners, then bare owners


class WayRef:
    """Entry-compatible view of one way of a :class:`LineArray`.

    Exactly one ref exists per way (preallocated), so identity is stable:
    two lookups of the same resident line return the same object.  All
    fields read and write through to the backing arrays.

    ``aux`` is cache-specific: the attraction memory stores the bitmask of
    local processors whose SLC holds the line; the SLC stores nothing.
    """

    __slots__ = ("_arr", "way", "set_idx")

    def __init__(self, arr: "LineArray", way: int, set_idx: int) -> None:
        self._arr = arr
        self.way = way
        self.set_idx = set_idx

    @property
    def line(self) -> int:
        return self._arr.line_a[self.way]

    @line.setter
    def line(self, v: int) -> None:
        self._arr.line_a[self.way] = v

    @property
    def state(self) -> int:
        return self._arr.state_a[self.way]

    @state.setter
    def state(self, v: int) -> None:
        self._arr.state_a[self.way] = v

    @property
    def lru(self) -> int:
        return self._arr.lru_a[self.way]

    @lru.setter
    def lru(self, v: int) -> None:
        self._arr.lru_a[self.way] = v

    @property
    def dirty(self) -> bool:
        return self._arr.dirty_a[self.way] != 0

    @dirty.setter
    def dirty(self, v: bool) -> None:
        self._arr.dirty_a[self.way] = 1 if v else 0

    @property
    def aux(self) -> int:
        return self._arr.aux_a[self.way]

    @aux.setter
    def aux(self, v: int) -> None:
        self._arr.aux_a[self.way] = v

    @property
    def valid(self) -> bool:
        return self._arr.state_a[self.way] != INVALID

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WayRef(set={self.set_idx}, line={self.line:#x}, "
            f"state={self.state}, dirty={self.dirty})"
        )


class LineArray:
    """Tag array: ``geometry.num_sets`` sets x ``geometry.assoc`` ways,
    stored as parallel buffers.  Set counts need not be powers of two
    (indexing is modulo), so the paper's "odd cache sizes" are exact."""

    __slots__ = (
        "geometry", "num_sets", "assoc",
        "line_a", "state_a", "lru_a", "aux_a", "dirty_a",
        "index", "refs", "tick",
    )

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.assoc = geometry.assoc
        n = geometry.num_sets * geometry.assoc
        self.line_a = array("q", [-1]) * n
        self.state_a = array("b", [INVALID]) * n
        self.lru_a = array("q", [0]) * n
        self.aux_a = array("q", [0]) * n
        self.dirty_a = array("b", [0]) * n
        #: line -> way number of the valid way holding it.
        self.index: dict[int, int] = {}
        self.refs = [
            WayRef(self, w, w // geometry.assoc) for w in range(n)
        ]
        self.tick = 0

    # ------------------------------------------------------------------
    # way-int API (compiled hot paths)
    # ------------------------------------------------------------------

    @hotpath
    def way_of(self, line: int) -> int:
        """Way holding ``line``, or -1."""
        w = self.index.get(line)
        return -1 if w is None else w

    @hotpath
    def touch_way(self, way: int) -> None:
        """Mark ``way`` most-recently-used."""
        self.tick += 1
        self.lru_a[way] = self.tick

    @hotpath
    def fill_way(self, way: int, line: int, state: int) -> None:
        """(Re)populate ``way`` with ``line`` in ``state``.

        The caller must already have dealt with any victim occupying the
        way (writeback, relocation, ...); a still-valid way is simply
        dropped from the index here.  Set mapping is the caller's
        contract (checked in the Entry-compatible ``fill`` and by
        :meth:`check_consistency`, not per call here).
        """
        if self.state_a[way] != INVALID:
            del self.index[self.line_a[way]]
        self.line_a[way] = line
        self.state_a[way] = state
        self.dirty_a[way] = 0
        self.aux_a[way] = 0
        self.index[line] = way
        self.tick += 1
        self.lru_a[way] = self.tick

    @hotpath
    def invalidate_way(self, way: int) -> None:
        """Drop ``way`` from the array."""
        if self.state_a[way] != INVALID:
            del self.index[self.line_a[way]]
        self.line_a[way] = -1
        self.state_a[way] = INVALID
        self.dirty_a[way] = 0
        self.aux_a[way] = 0

    @hotpath
    def free_way_idx(self, set_idx: int) -> int:
        """An invalid way in ``set_idx``, or -1 (first in way order)."""
        state_a = self.state_a
        w = set_idx * self.assoc
        end = w + self.assoc
        while w < end:
            if not state_a[w]:
                return w
            w += 1
        return -1

    @hotpath
    def victim_way(self, set_idx: int, mode: int) -> int:
        """Pick the way to displace in ``set_idx`` under interned ``mode``.

        Replicates the SetAssocArray selection exactly: lower victim class
        wins, ties broken by LRU stamp, first minimum in way order.
        ``VICTIM_LRU`` additionally returns the first invalid way
        outright (the state-blind default policy).
        """
        assoc = self.assoc
        base = set_idx * assoc
        state_a = self.state_a
        lru_a = self.lru_a
        if mode == VICTIM_LRU:
            best = base
            best_lru = lru_a[base]
            w = base
            end = base + assoc
            while w < end:
                if not state_a[w]:
                    return w
                l = lru_a[w]
                if l < best_lru:
                    best = w
                    best_lru = l
                w += 1
            return best
        noninc = mode == VICTIM_NONINCLUSIVE
        aux_a = self.aux_a
        best = base
        st = state_a[base]
        if st == _SHARED:
            best_p = 0
        elif noninc:
            best_p = 1 if aux_a[base] else 2
        else:
            best_p = 1
        best_lru = lru_a[base]
        w = base + 1
        end = base + assoc
        while w < end:
            st = state_a[w]
            if st == _SHARED:
                p = 0
            elif noninc:
                p = 1 if aux_a[w] else 2
            else:
                p = 1
            l = lru_a[w]
            if p < best_p or (p == best_p and l < best_lru):
                best = w
                best_p = p
                best_lru = l
            w += 1
        return best

    # ------------------------------------------------------------------
    # Entry-compatible API (tests, cross-checks, cold introspection)
    # ------------------------------------------------------------------

    def lookup(self, line: int) -> Optional[WayRef]:
        """Return the (stable-identity) ref of the valid way holding
        ``line``, or None."""
        w = self.index.get(line)
        return None if w is None else self.refs[w]

    def __contains__(self, line: int) -> bool:
        return line in self.index

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def ways(self, set_idx: int) -> list[WayRef]:
        base = set_idx * self.assoc
        return self.refs[base:base + self.assoc]

    def touch(self, entry: WayRef) -> None:
        """Mark ``entry`` most-recently-used."""
        self.tick += 1
        self.lru_a[entry.way] = self.tick

    def find_victim(
        self,
        set_idx: int,
        priority: Optional[Callable[[WayRef], int]] = None,
    ) -> WayRef:
        """Pick the entry to displace in ``set_idx``.

        ``priority`` maps an entry to a class number; lower classes are
        displaced first, ties broken by LRU.  The default prefers invalid
        entries, then plain LRU (== ``victim_way(set_idx, VICTIM_LRU)``).
        """
        if priority is None:
            return self.refs[self.victim_way(set_idx, VICTIM_LRU)]
        ways = self.ways(set_idx)
        best = ways[0]
        best_key = (priority(best), best.lru)
        for e in ways[1:]:
            key = (priority(e), e.lru)
            if key < best_key:
                best, best_key = e, key
        return best

    def free_way(self, set_idx: int) -> Optional[WayRef]:
        """Return an invalid way in ``set_idx`` if one exists."""
        w = self.free_way_idx(set_idx)
        return None if w < 0 else self.refs[w]

    def fill(self, entry: WayRef, line: int, state: int) -> None:
        assert state != INVALID, "fill with INVALID makes no sense"
        assert entry.way // self.assoc == line % self.num_sets, (
            f"line {line:#x} does not map to set {entry.way // self.assoc}"
        )
        self.fill_way(entry.way, line, state)

    def invalidate(self, entry: WayRef) -> None:
        self.invalidate_way(entry.way)

    def invalidate_line(self, line: int) -> bool:
        """Invalidate ``line`` if present; returns True if it was."""
        w = self.index.get(line)
        if w is None:
            return False
        self.invalidate_way(w)
        return True

    # -- introspection ---------------------------------------------------

    def valid_entries(self) -> Iterator[WayRef]:
        refs = self.refs
        return (refs[w] for w in self.index.values())

    def count_state(self, state: int) -> int:
        state_a = self.state_a
        return sum(1 for w in self.index.values() if state_a[w] == state)

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return len(self.index)

    def check_consistency(self) -> None:
        """Internal invariant check used by the test suite."""
        seen = 0
        assoc = self.assoc
        for w in range(self.num_sets * assoc):
            if self.state_a[w] != INVALID:
                seen += 1
                line = self.line_a[w]
                s = w // assoc
                assert self.index.get(line) == w, (
                    f"index out of sync for line {line:#x}"
                )
                assert line % self.num_sets == s
        assert seen == len(self.index), "index size mismatch"
