"""CC-NUMA baseline machine (for COMA-vs-NUMA context benches)."""

from repro.numa.machine import NumaMachine
from repro.numa.directory import Directory, DirEntry

__all__ = ["NumaMachine", "Directory", "DirEntry"]
