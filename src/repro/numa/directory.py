"""Full-map directory for the CC-NUMA baseline.

Each line's home node keeps a full-map entry: the set of processors whose
SLC caches the line and whether one of them holds it modified.  This is
bookkeeping state of the *modeled* machine (unlike the COMA machine's
line table, which is simulator-internal); NUMA directories are what the
COMA design avoids by making all memory a cache.
"""

from __future__ import annotations


class DirEntry:
    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        #: processors caching the line (clean or dirty)
        self.sharers: set[int] = set()
        #: processor holding the line modified, or None
        self.owner: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DirEntry(sharers={sorted(self.sharers)}, owner={self.owner})"


class Directory:
    """line -> DirEntry map, allocated on demand."""

    def __init__(self) -> None:
        self._entries: dict[int, DirEntry] = {}

    def entry(self, line: int) -> DirEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def maybe(self, line: int) -> DirEntry | None:
        return self._entries.get(line)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()
