"""A CC-NUMA machine with the same processors, caches, bus and timing as
the COMA model — but conventional home-based main memory instead of
attraction memories.

Section 2 of the paper contrasts COMA's migration/replication with
NUMA/UMA behaviour; this baseline lets the benchmark suite show the
contrast quantitatively (COMA converts repeated remote accesses into
local AM hits after migration; NUMA pays the remote latency every time a
line falls out of the small SLC).

Model: pages are homed at the first-touch node.  SLCs cache lines under
an invalidation MSI protocol tracked by a full-map directory at the home.
A read that misses the SLC costs a local memory access (148 ns) when the
home is the local node, or a remote access (332 ns) otherwise; dirty
remote data is fetched via the owner with the same remote timing.  It
exposes the same ``read``/``write``/``rmw`` interface as ``ComaMachine``,
so :class:`repro.sim.Simulation` drives both.
"""

from __future__ import annotations

from repro.bus.sharedbus import SharedBus
from repro.bus.transaction import TxKind
from repro.caches.l1 import L1Cache
from repro.caches.slc import SecondLevelCache
from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.mem.address import AddressSpace
from repro.numa.directory import Directory
from repro.stats.counters import Counters
from repro.timing.resource import Resource

LEVEL_L1 = "l1"
LEVEL_SLC = "slc"
LEVEL_AM = "am"       # local memory (reported in the AM slot for comparability)
LEVEL_REMOTE = "remote"


class NumaMachine:
    """Home-based CC-NUMA memory system."""

    def __init__(self, config: MachineConfig, space: AddressSpace) -> None:
        config._require_sized()
        self.config = config
        self.timing = config.timing
        self.space = space
        self.counters = Counters()
        self.bus = SharedBus(config.timing, config.line_size)
        self.directory = Directory()
        slc_geom = config.slc_geometry
        l1_geom = config.l1_geometry
        n = config.n_processors
        self.slcs = [SecondLevelCache(slc_geom) for _ in range(n)]
        self.l1s = [L1Cache(l1_geom) for _ in range(n)]
        self.slc_res = [Resource(f"slc{p}") for p in range(n)]
        self.nc = [Resource(f"nc{i}") for i in range(config.n_nodes)]
        self.dram = [Resource(f"dram{i}") for i in range(config.n_nodes)]
        self._shift = config.line_shift
        self._node_of = [config.node_of_proc(p) for p in range(n)]
        self.now = 0
        self._bg = False  # posted-write background port selector
        #: Optional :class:`repro.obs.sink.TraceSink`; None (the default)
        #: keeps every emission site a single ``if`` with no allocations.
        self.trace = None
        #: Optional :class:`repro.obs.spans.SpanBuilder`, installed by
        #: :meth:`set_trace` only when the sink opts in (``wants_spans``)
        #: — same zero-overhead-when-off discipline as the COMA machine.
        self.spans = None

    def set_trace(self, sink) -> None:
        """Attach a trace sink to the machine and its bus.

        Mirrors :meth:`repro.coma.machine.ComaMachine.set_trace` so the
        observability stack (span sinks, the bounds certifier,
        ``TraceSink.attach_to``) drives the NUMA baseline unchanged.
        """
        self.trace = sink
        self.bus.trace = sink
        if sink is not None and getattr(sink, "wants_spans", False):
            if self.spans is None or self.spans.sink is not sink:
                from repro.obs.spans import SpanBuilder

                self.spans = SpanBuilder(sink)
        else:
            self.spans = None

    # ------------------------------------------------------------------
    def _home_node(self, addr: int) -> int:
        page = self.space.page_of(addr)
        home = self.space.page_home.get(page)
        if home is None:
            raise ProtocolError(f"page of {addr:#x} not materialized")
        return home

    def _ensure_page(self, addr: int, node_id: int) -> None:
        if self.space.page_of(addr) not in self.space.page_home:
            self.space.ensure_page(addr, node_id)
            self.counters.pages_allocated += 1

    def _memory_access(self, node_id: int, t0: int) -> int:
        tm = self.timing
        s = self.nc[node_id].acquire(t0, tm.nc_busy_ns, self._bg)
        t = s + tm.nc_ns
        s = self.dram[node_id].acquire(t, tm.dram_busy_ns, self._bg)
        t = s + tm.dram_latency_ns
        s = self.nc[node_id].acquire(t, tm.nc_busy_ns, self._bg)
        return s + tm.nc_ns

    def _remote_access(self, local: int, home: int, now: int) -> int:
        tm = self.timing
        spans = self.spans
        s = self.nc[local].acquire(now, tm.nc_busy_ns, self._bg)
        t = self.bus.phase(s + tm.nc_ns, self._bg)
        if spans is not None:
            spans.phase("nc_out", s + tm.nc_ns)
            spans.phase("bus_arb", self.bus.arb_start(t))
            spans.phase("bus_req", t)
        s = self.nc[home].acquire(t, tm.nc_busy_ns, self._bg)
        t = s + tm.nc_ns
        s = self.dram[home].acquire(t, tm.dram_busy_ns, self._bg)
        t = self.bus.phase(s + tm.dram_latency_ns, self._bg)
        if spans is not None:
            spans.phase("remote_am", s + tm.dram_latency_ns)
            spans.phase("bus_arb", self.bus.arb_start(t))
            spans.phase("bus_reply", t)
        s = self.nc[local].acquire(t, tm.nc_busy_ns, self._bg)
        if spans is not None:
            spans.phase("nc_ret", s + tm.nc_ns)
            spans.phase("fill_dram", s + tm.nc_ns + tm.dram_latency_ns)
        return s + tm.nc_ns + tm.dram_latency_ns + tm.remote_overhead_ns

    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        c.reads += 1
        line = addr >> self._shift
        node = self._node_of[proc]
        trace = self.trace
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "r", line, addr)
        self._ensure_page(addr, node)
        if self.l1s[proc].lookup(line):
            c.l1_read_hits += 1
            done = now + self.timing.l1_hit_ns
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_L1, done - now, addr)
            if spans is not None:
                spans.end(done, LEVEL_L1)
            return done, LEVEL_L1
        start = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
        if self.slcs[proc].lookup(line) is not None:
            c.slc_read_hits += 1
            self.l1s[proc].fill(line)
            done = start + self.timing.slc_hit_ns
            if trace is not None:
                trace.access(now, proc, "r", line, LEVEL_SLC, done - now, addr)
            if spans is not None:
                spans.phase("slc_wait", start)
                spans.end(done, LEVEL_SLC)
            return done, LEVEL_SLC
        home = self._home_node(addr)
        e = self.directory.entry(line)
        if e.owner is not None and e.owner != proc:
            # Dirty elsewhere: fetch through the owner (remote timing) and
            # leave both copies shared/clean at the home.
            done = self._remote_access(node, self._node_of[e.owner], now)
            self.bus.record(TxKind.READ_DATA)
            c.node_read_misses += 1
            e.owner = None
            level = LEVEL_REMOTE
        elif home == node:
            done = self._memory_access(node, now)
            c.am_read_hits += 1
            level = LEVEL_AM
        else:
            done = self._remote_access(node, home, now)
            self.bus.record(TxKind.READ_DATA)
            c.node_read_misses += 1
            level = LEVEL_REMOTE
        e.sharers.add(proc)
        self._fill(proc, line)
        if trace is not None:
            trace.access(now, proc, "r", line, level, done - now, addr)
        if spans is not None:
            spans.end(done, level)
        return done, level

    def write(self, proc: int, addr: int, now: int) -> int:
        self.counters.writes += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "w", addr >> self._shift, addr)
        self._bg = True
        try:
            done, level = self._write_access(proc, addr, now)
        finally:
            self._bg = False
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if spans is not None:
            spans.end(done, level)
        return done

    def rmw(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.counters.atomics += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "rmw", addr >> self._shift, addr)
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "rmw", addr >> self._shift, level,
                              done - now, addr)
        if spans is not None:
            spans.end(done, level)
        return done, level

    def write_stalling(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        """A write the processor waits for (sequential-consistency mode)."""
        self.counters.writes += 1
        spans = self.spans
        if spans is not None:
            spans.begin(now, proc, "w", addr >> self._shift, addr)
        done, level = self._write_access(proc, addr, now)
        if self.trace is not None:
            self.trace.access(now, proc, "w", addr >> self._shift, level,
                              done - now, addr)
        if spans is not None:
            spans.end(done, level)
        return done, level

    def _write_access(self, proc: int, addr: int, now: int) -> tuple[int, str]:
        self.now = now
        c = self.counters
        line = addr >> self._shift
        node = self._node_of[proc]
        self._ensure_page(addr, node)
        self.l1s[proc].write_hit(line)
        home = self._home_node(addr)
        e = self.directory.entry(line)
        slc_hit = line in self.slcs[proc]

        if e.owner == proc and slc_hit:
            s = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
            self.slcs[proc].mark_dirty(line)
            return s + self.timing.slc_hit_ns, LEVEL_SLC

        # Need exclusivity: invalidate every other cached copy.
        others = [p for p in e.sharers if p != proc]
        if others or (e.owner is not None and e.owner != proc):
            self.bus.record(TxKind.UPGRADE)
            s = self.nc[node].acquire(now, self.timing.nc_busy_ns, self._bg)
            now = self.bus.phase(s + self.timing.nc_ns, self._bg)
            if self.spans is not None:
                self.spans.phase("nc_out", s + self.timing.nc_ns)
                self.spans.phase("upgrade_bus", now)
            for p in others:
                self.slcs[p].invalidate(line)
                self.l1s[p].invalidate(line)
                c.invalidations_sent += 1
        e.sharers = {proc}
        e.owner = proc

        if slc_hit:
            s = self.slc_res[proc].acquire(now, self.timing.slc_occupancy_ns, self._bg)
            self.slcs[proc].mark_dirty(line)
            return s + self.timing.slc_hit_ns, LEVEL_SLC
        c.node_write_misses += 1
        if home == node:
            done = self._memory_access(node, now)
            level = LEVEL_AM
        else:
            done = self._remote_access(node, home, now)
            self.bus.record(TxKind.READ_EXCL)
            level = LEVEL_REMOTE
        self._fill(proc, line)
        self.slcs[proc].mark_dirty(line)
        return done, level

    # ------------------------------------------------------------------
    def _fill(self, proc: int, line: int) -> None:
        victim = self.slcs[proc].fill(line)
        if victim >= 0:
            vline = victim >> 1
            self.l1s[proc].invalidate(vline)
            ve = self.directory.maybe(vline)
            if ve is not None:
                ve.sharers.discard(proc)
                if ve.owner == proc:
                    ve.owner = None
                    # Dirty write-back travels to the line's home.
                    vhome = self.space.page_home.get(
                        vline * self.config.line_size // self.space.page_size
                    )
                    if vhome is not None and vhome != self._node_of[proc]:
                        self.bus.record(TxKind.REPLACE_DATA)
                        self.bus.phase(self.now, self._bg)
                        self.counters.replacements += 1
                    self.dram[vhome if vhome is not None else 0].acquire(
                        self.now, self.timing.dram_busy_ns
                    , self._bg)
                    self.counters.slc_writebacks += 1
        self.l1s[proc].fill(line)

    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Directory vs cache cross-check (tests)."""
        cached: dict[int, set[int]] = {}
        for p, slc in enumerate(self.slcs):
            for entry in slc.array.valid_entries():
                cached.setdefault(entry.line, set()).add(p)
        for line, e in self.directory.items():
            assert e.sharers.issuperset(cached.get(line, set())), (
                f"line {line:#x}: cached copies missing from directory"
            )
            if e.owner is not None:
                assert e.owner in e.sharers or line not in cached, (
                    f"line {line:#x}: owner {e.owner} not a sharer"
                )
        for p in range(self.config.n_processors):
            for le in self.l1s[p].array.valid_entries():
                assert le.line in self.slcs[p], f"L1{p} not subset of SLC"
