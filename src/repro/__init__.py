"""repro — a cluster-based COMA multiprocessor simulator.

Reproduction of Landin & Karlgren, "A Study of the Efficiency of Shared
Attraction Memories in Cluster-Based COMA Multiprocessors" (IPPS 1997).

Quickstart::

    from repro import RunSpec, run_spec

    result = run_spec(RunSpec(workload="fft", procs_per_node=4,
                              memory_pressure=13 / 16))
    print(result.read_node_miss_rate, result.traffic_bytes)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.common.config import (
    CacheGeometry,
    MachineConfig,
    TimingConfig,
    PAPER_MEMORY_PRESSURES,
)
from repro.coma.machine import ComaMachine
from repro.experiments.runner import RunSpec, build_simulation, run_spec
from repro.mem.address import AddressSpace
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulation
from repro.workloads.registry import get_workload, paper_workloads, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "MachineConfig",
    "TimingConfig",
    "PAPER_MEMORY_PRESSURES",
    "ComaMachine",
    "RunSpec",
    "build_simulation",
    "run_spec",
    "AddressSpace",
    "SimulationResult",
    "Simulation",
    "get_workload",
    "paper_workloads",
    "workload_names",
    "__version__",
]
