"""The global split-transaction snooping bus."""

from repro.bus.transaction import TxClass, TxKind, message_bytes
from repro.bus.sharedbus import SharedBus

__all__ = ["TxClass", "TxKind", "message_bytes", "SharedBus"]
