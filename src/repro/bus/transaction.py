"""Bus transaction taxonomy and message sizing.

Figures 3 and 4 of the paper divide global bus traffic into three
segments: **read**, **write** and **replacement**.  We map our transaction
kinds onto those classes:

* read      — data fetches caused by read node misses;
* write     — write-permission traffic: upgrades/erases (control-only)
              and read-exclusive fetches caused by write misses (data);
* replace   — relocation of evicted Owner/Exclusive lines to an accepting
              node (data), including every hop of a forced cascade, plus
              the accept negotiation (control).

Data messages carry one 64-byte line plus an 8-byte header; control
messages are header-only.
"""

from __future__ import annotations

from enum import Enum

HEADER_BYTES = 8


class TxClass(str, Enum):
    READ = "read"
    WRITE = "write"
    REPLACE = "replace"


class TxKind(Enum):
    """Concrete transaction kinds, each belonging to one traffic class."""

    READ_DATA = ("read", True)          # remote read miss, line transferred
    READ_EXCL = ("write", True)         # write miss, line + ownership
    UPGRADE = ("write", False)          # write hit on shared line, erase others
    REPLACE_DATA = ("replace", True)    # relocated owner line
    REPLACE_PROBE = ("replace", False)  # accept-based receiver negotiation
    SYNC_RMW = ("write", False)         # lock/barrier atomic (control-sized)

    def __init__(self, tx_class: str, carries_data: bool) -> None:
        self.tx_class = TxClass(tx_class)
        self.carries_data = carries_data


def message_bytes(kind: TxKind, line_size: int) -> int:
    """Wire bytes of one transaction of ``kind``."""
    return HEADER_BYTES + (line_size if kind.carries_data else 0)
