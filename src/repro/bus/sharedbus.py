"""Global shared bus: a contended resource plus per-class traffic meters.

The remote-access path occupies the bus "2 times 20 ns" (request and reply
phases, paper section 3.2).  The *bus bandwidth halved* ablation of
section 4.3 doubles the per-phase occupancy while the latency contribution
stays at 20 ns per phase.
"""

from __future__ import annotations

from repro.bus.transaction import TxClass, TxKind, message_bytes
from repro.common.config import TimingConfig
from repro.timing.resource import Resource


class SharedBus:
    """Split-transaction snooping bus shared by all nodes."""

    def __init__(self, timing: TimingConfig, line_size: int) -> None:
        self.timing = timing
        self.line_size = line_size
        self.resource = Resource("bus")
        self.tx_count: dict[TxClass, int] = {c: 0 for c in TxClass}
        self.tx_bytes: dict[TxClass, int] = {c: 0 for c in TxClass}

    def phase(self, now: int, bg: bool = False) -> int:
        """Occupy the bus for one phase starting at or after ``now``.

        Returns the time the phase *completes* (start + latency); the
        occupancy may exceed the latency when bandwidth is scaled down.
        ``bg`` routes the phase over the posted-write port (see
        :class:`repro.timing.resource.Resource`).
        """
        start = self.resource.acquire(now, self.timing.bus_busy_ns, bg)
        return start + self.timing.bus_phase_ns

    def record(self, kind: TxKind) -> None:
        """Meter one logical transaction of ``kind``."""
        cls = kind.tx_class
        self.tx_count[cls] += 1
        self.tx_bytes[cls] += message_bytes(kind, self.line_size)

    @property
    def total_bytes(self) -> int:
        return sum(self.tx_bytes.values())

    @property
    def total_transactions(self) -> int:
        return sum(self.tx_count.values())

    def traffic_breakdown(self) -> dict[str, int]:
        """Bytes per traffic class, keyed 'read'/'write'/'replace'."""
        return {c.value: self.tx_bytes[c] for c in TxClass}

    def utilization(self, elapsed_ns: int) -> float:
        return self.resource.utilization(elapsed_ns)
