"""Global shared bus: a contended resource plus per-class traffic meters.

The remote-access path occupies the bus "2 times 20 ns" (request and reply
phases, paper section 3.2).  The *bus bandwidth halved* ablation of
section 4.3 doubles the per-phase occupancy while the latency contribution
stays at 20 ns per phase.
"""

from __future__ import annotations

from repro.bus.transaction import TxClass, TxKind, message_bytes
from repro.common.config import TimingConfig
from repro.timing.resource import Resource


class SharedBus:
    """Split-transaction snooping bus shared by all nodes."""

    def __init__(
        self, timing: TimingConfig, line_size: int, name: str = "bus"
    ) -> None:
        self.timing = timing
        self.line_size = line_size
        self.name = name
        self.resource = Resource(name)
        #: Per-phase occupancy and latency, interned once (the TimingConfig
        #: properties recompute the bandwidth scaling on every read).
        self._busy_ns = timing.bus_busy_ns
        self._phase_ns = timing.bus_phase_ns
        self.tx_count: dict[TxClass, int] = {c: 0 for c in TxClass}
        self.tx_bytes: dict[TxClass, int] = {c: 0 for c in TxClass}
        #: Optional :class:`repro.obs.sink.TraceSink`; None keeps
        #: :meth:`record` allocation-free (a single ``if`` per call).
        self.trace = None
        #: Optional :class:`repro.obs.metrics.BusInstruments`; same
        #: ``None``-by-default discipline (one ``if`` per call site).
        self.metrics = None

    def phase(self, now: int, bg: bool = False) -> int:
        """Occupy the bus for one phase starting at or after ``now``.

        Returns the time the phase *completes* (start + latency); the
        occupancy may exceed the latency when bandwidth is scaled down.
        ``bg`` routes the phase over the posted-write port (see
        :class:`repro.timing.resource.Resource`).
        """
        busy = self._busy_ns
        r = self.resource
        if bg:
            start = r.bg_next_free
            if start < now:
                start = now
            r.bg_next_free = start + busy
        else:
            start = r.next_free
            if start < now:
                start = now
            r.next_free = start + busy
        r.busy_ns += busy
        r.uses += 1
        if self.metrics is not None:
            self.metrics.phase(start - now, busy)
        return start + self._phase_ns

    def arb_start(self, completion: int) -> int:
        """Recover when a phase won arbitration from its completion time.

        ``phase`` returns ``grant + phase_ns``; span checkpoints need the
        grant instant to split a bus step into arbitration wait and wire
        transfer without widening ``phase``'s return contract.
        """
        return completion - self._phase_ns

    def record(
        self, kind: TxKind, now: int = 0, origin: int = -1, line: int = -1
    ) -> None:
        """Meter one logical transaction of ``kind``.

        ``now``/``origin``/``line`` annotate the trace event when a sink
        is attached; metering itself needs none of them.
        """
        cls = kind.tx_class
        nbytes = message_bytes(kind, self.line_size)
        self.tx_count[cls] += 1
        self.tx_bytes[cls] += nbytes
        if self.trace is not None:
            self.trace.bus(now, self.name, kind.name, cls.value,
                           nbytes, origin, line)
        if self.metrics is not None:
            self.metrics.record(cls.value, nbytes)

    @property
    def total_bytes(self) -> int:
        return sum(self.tx_bytes.values())

    @property
    def total_transactions(self) -> int:
        return sum(self.tx_count.values())

    def traffic_breakdown(self) -> dict[str, int]:
        """Bytes per traffic class, keyed 'read'/'write'/'replace'."""
        return {c.value: self.tx_bytes[c] for c in TxClass}

    def utilization(self, elapsed_ns: int) -> float:
        return self.resource.utilization(elapsed_ns)
