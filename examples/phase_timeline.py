#!/usr/bin/env python3
"""Phase-resolved traffic: watch a workload's communication structure.

Run with::

    python examples/phase_timeline.py [workload]

Attaches a :class:`repro.obs.timeline.TimelineSampler` and renders bus
bandwidth over simulated time.  FFT shows its transpose bursts separated
by quiet compute phases; radix shows the histogram / permute
alternation; ocean shows the steady heartbeat of stencil sweeps with
multigrid dips.
"""

import sys

from repro.experiments.runner import RunSpec, build_simulation
from repro.obs.timeline import TimelineSampler
from repro.stats.profiler import SharingProfiler, format_profile


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft"
    timeline = TimelineSampler()
    sharing = SharingProfiler()
    sim = build_simulation(RunSpec(workload=workload, memory_pressure=0.5))
    sim.attach(timeline, every=4000)
    sim.attach(sharing, every=4000)
    result = sim.run()
    timeline.sample(sim.machine)
    sharing.sample(sim.machine)

    print(f"workload: {workload}  (elapsed {result.elapsed_ns / 1e6:.3f} ms, "
          f"traffic {result.total_traffic_bytes / 1024:.1f} KiB)\n")

    # Difference adjacent samples of the cumulative bus_bytes column
    # into per-window bandwidth, rendered as a strip chart.
    t, total = timeline.t, timeline.cols.get("bus_bytes", [])
    windows = [
        (t[i - 1], t[i], total[i] - total[i - 1])
        for i in range(1, len(t))
        if t[i] > t[i - 1]
    ]
    if windows:
        peak_bw = max(
            1000.0 * nbytes / (end - start) for start, end, nbytes in windows
        )
        print(f"{'window (ms)':>21}  {'B/us':>8}  bandwidth")
        for start, end, nbytes in windows:
            bw = 1000.0 * nbytes / (end - start)
            bar = "#" * int(round(40 * bw / peak_bw)) if peak_bw else ""
            print(f"{start / 1e6:9.3f}-{end / 1e6:9.3f}  {bw:8.1f}  {bar}")
        best = max(windows, key=lambda w: 1000.0 * w[2] / (w[1] - w[0]))
        print(f"\npeak bandwidth window: {best[0] / 1e6:.3f}-"
              f"{best[1] / 1e6:.3f} ms at "
              f"{1000.0 * best[2] / (best[1] - best[0]):.1f} B/us")
    print()
    print(format_profile(sharing.report()))


if __name__ == "__main__":
    main()
