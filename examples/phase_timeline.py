#!/usr/bin/env python3
"""Phase-resolved traffic: watch a workload's communication structure.

Run with::

    python examples/phase_timeline.py [workload]

Attaches the traffic-timeline profiler and renders bus bandwidth over
simulated time.  FFT shows its transpose bursts separated by quiet
compute phases; radix shows the histogram / permute alternation; ocean
shows the steady heartbeat of stencil sweeps with multigrid dips.
"""

import sys

from repro.experiments.runner import RunSpec, build_simulation
from repro.stats.profiler import SharingProfiler, format_profile
from repro.stats.timeline import CompositeProfiler, TrafficTimeline, format_timeline


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft"
    timeline = TrafficTimeline()
    sharing = SharingProfiler()
    sim = build_simulation(RunSpec(workload=workload, memory_pressure=0.5))
    sim.profiler = CompositeProfiler([timeline, sharing])
    sim.profile_every = 4000
    result = sim.run()
    timeline.sample(sim.machine)
    sharing.sample(sim.machine)

    print(f"workload: {workload}  (elapsed {result.elapsed_ns / 1e6:.3f} ms, "
          f"traffic {result.total_traffic_bytes / 1024:.1f} KiB)\n")
    print(format_timeline(timeline))
    peak = timeline.peak_window()
    if peak is not None:
        print(f"\npeak bandwidth window: {peak.start_ns / 1e6:.3f}-"
              f"{peak.end_ns / 1e6:.3f} ms at "
              f"{peak.bandwidth_bytes_per_us:.1f} B/us")
    print()
    print(format_profile(sharing.report()))


if __name__ == "__main__":
    main()
