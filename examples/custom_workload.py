#!/usr/bin/env python3
"""Writing your own workload and driving the simulator directly.

Run with::

    python examples/custom_workload.py

This example builds a small ping-pong kernel from scratch — two groups of
threads bouncing a shared buffer — wires it into the simulation kernel by
hand (no RunSpec), and shows how cluster placement changes its cost:
when producer and consumer land in the *same* node, the handoff happens
inside the attraction memory instead of across the bus.
"""

from fractions import Fraction

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig
from repro.mem.address import AddressSpace
from repro.sim.simulator import Simulation
from repro.sync.primitives import SyncSpace
from repro.workloads.base import SharedArray, Workload


class PingPong(Workload):
    """Thread 2k writes a buffer; thread 2k+1 reads it; repeat."""

    name = "pingpong"
    description = "pairwise buffer handoff"
    n_locks = 0
    n_barriers = 1
    rounds = 6
    buf_words = 512

    def allocate(self, space: AddressSpace) -> None:
        self.buf = SharedArray(
            space, "pingpong.buf", self.n_threads * self.buf_words
        )

    def thread(self, tid: int):
        pair_base = (tid // 2) * 2 * self.buf_words
        for rnd in range(self.rounds):
            writer = (tid % 2) == (rnd % 2)
            for k in range(self.buf_words):
                addr = self.buf.addr(pair_base + k)
                yield ("w", addr) if writer else ("r", addr)
            yield ("c", 3 * self.buf_words)
            yield ("b", 0)


def run(procs_per_node: int) -> tuple[float, int]:
    wl = PingPong(n_threads=16)
    space = AddressSpace(page_size=2048)
    wl.allocate(space)
    sync = SyncSpace(space, 64, wl.n_locks, wl.n_barriers)
    config = MachineConfig(
        procs_per_node=procs_per_node,
        memory_pressure=Fraction(1, 2),
    ).sized_for(space.allocated_bytes)
    machine = ComaMachine(config, space)
    sim = Simulation(machine, [wl.thread(t) for t in range(16)], sync)
    result = sim.run()
    return result.elapsed_ns / 1e6, result.total_traffic_bytes


def main() -> None:
    print("Ping-pong between thread pairs (0,1), (2,3), ...")
    print("Sequential placement puts each pair in one node once nodes")
    print("hold >= 2 processors, so the handoff never crosses the bus:\n")
    for ppn in (1, 2, 4):
        ms, traffic = run(ppn)
        print(
            f"  {ppn} processor(s)/node: {ms:7.3f} ms, "
            f"bus traffic {traffic / 1024:8.1f} KiB"
        )


if __name__ == "__main__":
    main()
