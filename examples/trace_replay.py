#!/usr/bin/env python3
"""Trace-driven simulation: capture once, replay against many machines.

Run with::

    python examples/trace_replay.py

Captures the reference stream of a workload to a compressed ``.npz``
trace, then replays the same trace against machines with different
attraction-memory associativity — the classic trace-driven methodology
(fast to sweep, but the interleaving is frozen at capture time; see
``repro.trace`` for the caveat).
"""

import tempfile
from fractions import Fraction
from pathlib import Path

from repro.coma.machine import ComaMachine
from repro.common.config import MachineConfig
from repro.mem.address import AddressSpace
from repro.sim.simulator import Simulation
from repro.sync.primitives import SyncSpace
from repro.trace.capture import capture_trace
from repro.trace.replay import replay_programs
from repro.trace.store import load_trace, save_trace
from repro.workloads.registry import get_workload


def main() -> None:
    name, scale = "synth_hotspot", 1.0

    # 1. Capture.
    wl = get_workload(name, scale=scale)
    space = AddressSpace(page_size=2048)
    wl.allocate(space)
    trace = capture_trace(wl, space)
    path = Path(tempfile.gettempdir()) / "hotspot.npz"
    save_trace(trace, path)
    print(
        f"captured {trace.total_events} events from {name} "
        f"-> {path} ({path.stat().st_size / 1024:.1f} KiB)"
    )

    # 2. Replay against different AM associativities at high pressure.
    print("\nreplay at 87.5% memory pressure, 4 processors/node:")
    for assoc in (1, 2, 4, 8):
        trace2 = load_trace(path)
        wl2 = get_workload(name, scale=scale)
        space2 = AddressSpace(page_size=2048)
        wl2.allocate(space2)
        sync = SyncSpace(space2, 64, wl2.n_locks, wl2.n_barriers)
        config = MachineConfig(
            procs_per_node=4,
            am_assoc=assoc,
            memory_pressure=Fraction(14, 16),
        ).sized_for(space2.allocated_bytes)
        machine = ComaMachine(config, space2)
        res = Simulation(machine, replay_programs(trace2), sync).run()
        conflict = res.miss_class_fractions["conflict"]
        print(
            f"  {assoc}-way AM: RNMr {100 * res.read_node_miss_rate:6.2f}%  "
            f"conflict misses {100 * conflict:5.1f}%  "
            f"traffic {res.total_traffic_bytes / 1024:8.1f} KiB"
        )
    print("\nHigher associativity absorbs the hot set: exactly the paper's")
    print("section-4.2 mechanism, isolated on a synthetic stream.")


if __name__ == "__main__":
    main()
