#!/usr/bin/env python3
"""The section-4.2 replication thresholds, analytically and empirically.

Run with::

    python examples/replication_thresholds.py

The paper's key arithmetic: a line can be replicated in all N nodes only
while the machine-wide ways of its set have room for N copies, i.e. up to
memory pressure (W - N + 1)/W where W = nodes x associativity.  This
script prints the closed-form thresholds for the paper's configurations,
then *measures* them: it runs a hotspot workload (every processor reads a
hot shared set) across the pressure sweep with the sharing profiler
attached and reports the observed maximum replication degree next to the
analytic cap.
"""

from repro.analytic.replication import (
    max_replication_degree,
    paper_thresholds,
    replication_threshold,
)
from repro.experiments.runner import RunSpec, build_simulation
from repro.stats.profiler import SharingProfiler


def main() -> None:
    print("Analytic thresholds (paper section 4.2):")
    for label, frac in paper_thresholds().items():
        print(f"  {label:18s} {str(frac):>8s} = {100 * float(frac):5.1f}%")
    print()

    print("Clustering moves the wall: 4-processor clusters keep full")
    print("replication feasible up to "
          f"{100 * float(replication_threshold(4, 4)):.2f}% MP vs "
          f"{100 * float(replication_threshold(16, 4)):.2f}% for 16 nodes.\n")

    print("Empirical check (synth_hotspot, 16 x 1-processor nodes, 4-way AMs):")
    print(f"{'MP':>7s} {'analytic cap':>13s} {'observed max':>13s} {'mean degree':>12s}")
    for mp in (1 / 16, 8 / 16, 12 / 16, 13 / 16, 14 / 16):
        prof = SharingProfiler()
        sim = build_simulation(
            RunSpec(workload="synth_hotspot", memory_pressure=mp, scale=0.75)
        )
        sim.profiler = prof
        sim.profile_every = 2000
        sim.run()
        prof.sample(sim.machine)
        rep = prof.report()
        cfg = sim.machine.config
        cap = max_replication_degree(cfg.n_nodes, cfg.am_assoc, mp)
        print(
            f"{100 * mp:6.2f}% {cap:13d} {rep.max_degree:13d} "
            f"{rep.mean_degree:12.2f}"
        )
    print("\nThe observed maximum tracks the closed-form cap: the paper's")
    print("conflict-miss story at 87.5% MP is exactly this wall.")


if __name__ == "__main__":
    main()
