#!/usr/bin/env python3
"""Everything the paper says about one application, in one run matrix.

Run with::

    python examples/clustering_deep_dive.py [workload]

For a single application this reproduces, side by side: the Figure-2
RNMr effect, the Figure-3/4 traffic story across the pressure sweep, the
Figure-5 execution-time recovery, the 8-way associativity fix, and the
non-inclusive-hierarchy fix.
"""

import sys

from repro import RunSpec, run_spec
from repro.stats.metrics import time_breakdown_figure5

MPS = [("6%", 1 / 16), ("50%", 8 / 16), ("81%", 13 / 16), ("87%", 14 / 16)]


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "volrend"
    base = RunSpec(workload=app, dram_bandwidth_factor=2.0)

    print(f"=== {app}: the paper's story in numbers ===\n")

    # Figure 2: RNMr at low pressure.
    r1 = run_spec(base.with_(memory_pressure=1 / 16))
    r4 = run_spec(base.with_(memory_pressure=1 / 16, procs_per_node=4))
    print("Figure 2 — relative RNMr at 6.25% MP:")
    print(f"  1p {100 * r1.read_node_miss_rate:6.2f}%   "
          f"4p {100 * r4.read_node_miss_rate:6.2f}%   "
          f"(relative {100 * r4.read_node_miss_rate / max(1e-12, r1.read_node_miss_rate):5.1f}%)\n")

    # Figures 3/4: traffic sweep.
    print("Figures 3/4 — bus traffic (KiB) across memory pressure:")
    print(f"{'MP':>5s} {'1p total':>9s} {'4p total':>9s} {'4p read':>8s} {'4p repl':>8s}")
    for label, mp in MPS:
        t1 = run_spec(base.with_(memory_pressure=mp))
        t4 = run_spec(base.with_(memory_pressure=mp, procs_per_node=4))
        print(
            f"{label:>5s} {t1.total_traffic_bytes / 1024:9.1f} "
            f"{t4.total_traffic_bytes / 1024:9.1f} "
            f"{t4.traffic_bytes['read'] / 1024:8.1f} "
            f"{t4.traffic_bytes['replace'] / 1024:8.1f}"
        )

    # The two fixes at 87.5% MP.
    t4 = run_spec(base.with_(memory_pressure=14 / 16, procs_per_node=4))
    t8 = run_spec(base.with_(memory_pressure=14 / 16, procs_per_node=4, am_assoc=8))
    tni = run_spec(
        base.with_(memory_pressure=14 / 16, procs_per_node=4, inclusive=False)
    )
    print("\nAt 87.5% MP (4p nodes):")
    print(f"  4-way AM        : {t4.total_traffic_bytes / 1024:9.1f} KiB  "
          f"(conflict misses {100 * t4.miss_class_fractions['conflict']:4.1f}% of read misses)")
    print(f"  8-way AM        : {t8.total_traffic_bytes / 1024:9.1f} KiB")
    print(f"  non-inclusive   : {tni.total_traffic_bytes / 1024:9.1f} KiB")

    # Figure 5: execution-time recovery.
    e50 = run_spec(base.with_(memory_pressure=8 / 16))
    e81 = run_spec(base.with_(memory_pressure=13 / 16))
    c81 = run_spec(base.with_(memory_pressure=13 / 16, procs_per_node=4))
    ref = sum(time_breakdown_figure5(e50).values())
    print("\nFigure 5 — execution time (normalized to 1p @ 50% MP):")
    for label, r in (("1p 50%", e50), ("1p 81%", e81), ("4p 81%", c81)):
        bd = time_breakdown_figure5(r)
        total = sum(bd.values())
        print(
            f"  {label:7s} {100 * total / ref:6.1f}%   "
            f"(remote stall {100 * bd['remote'] / total:4.1f}% of it)"
        )


if __name__ == "__main__":
    main()
