#!/usr/bin/env python3
"""Memory-pressure study: sweep the paper's five memory pressures for one
application and watch the attraction memory run out of replication space.

Run with::

    python examples/memory_pressure_study.py [workload]

This reproduces the core phenomenon behind Figures 3 and 4: at low
pressure there are no replacements; as pressure rises, replication space
shrinks, replacement and read traffic grow — and clustering (4 processors
per attraction memory) delays the collapse because the cluster shares one
set of replicas instead of keeping four.
"""

import sys

from repro import PAPER_MEMORY_PRESSURES, RunSpec, run_spec


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    print(f"workload: {workload}\n")
    header = (
        f"{'MP':>5s} {'procs/node':>10s} {'RNMr':>7s} "
        f"{'read KiB':>9s} {'write KiB':>9s} {'repl KiB':>9s} {'time ms':>8s}"
    )
    print(header)
    print("-" * len(header))
    for label, mp in PAPER_MEMORY_PRESSURES.items():
        for ppn in (1, 4):
            r = run_spec(
                RunSpec(
                    workload=workload,
                    procs_per_node=ppn,
                    memory_pressure=float(mp),
                )
            )
            t = r.traffic_bytes
            print(
                f"{label:>5s} {ppn:>10d} {100 * r.read_node_miss_rate:6.2f}% "
                f"{t['read'] / 1024:9.1f} {t['write'] / 1024:9.1f} "
                f"{t['replace'] / 1024:9.1f} {r.elapsed_ns / 1e6:8.3f}"
            )
        print()

    print(
        "Note how replacement traffic is zero at 6% MP (no capacity\n"
        "pressure: every attraction memory could hold the whole working\n"
        "set) and how the 4-processor-node rows stay flatter as memory\n"
        "pressure rises — the shared attraction memory needs one replica\n"
        "where four single-processor nodes would each keep their own."
    )


if __name__ == "__main__":
    main()
