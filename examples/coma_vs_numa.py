#!/usr/bin/env python3
"""COMA vs CC-NUMA: why attraction memories exist.

Run with::

    python examples/coma_vs_numa.py

Runs the same workloads on the bus-based COMA machine and on a CC-NUMA
baseline with identical processors, caches, bus and timing — the only
difference is that NUMA main memory stays at its home node while COMA
lines migrate to their users.  Migratory and capacity-bound patterns show
COMA's advantage; patterns with no reuse show its cost (every remote read
also pays a local DRAM allocation).
"""

from repro import RunSpec, run_spec

WORKLOADS = [
    ("synth_migratory", "regions migrate thread to thread"),
    ("synth_hotspot", "hot read-shared subset"),
    ("synth_private", "private streaming after first touch"),
    ("ocean_noncontig", "nearest-neighbour stencil"),
    ("radix", "all-to-all scatter"),
]


def main() -> None:
    print(f"{'workload':18s} {'machine':6s} {'RNMr':>7s} {'traffic KiB':>12s} {'time ms':>9s}")
    print("-" * 58)
    for name, note in WORKLOADS:
        rows = {}
        for machine in ("coma", "numa"):
            r = run_spec(RunSpec(workload=name, machine=machine, memory_pressure=0.5))
            rows[machine] = r
            print(
                f"{name:18s} {machine:6s} {100 * r.read_node_miss_rate:6.2f}% "
                f"{r.total_traffic_bytes / 1024:12.1f} {r.elapsed_ns / 1e6:9.3f}"
            )
        ratio = rows["numa"].total_traffic_bytes / max(1, rows["coma"].total_traffic_bytes)
        print(f"{'':18s} -> traffic ratio numa/coma = {ratio:.2f}  ({note})\n")


if __name__ == "__main__":
    main()
