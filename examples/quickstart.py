#!/usr/bin/env python3
"""Quickstart: simulate one workload on the paper's machine and inspect
the headline metrics.

Run with::

    python examples/quickstart.py

What it shows
-------------
* building a :class:`repro.RunSpec` (workload + machine shape),
* the read node miss rate (RNMr) — the paper's attraction-memory
  efficiency metric,
* the global bus traffic split (read / write / replacement),
* the execution-time breakdown of Figure 5.
"""

from repro import RunSpec, run_spec
from repro.stats.metrics import time_breakdown_figure5
from repro.stats.report import render_run_report


def main() -> None:
    # The paper's baseline: 16 processors, one per node, 50% memory
    # pressure, 4-way set-associative attraction memories.
    spec = RunSpec(workload="fft", procs_per_node=1, memory_pressure=8 / 16)
    result = run_spec(spec)
    print(render_run_report(result))

    # Now cluster 4 processors behind each attraction memory and compare.
    clustered = run_spec(spec.with_(procs_per_node=4))
    print()
    print("=== clustering effect (FFT, 50% memory pressure) ===")
    print(f"RNMr     1 proc/node : {100 * result.read_node_miss_rate:6.2f}%")
    print(f"RNMr     4 proc/node : {100 * clustered.read_node_miss_rate:6.2f}%")
    print(f"traffic  1 proc/node : {result.total_traffic_bytes / 1024:8.1f} KiB")
    print(f"traffic  4 proc/node : {clustered.total_traffic_bytes / 1024:8.1f} KiB")

    bd = time_breakdown_figure5(clustered)
    total = sum(bd.values())
    print("time split (4 proc/node): " + ", ".join(
        f"{k} {100 * v / total:.1f}%" for k, v in bd.items()
    ))


if __name__ == "__main__":
    main()
