"""CLI tests: parser wiring and command smoke runs."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fft"])
        assert args.workload == "fft"
        assert args.machine == "coma"
        assert args.procs_per_node == 1

    def test_run_flags(self):
        args = build_parser().parse_args(
            [
                "run", "radix",
                "--procs-per-node", "4",
                "--memory-pressure", "0.8125",
                "--am-assoc", "8",
                "--non-inclusive",
                "--dram-bandwidth", "2",
            ]
        )
        assert args.procs_per_node == 4
        assert args.am_assoc == 8
        assert args.non_inclusive is True

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_figure_jobs_and_workloads(self):
        args = build_parser().parse_args(
            ["figure", "2", "--jobs", "4", "--workloads", "fft", "radix"]
        )
        assert args.jobs == 4
        assert args.workloads == ["fft", "radix"]

    def test_jobs_defaults_to_serial(self):
        assert build_parser().parse_args(["figure", "3"]).jobs == 1
        assert build_parser().parse_args(["table", "1"]).jobs == 1
        assert build_parser().parse_args(["export", "figure2"]).jobs == 1

    def test_jobs_short_flag(self):
        args = build_parser().parse_args(["export", "figure5", "-j", "-1"])
        assert args.jobs == -1

    def test_figure_workloads_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "2", "--workloads", "doom"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "synth_uniform" in out

    def test_thresholds(self, capsys):
        assert main(["thresholds"]) == 0
        assert "76" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        rc = main(["run", "synth_private", "--scale", "0.25", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RNMr" in out

    def test_run_numa(self, capsys):
        rc = main(
            ["run", "synth_private", "--machine", "numa", "--scale", "0.25",
             "--no-cache"]
        )
        assert rc == 0

    def test_bad_figure_number(self, capsys):
        assert main(["figure", "9"]) == 2

    def test_figure_parallel_smoke(self, capsys):
        from repro.experiments.runner import reset_cache_stats

        reset_cache_stats()
        rc = main(
            ["figure", "2", "--scale", "0.25",
             "--workloads", "synth_private", "--jobs", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out and "synth_private" in captured.out
        assert "cache: 3 runs" in captured.err

    def test_bad_table_number(self):
        assert main(["table", "2"]) == 2

    def test_protocol(self, capsys):
        assert main(["protocol"]) == 0
        out = capsys.readouterr().out
        assert "transition table" in out and "read_excl" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "protocol OK" in out
        assert "machine crosscheck OK" in out

    def test_verify_no_crosscheck(self, capsys):
        assert main(["verify", "--nodes", "2", "--no-crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "protocol OK" in out
        assert "crosscheck" not in out

    def test_verify_parser_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--nodes", "9"])

    def test_lint_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_bad_file(self, tmp_path, capsys):
        (tmp_path / "coma").mkdir()
        bad = tmp_path / "coma" / "mod.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "mod.py:2" in out

    def test_lint_rule_filter(self, tmp_path, capsys):
        (tmp_path / "coma").mkdir()
        bad = tmp_path / "coma" / "mod.py"
        bad.write_text("import time\nt = time.time()\ndef f(x=[]):\n    pass\n")
        assert main(["lint", str(tmp_path), "--rules", "MUT001"]) == 1
        out = capsys.readouterr().out
        assert "MUT001" in out and "DET001" not in out

    def test_profile_smoke(self, capsys):
        rc = main(
            ["profile", "synth_private", "--scale", "0.25", "--every", "1000"]
        )
        assert rc == 0
        assert "replication degree" in capsys.readouterr().out

    def test_export_table1_csv(self, capsys):
        assert main(["export", "table1", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("app,")
        assert "barnes" in out

    def test_export_table1_json_unsupported(self, capsys):
        assert main(["export", "table1", "--format", "json"]) == 2

    def test_export_parser_choices(self):
        args = build_parser().parse_args(["export", "figure3", "--format", "json"])
        assert args.artifact == "figure3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "figure9"])

    def test_export_csv_provenance(self, capsys):
        rc = main(["export", "table1", "--scale", "0.5", "--provenance"])
        assert rc == 0
        out = capsys.readouterr().out
        first, second = out.splitlines()[:2]
        assert first.startswith("# provenance: repro=")
        assert "cache_version=" in first
        assert second.startswith("app,")


class TestTraceCommands:
    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "fft"])
        assert args.machine == "coma" and args.flight == 4096
        assert args.jsonl is None and args.chrome is None

    def test_trace_rejects_numa(self):
        # Only the COMA machines are instrumented for tracing.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "fft", "--machine", "numa"])

    def test_trace_writes_both_formats(self, tmp_path, capsys):
        import json

        from repro.obs.chrometrace import validate_trace_events
        from repro.obs.jsonl import read_trace

        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        rc = main(["trace", "synth_private", "--scale", "0.25",
                   "--jsonl", str(jsonl), "--chrome", str(chrome)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace events" in out and "perfetto" in out.lower()
        assert len(read_trace(jsonl)) > 0
        assert validate_trace_events(json.loads(chrome.read_text())) == []

    def test_trace_default_jsonl_name(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "synth_private", "--scale", "0.25"])
        assert rc == 0
        assert (tmp_path / "synth_private.trace.jsonl").exists()

    def test_explain_lists_busiest_lines(self, capsys):
        rc = main(["explain", "synth_private", "--scale", "0.25", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "busiest lines" in out and "--line" in out

    def test_explain_narrates_line(self, capsys):
        rc = main(["explain", "synth_migratory", "--scale", "0.05",
                   "--line", "0x80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "line 0x80" in out
        assert "owner=" in out and "final:" in out

    def test_explain_unknown_line_suggests(self, capsys):
        rc = main(["explain", "synth_private", "--scale", "0.25",
                   "--line", "0xffffff"])
        assert rc == 0
        assert "no trace events" in capsys.readouterr().out


class TestBoundsCommand:
    def test_table_renders(self, capsys):
        rc = main(["bounds", "synth_private", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "remote" in out and "unbounded" in out

    def test_check_passes_clean(self, capsys):
        rc = main(["bounds", "synth_migratory", "--scale", "0.1",
                   "--check"])
        assert rc == 0
        assert "bounds OK" in capsys.readouterr().out

    def test_check_numa_flavour(self, capsys):
        rc = main(["bounds", "synth_migratory", "--machine", "numa",
                   "--scale", "0.1", "--check"])
        assert rc == 0
        assert "machine=numa" in capsys.readouterr().out

    def test_json_report_with_certification(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bounds.json"
        rc = main(["bounds", "synth_private", "--scale", "0.1", "--check",
                   "--format", "json", "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["provenance"]["tool"] == "coma-sim bounds"
        assert payload["bounds"]
        assert payload["certification"]["violations"] == {
            "B101": 0, "B102": 0, "B103": 0}


class TestCoverageCommand:
    def test_table_with_micro(self, capsys):
        rc = main(["coverage", "--workloads", "synth_migratory",
                   "--scale", "0.05", "--micro"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S:remote_read" in out and "GAP" in out

    def test_min_pct_gate_fails(self, capsys):
        rc = main(["coverage", "--workloads", "synth_private",
                   "--memory-pressure", "0.5", "--scale", "0.05",
                   "--min-pct", "99"])
        assert rc == 1
        assert "coverage FAILED" in capsys.readouterr().err

    def test_json_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "coverage.json"
        rc = main(["coverage", "--workloads", "synth_migratory",
                   "--scale", "0.05", "--micro", "--format", "json",
                   "--out", str(out_path), "--min-pct", "80"])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["provenance"]["tool"] == "coma-sim coverage"
        assert payload["dead"] == []
        assert "S:remote_read" in [g["cell"] for g in payload["gaps"]]
        assert payload["total_pct"] >= 80


class TestAttributeBounds:
    def test_attribute_reports_bounds_section(self, capsys):
        rc = main(["attribute", "synth_private", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static bounds:" in out and "B101=0" in out
