"""CLI tests: parser wiring and command smoke runs."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fft"])
        assert args.workload == "fft"
        assert args.machine == "coma"
        assert args.procs_per_node == 1

    def test_run_flags(self):
        args = build_parser().parse_args(
            [
                "run", "radix",
                "--procs-per-node", "4",
                "--memory-pressure", "0.8125",
                "--am-assoc", "8",
                "--non-inclusive",
                "--dram-bandwidth", "2",
            ]
        )
        assert args.procs_per_node == 4
        assert args.am_assoc == 8
        assert args.non_inclusive is True

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "synth_uniform" in out

    def test_thresholds(self, capsys):
        assert main(["thresholds"]) == 0
        assert "76" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        rc = main(["run", "synth_private", "--scale", "0.25", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RNMr" in out

    def test_run_numa(self, capsys):
        rc = main(
            ["run", "synth_private", "--machine", "numa", "--scale", "0.25",
             "--no-cache"]
        )
        assert rc == 0

    def test_bad_figure_number(self, capsys):
        assert main(["figure", "9"]) == 2

    def test_bad_table_number(self):
        assert main(["table", "2"]) == 2

    def test_protocol(self, capsys):
        assert main(["protocol"]) == 0
        out = capsys.readouterr().out
        assert "transition table" in out and "read_excl" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "protocol OK" in out
        assert "machine crosscheck OK" in out

    def test_verify_no_crosscheck(self, capsys):
        assert main(["verify", "--nodes", "2", "--no-crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "protocol OK" in out
        assert "crosscheck" not in out

    def test_verify_parser_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--nodes", "9"])

    def test_lint_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_bad_file(self, tmp_path, capsys):
        (tmp_path / "coma").mkdir()
        bad = tmp_path / "coma" / "mod.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "mod.py:2" in out

    def test_lint_rule_filter(self, tmp_path, capsys):
        (tmp_path / "coma").mkdir()
        bad = tmp_path / "coma" / "mod.py"
        bad.write_text("import time\nt = time.time()\ndef f(x=[]):\n    pass\n")
        assert main(["lint", str(tmp_path), "--rules", "MUT001"]) == 1
        out = capsys.readouterr().out
        assert "MUT001" in out and "DET001" not in out

    def test_profile_smoke(self, capsys):
        rc = main(
            ["profile", "synth_private", "--scale", "0.25", "--every", "1000"]
        )
        assert rc == 0
        assert "replication degree" in capsys.readouterr().out

    def test_export_table1_csv(self, capsys):
        assert main(["export", "table1", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("app,")
        assert "barnes" in out

    def test_export_table1_json_unsupported(self, capsys):
        assert main(["export", "table1", "--format", "json"]) == 2

    def test_export_parser_choices(self):
        args = build_parser().parse_args(["export", "figure3", "--format", "json"])
        assert args.artifact == "figure3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "figure9"])
