"""Run-history archive, recorder hook, and differential-attribution tests."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import time

import pytest

from repro.bench.harness import BENCH_SCHEMA
from repro.experiments.runner import (
    HistoryRecorder,
    RunSpec,
    run_spec,
    set_history_recorder,
)
from repro.obs.diff import diff_runs, diff_sweeps, format_diff, pair_key
from repro.obs.history import (
    HISTORY_SCHEMA,
    HistoryArchive,
    HistoryArchiveError,
    content_hash,
    default_history_path,
    format_history,
    format_trend,
    history_disabled,
)


def spec_dict(seed: int = 1, **over) -> dict:
    d = {"workload": "fft", "machine": "coma", "memory_pressure": 0.5,
         "procs_per_node": 1, "n_processors": 16, "scale": 1.0,
         "seed": seed, "am_assoc": 4, "page_size": 2048}
    d.update(over)
    return d


def result_dict(elapsed: int = 1000, **counters) -> dict:
    return {"elapsed_ns": elapsed,
            "counters": counters or {"bus_transactions": 10}}


@pytest.fixture
def archive(tmp_path):
    return HistoryArchive(tmp_path / "hist.sqlite")


class TestArchive:
    def test_insert_dedup_revision(self, archive):
        spec, result = spec_dict(), result_dict()
        assert archive.record_run(key="k1", spec=spec, result=result) \
            == "inserted"
        # Same key + same deterministic content: dedup, still one row.
        assert archive.record_run(key="k1", spec=spec, result=result) \
            == "deduped"
        assert archive.run_count() == 1
        # Same key, different content: preserved as a new revision.
        assert archive.record_run(
            key="k1", spec=spec, result=result_dict(2000)) == "revision"
        assert archive.run_count() == 2
        assert archive.get_run("k1")["rev"] == 1

    def test_dedup_is_last_writer_wins_on_metadata(self, archive):
        spec, result = spec_dict(), result_dict()
        archive.record_run(key="k1", spec=spec, result=result,
                           source="run", recorded_at="t0",
                           phases={"bus_arb": 5})
        archive.record_run(key="k1", spec=spec, result=result,
                           source="serve", recorded_at="t1")
        row = archive.get_run("k1")
        assert row["source"] == "serve"
        assert row["recorded_at"] == "t1"
        # ... but attribution blobs recorded earlier are not erased.
        assert row["phases"] == {"bus_arb": 5}

    def test_get_run_by_prefix_and_rev(self, archive):
        archive.record_run(key="abcdef", spec=spec_dict(),
                           result=result_dict(1))
        archive.record_run(key="abcdef", spec=spec_dict(),
                           result=result_dict(2))
        assert archive.get_run("abc")["result"]["elapsed_ns"] == 2
        assert archive.get_run("abc", rev=0)["result"]["elapsed_ns"] == 1
        assert archive.get_run("zzz") is None

    def test_list_runs_filters(self, archive):
        archive.record_run(key="k1", spec=spec_dict(workload="fft"),
                           result=result_dict(), batch="a")
        archive.record_run(key="k2", spec=spec_dict(workload="barnes"),
                           result=result_dict(), batch="b")
        assert len(archive.list_runs()) == 2
        assert [r["key"] for r in archive.list_runs(workload="fft")] == ["k1"]
        assert [r["key"] for r in archive.list_runs(batch="b")] == ["k2"]
        assert [r["key"] for r in archive.list_runs(key="k2")] == ["k2"]
        assert len(archive.list_runs(limit=1)) == 1
        assert "k1" in format_history(archive.list_runs())

    def test_content_hash_ignores_nothing_deterministic(self):
        a = content_hash(spec_dict(), result_dict())
        assert a == content_hash(spec_dict(), result_dict())
        assert a != content_hash(spec_dict(seed=2), result_dict())
        assert a != content_hash(spec_dict(), result_dict(9))

    def test_record_bench_dedups_identical_payloads(self, archive):
        payload = {"schema": BENCH_SCHEMA, "timestamp": "t0", "quick": True,
                   "suites": {"l1_hit": {"wall_s": 0.5}}}
        assert archive.record_bench(payload) == "inserted"
        # Only the timestamp differs: same content, deduped.
        assert archive.record_bench({**payload, "timestamp": "t1"}) \
            == "deduped"
        assert archive.bench_count() == 1
        assert archive.record_bench(
            {**payload, "suites": {"l1_hit": {"wall_s": 0.6}}}) == "inserted"

    def test_refuses_newer_schema(self, tmp_path):
        path = tmp_path / "hist.sqlite"
        HistoryArchive(path).record_bench({"suites": {}})
        con = sqlite3.connect(path)
        con.execute("UPDATE meta SET value = ? WHERE key = 'schema'",
                    (str(HISTORY_SCHEMA + 1),))
        con.commit()
        con.close()
        with pytest.raises(HistoryArchiveError):
            HistoryArchive(path).run_count()

    def test_default_path_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "h"))
        assert default_history_path() == tmp_path / "h" / "history.sqlite"
        monkeypatch.setenv("REPRO_NO_HISTORY", "1")
        assert history_disabled()
        monkeypatch.delenv("REPRO_NO_HISTORY")
        assert not history_disabled()


class TestTrend:
    def bench(self, wall_s: float, stamp: str, quick: bool = True) -> dict:
        return {"schema": BENCH_SCHEMA, "timestamp": stamp, "quick": quick,
                "suites": {"l1_hit": {"wall_s": wall_s}}}

    def test_trend_flags_regression_vs_rolling_median(self, archive):
        for i, wall in enumerate([1.0, 1.02, 0.98, 2.0]):
            archive.record_bench(self.bench(wall, f"t{i}"))
        report = archive.trend(last=10)
        row = report["suites"]["l1_hit"]
        assert row["status"] == "regression"
        assert row["median_s"] == 1.0  # median of the three earlier runs
        assert row["latest_s"] == 2.0
        assert "REGRESSION" in format_trend(report)

    def test_trend_ok_and_quick_filter(self, archive):
        archive.record_bench(self.bench(1.0, "t0", quick=True))
        archive.record_bench(self.bench(5.0, "t1", quick=False))
        report = archive.trend(last=10, quick=True)
        assert report["benches"] == 1
        assert report["suites"]["l1_hit"]["status"] == "ok"
        assert "PASS" in format_trend(report)

    def test_trend_baseline_is_a_bench_payload(self, archive):
        """The embedded baseline must satisfy the BENCH file contract so
        ``bench --compare trend.json`` can gate against it directly."""
        for i, wall in enumerate([1.0, 1.2, 1.1]):
            archive.record_bench(self.bench(wall, f"t{i}"))
        baseline = archive.trend(last=10)["baseline"]
        assert baseline["schema"] == BENCH_SCHEMA
        assert baseline["suites"]["l1_hit"]["wall_s"] == 1.1  # full-window
        assert baseline["suites"]["l1_hit"]["samples"] == 3
        assert baseline["rolling"]["runs"] == 3

    def test_rolling_baseline_helper(self, archive):
        from repro.bench.compare import rolling_baseline

        assert rolling_baseline(archive) is None
        archive.record_bench(self.bench(1.0, "t0"))
        baseline = rolling_baseline(archive, last=5)
        assert baseline["suites"]["l1_hit"]["wall_s"] == 1.0

    def test_load_bench_unwraps_trend_report(self, archive, tmp_path):
        from repro.bench.compare import load_bench

        archive.record_bench(self.bench(1.0, "t0"))
        report = archive.trend(last=5)
        path = tmp_path / "trend.json"
        path.write_text(json.dumps(report))
        assert load_bench(path)["suites"]["l1_hit"]["wall_s"] == 1.0


class TestGc:
    def test_gc_trims_old_revisions(self, archive):
        for elapsed in (1, 2, 3):
            archive.record_run(key="k1", spec=spec_dict(),
                               result=result_dict(elapsed))
        archive.record_run(key="k2", spec=spec_dict(seed=2),
                           result=result_dict())
        stats = archive.gc(keep_revisions=1, dry_run=True)
        assert stats == {"runs_deleted": 2, "benches_deleted": 0,
                         "dry_run": True}
        assert archive.run_count() == 4  # dry run deleted nothing
        archive.gc(keep_revisions=1)
        assert archive.run_count() == 2
        # The newest revision of each key survives.
        assert archive.get_run("k1")["result"]["elapsed_ns"] == 3
        assert archive.get_run("k2") is not None

    def test_gc_trims_old_benches(self, archive):
        for i in range(5):
            archive.record_bench({"schema": BENCH_SCHEMA, "n": i,
                                  "suites": {}})
        stats = archive.gc(keep_benches=2)
        assert stats["benches_deleted"] == 3
        assert archive.bench_count() == 2
        assert archive.list_benches()[0]["payload"]["n"] == 4


def _append_same(path, barrier, spec, result):
    barrier.wait()
    HistoryArchive(path).record_run(key="race", spec=spec, result=result)


def _append_forever(path):
    archive = HistoryArchive(path)
    i = 0
    while True:
        archive.record_run(key=f"k{i}", spec=spec_dict(seed=i),
                           result=result_dict(i + 1))
        i += 1


class TestConcurrency:
    def test_two_processes_same_content_one_row(self, tmp_path):
        path = tmp_path / "hist.sqlite"
        barrier = multiprocessing.Barrier(2)
        procs = [
            multiprocessing.Process(
                target=_append_same,
                args=(path, barrier, spec_dict(), result_dict()))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        archive = HistoryArchive(path)
        assert archive.run_count() == 1
        assert archive.get_run("race")["rev"] == 0

    def test_different_content_becomes_revisions(self, tmp_path):
        path = tmp_path / "hist.sqlite"
        archive = HistoryArchive(path)
        archive.record_run(key="k", spec=spec_dict(), result=result_dict(1))
        archive.record_run(key="k", spec=spec_dict(), result=result_dict(2))
        revs = sorted(r["rev"] for r in archive.list_runs(key="k"))
        assert revs == [0, 1]

    def test_sigkill_mid_append_leaves_archive_readable(self, tmp_path):
        path = tmp_path / "hist.sqlite"
        proc = multiprocessing.Process(target=_append_forever, args=(path,))
        proc.start()
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if path.exists() and HistoryArchive(path).run_count() > 0:
                break
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10)
        archive = HistoryArchive(path)
        count = archive.run_count()  # must not raise
        assert count >= 1
        rows = archive.list_runs(limit=10)
        assert all(r["elapsed_ns"] >= 1 for r in rows)
        # ... and the archive still accepts appends.
        assert archive.record_run(key="after", spec=spec_dict(seed=999),
                                  result=result_dict()) == "inserted"


SPEC = RunSpec(workload="synth_uniform", scale=0.05, seed=501)
SLOW_BUS = RunSpec(workload="synth_uniform", scale=0.05, seed=501,
                   bus_bandwidth_factor=0.25)


@pytest.fixture
def recorder(tmp_path):
    rec = HistoryRecorder(HistoryArchive(tmp_path / "hist.sqlite"),
                          source="test")
    set_history_recorder(rec)
    try:
        yield rec
    finally:
        set_history_recorder(None)


class TestRecorder:
    def test_miss_recorded_with_attribution(self, recorder):
        result = run_spec(SPEC, use_cache=False)
        assert recorder.outcomes["inserted"] == 1
        row = recorder.archive.get_run(SPEC.key())
        assert row["cache"] == "miss"
        assert row["source"] == "test"
        assert row["elapsed_ns"] == result.elapsed_ns
        assert row["wall_time_s"] > 0
        assert row["spec"]["workload"] == "synth_uniform"
        assert row["result"]["counters"]
        # Attribution riders: phase totals, histograms, witness spans.
        assert row["phases"]["bus_arb"] > 0
        fam = row["histograms"]["span_access_latency_ns"]
        assert fam["series"]
        assert row["top_spans"] and row["top_spans"][0][0]["name"] == "access"
        assert "recorded" in recorder.summary()

    def test_memory_hit_skipped_after_miss(self, recorder):
        run_spec(SPEC)
        run_spec(SPEC)  # memory hit on a key we already recorded
        assert recorder.outcomes == {"inserted": 1, "deduped": 0,
                                     "revision": 0, "skipped": 1,
                                     "errors": 0}
        assert recorder.archive.run_count() == 1

    def test_attribution_does_not_change_the_result(self, recorder):
        with_attr = run_spec(SPEC, use_cache=False)
        set_history_recorder(None)
        without = run_spec(SPEC, use_cache=False)
        assert with_attr.to_dict() == without.to_dict()

    def test_archive_errors_never_fail_the_run(self, tmp_path):
        class Exploding:
            path = tmp_path / "x.sqlite"

            def record_run(self, **kwargs):
                raise RuntimeError("disk full")

        rec = HistoryRecorder(Exploding(), source="test")
        set_history_recorder(rec)
        try:
            result = run_spec(SPEC, use_cache=False)
        finally:
            set_history_recorder(None)
        assert result.elapsed_ns > 0
        assert rec.outcomes["errors"] == 1

    def test_detached_recording_is_never_touched(self, monkeypatch):
        """Zero-overhead proof: with no recorder installed, no history
        code runs at all — poison every entry point and simulate."""
        import repro.experiments.runner as runner_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("history touched while detached")

        monkeypatch.setattr(runner_mod.HistoryRecorder, "record", boom)
        monkeypatch.setattr(runner_mod.HistoryRecorder, "attribution", boom)
        monkeypatch.setattr(HistoryArchive, "record_run", boom)
        monkeypatch.setattr(HistoryArchive, "_connect", boom)
        assert runner_mod.history_recorder() is None
        result = run_spec(SPEC, use_cache=False)
        assert result.elapsed_ns > 0

    def test_on_record_callback(self, tmp_path):
        seen = []
        rec = HistoryRecorder(HistoryArchive(tmp_path / "h.sqlite"),
                              on_record=seen.append)
        set_history_recorder(rec)
        try:
            run_spec(SPEC, use_cache=False)
        finally:
            set_history_recorder(None)
        assert seen == ["inserted"]


class TestDiff:
    @pytest.fixture
    def pair(self, recorder):
        run_spec(SPEC, use_cache=False)
        run_spec(SLOW_BUS, use_cache=False)
        a = recorder.archive.get_run(SPEC.key())
        b = recorder.archive.get_run(SLOW_BUS.key())
        return a, b

    def test_injected_bus_slowdown_names_bus_arb(self, pair):
        """The directed phase-attribution test: perturb one timing
        constant (bus bandwidth x0.25) and the diff must name the bus
        arbitration phase as responsible for the regression."""
        a, b = pair
        diff = diff_runs(a, b)
        assert diff["elapsed"]["change_pct"] > 5
        assert diff["top_attribution"]["phase"] == "bus_arb"
        assert diff["top_attribution"]["delta_ns"] > 0
        assert diff["top_attribution"]["share_pct"] > 25
        text = format_diff(diff)
        assert "top attribution: bus_arb" in text
        assert "witnesses" in text

    def test_diff_structure(self, pair):
        a, b = pair
        diff = diff_runs(a, b, noise_pct=2.0)
        assert diff["a"]["key"] == SPEC.key()
        assert diff["b"]["key"] == SLOW_BUS.key()
        assert diff["noise_pct"] == 2.0
        assert diff["elapsed"]["delta_ns"] == \
            b["elapsed_ns"] - a["elapsed_ns"]
        for row in diff["counters"]:
            assert row["significant"] == (abs(row["change_pct"]) > 2.0)
        shares = [p["share_pct"] for p in diff["phases"]]
        assert shares == sorted(shares, reverse=True)
        assert diff["witness_side"] == "b"
        assert diff["histograms"][0]["b_count"] > 0

    def test_identical_runs_diff_to_noise(self, archive):
        archive.record_run(key="k1", spec=spec_dict(seed=1),
                           result=result_dict(1000, bus=100),
                           phases={"bus_arb": 10})
        archive.record_run(key="k2", spec=spec_dict(seed=1),
                           result=result_dict(1000, bus=100),
                           phases={"bus_arb": 10})
        diff = diff_runs(archive.get_run("k1"), archive.get_run("k2"))
        assert diff["elapsed"]["change_pct"] == 0
        assert not any(c["significant"] for c in diff["counters"])

    def test_diff_sweeps_pairs_on_spec_identity(self, archive):
        # Batch A and B hold the same two points; B has one extra.
        for seed in (1, 2):
            archive.record_run(
                key=f"a{seed}", spec=spec_dict(seed=seed),
                result=result_dict(1000), batch="a")
            archive.record_run(
                key=f"b{seed}", spec=spec_dict(seed=seed),
                result=result_dict(1500 if seed == 2 else 1000), batch="b")
        archive.record_run(key="b9", spec=spec_dict(seed=9),
                           result=result_dict(), batch="b")
        rows = {b: [archive.get_run(r["key"])
                    for r in archive.list_runs(batch=b)]
                for b in ("a", "b")}
        report = diff_sweeps(rows["a"], rows["b"])
        assert report["pairs"] == 2
        assert report["unpaired_a"] == []
        assert report["unpaired_b"] == ["b9"]
        worst = report["worst_regression"]
        assert worst["elapsed"]["delta_ns"] == 500

    def test_pair_key_survives_timing_perturbation(self):
        from dataclasses import asdict

        assert pair_key(asdict(SPEC)) == pair_key(asdict(SLOW_BUS))
        assert pair_key(asdict(SPEC)) != pair_key(
            asdict(RunSpec(workload="synth_uniform", scale=0.05, seed=502)))


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    @pytest.fixture
    def populated(self, tmp_path, capsys):
        path = str(tmp_path / "hist.sqlite")
        from repro.cli import main

        for extra in ([], ["--bus-bandwidth", "0.25"]):
            assert main(["run", "synth_uniform", "--scale", "0.05",
                         "--seed", "501", "--no-cache", *extra,
                         "--record", "cli-batch", "--archive", path]) == 0
        capsys.readouterr()
        return path

    def test_history_list_and_show(self, populated, capsys):
        code, out = self.run_cli(
            ["history", "list", "--archive", populated], capsys)
        assert code == 0
        assert "2 of 2 run(s)" in out
        assert SPEC.key() in out
        code, out = self.run_cli(
            ["history", "show", SPEC.key()[:8], "--archive", populated],
            capsys)
        assert code == 0
        assert json.loads(out)["batch"] == "cli-batch"

    def test_history_list_json_and_filters(self, populated, capsys):
        code, out = self.run_cli(
            ["history", "list", "--archive", populated,
             "--batch", "cli-batch", "--format", "json"], capsys)
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 2 and rows[0]["source"] == "run"
        code, out = self.run_cli(
            ["history", "list", "--archive", populated,
             "--batch", "nope"], capsys)
        assert code == 0 and "0 of 2" in out

    def test_diff_cli_names_the_phase(self, populated, capsys):
        code, out = self.run_cli(
            ["diff", SPEC.key(), SLOW_BUS.key(),
             "--archive", populated], capsys)
        assert code == 0
        assert "top attribution: bus_arb" in out

    def test_diff_cli_json_out(self, populated, tmp_path, capsys):
        out_path = tmp_path / "diff.json"
        code, _ = self.run_cli(
            ["diff", SPEC.key(), SLOW_BUS.key(), "--archive", populated,
             "--format", "json", "--out", str(out_path)], capsys)
        assert code == 0
        diff = json.loads(out_path.read_text())
        assert diff["top_attribution"]["phase"] == "bus_arb"

    def test_diff_cli_unknown_key(self, populated, capsys):
        code, _ = self.run_cli(
            ["diff", "ffffffff", SPEC.key(), "--archive", populated],
            capsys)
        assert code == 1

    def test_diff_cli_requires_two_keys(self, populated, capsys):
        code, _ = self.run_cli(["diff", "onlyone",
                                "--archive", populated], capsys)
        assert code == 2

    def test_history_gc_cli(self, populated, capsys):
        code, out = self.run_cli(
            ["history", "gc", "--archive", populated, "--dry-run"], capsys)
        assert code == 0
        assert "would delete 0 run row(s)" in out

    def test_history_trend_cli_empty(self, tmp_path, capsys):
        path = str(tmp_path / "h.sqlite")
        code, out = self.run_cli(
            ["history", "trend", "--archive", path], capsys)
        assert code == 0
        assert "0 archived run(s)" in out
