"""Tests for the CC-NUMA baseline machine."""

from __future__ import annotations

from fractions import Fraction

from repro.common.config import MachineConfig
from repro.mem.address import AddressSpace
from repro.numa.machine import NumaMachine

LINE = 64


def make_numa(n_processors=4, procs_per_node=2):
    cfg = MachineConfig(
        n_processors=n_processors,
        procs_per_node=procs_per_node,
        page_size=256,
        memory_pressure=Fraction(1, 2),
        am_bytes_per_node=8 * 4 * 64,
        slc_bytes=4 * 64,
        l1_bytes=2 * 64,
    )
    space = AddressSpace(page_size=256)
    space.alloc(1 << 20, "test")
    return NumaMachine(cfg, space)


class TestNumaRead:
    def test_local_home_access(self):
        m = make_numa()
        done, level = m.read(0, 0, 0)
        assert level == "am", "home memory access"
        assert done == 148

    def test_remote_home_access(self):
        m = make_numa()
        m.read(0, 0, 0)  # homed at node 0
        done, level = m.read(2, 0, 10_000)
        assert level == "remote"
        assert m.counters.node_read_misses == 1

    def test_home_never_migrates(self):
        """The NUMA/COMA contrast: repeated remote reads that miss the SLC
        keep paying the remote latency (no attraction memory)."""
        m = make_numa()
        m.read(0, 0, 0)
        # Proc 2 reads lines 0..7 (page 0-1 homed at node 0), thrashing its
        # 4-line SLC, then re-reads line 0: still remote.
        t = 1000
        for ln in range(8):
            t, _ = m.read(2, ln * LINE, t + 100)
        done, level = m.read(2, 0, t + 100)
        assert level == "remote"

    def test_dirty_fetch_via_owner(self):
        m = make_numa()
        m.read(0, 0, 0)
        m.write(0, 0, 100)          # dirty in proc 0's SLC
        done, level = m.read(2, 0, 1000)
        assert level == "remote"
        assert m.directory.entry(0).owner is None, "clean after fetch"
        m.check_consistency()


class TestNumaWrite:
    def test_write_invalidates_sharers(self):
        m = make_numa()
        m.read(0, 0, 0)
        m.read(2, 0, 1000)
        m.write(0, 0, 2000)
        assert 0 not in m.slcs[2]
        assert m.directory.entry(0).sharers == {0}
        assert m.counters.invalidations_sent >= 1
        m.check_consistency()

    def test_repeat_write_hits_slc(self):
        m = make_numa()
        m.write(0, 0, 0)
        done2 = m.write(0, 0, 1000)
        assert done2 == 1032, "owner + SLC hit: 32 ns"

    def test_rmw(self):
        m = make_numa()
        done, level = m.rmw(0, 0, 0)
        assert m.counters.atomics == 1
        assert level in ("slc", "am", "remote")


class TestNumaViaSimulation:
    def test_runs_under_the_simulator(self):
        from repro.experiments.runner import RunSpec, build_simulation

        sim = build_simulation(
            RunSpec(workload="synth_private", machine="numa", scale=0.25)
        )
        res = sim.run()
        assert res.counters["reads"] > 0
        sim.machine.check_consistency()

    def test_coma_beats_numa_on_reuse_after_migration(self):
        """Private streaming with reuse: after first touch everything is
        node-local in COMA; in NUMA, lines whose home is local are also
        cheap — but a migratory pattern favours COMA."""
        from repro.experiments.runner import RunSpec, run_spec

        coma = run_spec(
            RunSpec(workload="synth_migratory", machine="coma", scale=0.5),
            use_cache=False,
        )
        numa = run_spec(
            RunSpec(workload="synth_migratory", machine="numa", scale=0.5),
            use_cache=False,
        )
        assert coma.total_traffic_bytes < numa.total_traffic_bytes, (
            "COMA migration converts repeat misses into AM hits"
        )
